//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no access to crates.io, so the
//! real crate is replaced by marker traits that every type implements and
//! derive macros that expand to nothing (see the sibling `serde_derive`
//! shim). `#[derive(Serialize, Deserialize)]` annotations throughout the
//! workspace therefore remain purely declarative.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait; blanket-implemented for all types.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait; blanket-implemented for all sized types.
pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}
