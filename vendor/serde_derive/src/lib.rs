//! Offline stand-in for `serde_derive`.
//!
//! The workspace builds without network access, so the real proc-macro crate
//! is replaced by this shim: `#[derive(Serialize, Deserialize)]` expands to
//! nothing, and the matching trait definitions in the `serde` shim are
//! blanket-implemented. The derives stay on the public data types as
//! documentation of intent; no code in this workspace serializes through
//! serde.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the `serde` shim blanket-implements the trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the `serde` shim blanket-implements the trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
