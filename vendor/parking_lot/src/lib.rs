//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` primitives exposing the parking_lot API
//! shape the workspace uses: `lock()`/`read()`/`write()` return guards
//! directly (no `Result`), and `Condvar::wait` takes `&mut MutexGuard`.
//! Poisoning is deliberately ignored — a panicking thread aborts the test or
//! run anyway, and parking_lot itself has no poisoning.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;
use std::time::Duration;

/// Mutual exclusion lock with panic-transparent (non-poisoning) semantics.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard live")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard live")
    }
}

/// Condition variable working with [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Atomically release the guard's mutex and wait for a notification.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard live");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(sync::PoisonError::into_inner));
    }

    /// [`Condvar::wait`] with a timeout; returns true if it timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let inner = guard.0.take().expect("guard live");
        let (inner, res) =
            self.0.wait_timeout(inner, timeout).unwrap_or_else(sync::PoisonError::into_inner);
        guard.0 = Some(inner);
        res.timed_out()
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

/// Reader-writer lock with panic-transparent (non-poisoning) semantics.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(sync::PoisonError::into_inner))
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(sync::PoisonError::into_inner))
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
    }
}
