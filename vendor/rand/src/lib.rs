//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the API surface the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}` — over a
//! xoshiro256++ generator seeded by splitmix64. Deterministic for a given
//! seed, which is all the tests and benchmarks rely on; the streams differ
//! from the real crate's.

use std::ops::{Range, RangeInclusive};

/// Core generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from a small seed.
pub trait SeedableRng: Sized {
    /// Deterministically build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a uniformly random value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// A Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable uniformly over their whole domain (the `Standard`
/// distribution of the real crate, flattened into a trait).
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Sample one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

fn uniform_u128(rng: &mut (impl RngCore + ?Sized), span: u128) -> u128 {
    // Modulo bias is ~2^-64 at the spans used here; irrelevant for tests.
    debug_assert!(span > 0, "empty sample range");
    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    wide % span
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// Map 64 random bits to [0, 1) with 53-bit resolution.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&w));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let x = rng.gen_range(3usize..=3);
            assert_eq!(x, 3);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads}");
    }
}
