//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's component benches use —
//! `benchmark_group`, `bench_function`, `iter`, `iter_batched`, throughput
//! and sample-size knobs — with a deliberately tiny runner: a short warm-up,
//! a fixed number of timed iterations, and a mean-per-iteration printout. No
//! statistics, no plots; set `CRITERION_ITERS` to raise the iteration count
//! when timing by hand.

use std::time::{Duration, Instant};

/// How a group's throughput is expressed (stored, displayed per element).
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim runs one
/// setup per iteration regardless.
#[derive(Copy, Clone, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

fn iters() -> u32 {
    std::env::var("CRITERION_ITERS").ok().and_then(|v| v.parse().ok()).unwrap_or(10)
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup { name: name.to_string() }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        run_one(name, &mut f);
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Declare the group's throughput (recorded, not currently displayed).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Set the sample count (the shim's iteration count is fixed).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(&format!("{}/{name}", self.name), &mut f);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_one(name: &str, f: &mut impl FnMut(&mut Bencher)) {
    let mut b = Bencher { elapsed: Duration::ZERO, iterations: 0 };
    f(&mut b);
    let mean_ns =
        if b.iterations > 0 { b.elapsed.as_nanos() as f64 / b.iterations as f64 } else { 0.0 };
    println!("bench {name:<40} {mean_ns:>14.1} ns/iter ({} iters)", b.iterations);
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    elapsed: Duration,
    iterations: u64,
}

impl Bencher {
    /// Time `routine` over the configured iteration count.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        std::hint::black_box(routine()); // warm-up
        let n = iters();
        let start = Instant::now();
        for _ in 0..n {
            std::hint::black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iterations += n as u64;
    }

    /// Time `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup())); // warm-up
        for _ in 0..iters() {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
