//! Offline stand-in for `crossbeam`.
//!
//! Provides the `channel` module surface the workspace uses: unbounded MPMC
//! channels with `send` / `recv` / `try_recv` / `recv_timeout` and
//! disconnection detection on both ends. Built on a `std` mutex + condvar
//! queue — throughput is not a goal, semantics are.

pub mod channel {
    //! Unbounded MPMC channels.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        cv: Condvar,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State { queue: VecDeque::new(), senders: 1, receivers: 1 }),
            cv: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message currently queued.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Copy, Clone, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with no message.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    impl<T> Sender<T> {
        /// Queue a message; fails iff every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            if st.receivers == 0 {
                return Err(SendError(value));
            }
            st.queue.push_back(value);
            drop(st);
            self.inner.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Block until a message arrives or all senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.cv.wait(st).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().expect("channel poisoned");
            match st.queue.pop_front() {
                Some(v) => Ok(v),
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Blocking receive with a wall-clock timeout.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.inner.state.lock().expect("channel poisoned");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, res) =
                    self.inner.cv.wait_timeout(st, deadline - now).expect("channel poisoned");
                st = guard;
                if res.timed_out() && st.queue.is_empty() {
                    return Err(RecvTimeoutError::Timeout);
                }
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().expect("channel poisoned").receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if let Ok(mut st) = self.inner.state.lock() {
                st.senders -= 1;
                if st.senders == 0 {
                    drop(st);
                    self.inner.cv.notify_all();
                }
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let Ok(mut st) = self.inner.state.lock() {
                st.receivers -= 1;
            }
        }
    }

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_order() {
            let (tx, rx) = unbounded();
            for i in 0..10 {
                tx.send(i).unwrap();
            }
            for i in 0..10 {
                assert_eq!(rx.recv().unwrap(), i);
            }
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_detection() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());

            let (tx, rx) = unbounded::<u8>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn timeout_elapses() {
            let (_tx, rx) = unbounded::<u8>();
            let r = rx.recv_timeout(Duration::from_millis(5));
            assert_eq!(r, Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn cross_thread() {
            let (tx, rx) = unbounded();
            let h = std::thread::spawn(move || (0..100).map(|_| rx.recv().unwrap()).sum::<u64>());
            for i in 0..100u64 {
                tx.send(i).unwrap();
            }
            assert_eq!(h.join().unwrap(), (0..100).sum::<u64>());
        }
    }
}
