//! The deterministic per-test random source.

/// A splitmix64 stream seeded from the test's name, so every property test
/// sees the same cases on every run and on every machine.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty bound");
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_name_sensitive() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::from_name("y");
        assert_ne!(TestRng::from_name("x").next_u64(), c.next_u64());
    }
}
