//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the strategy type (needed by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Always produce a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among boxed strategies (built by `prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Choose uniformly among `options`.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "empty union");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.options.len());
        self.options[idx].sample(rng)
    }
}

/// Whole-domain sampling for primitives (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over a type's whole domain.
pub struct Any<T>(PhantomData<T>);

/// The strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
