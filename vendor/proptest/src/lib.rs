//! Offline stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface the workspace's property
//! tests use: the `proptest!` macro, `Strategy` with `prop_map` and `boxed`,
//! integer-range and tuple strategies, `any::<T>()`, `Just`, `prop_oneof!`,
//! and `collection::vec`. Instead of shrinking random cases, each test runs
//! [`NUM_CASES`] deterministic samples seeded from the test's module path —
//! weaker than real property testing but reproducible and offline.

pub mod strategy;
pub mod test_runner;

/// Samples per property test.
pub const NUM_CASES: usize = 64;

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Copy, Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy producing a `Vec` of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.lo + rng.below(self.size.hi - self.size.lo + 1);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: traits, constructors, and macros.

    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Run the enclosed `#[test]` functions once per sampled case.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                ));
                for _case in 0..$crate::NUM_CASES {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                    $body
                }
            }
        )+
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice between several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}
