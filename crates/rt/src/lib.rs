#![warn(missing_docs)]

//! # Kernel runtime façade
//!
//! The paper's benchmarks "share the same code base, with memory allocation,
//! synchronization and thread creation expressed as macros" processed by m4,
//! so each kernel compiles against either Pthreads or Samhita. This crate is
//! the Rust equivalent: kernels are written once against the [`KernelRt`] /
//! [`KernelCtx`] traits and run on either backend:
//!
//! * [`NativeRt`] — the "pthreads" baseline: real threads over plain shared
//!   memory (atomics, so the baseline is data-race-free Rust), with the
//!   *same* per-operation compute cost model as Samhita and hardware-scale
//!   synchronization costs. Normalizing Samhita's compute time by this
//!   baseline reproduces the paper's Figures 3–5 axes.
//! * [`SamhitaRt`] — the DSM under study, adapting
//!   [`samhita_core::ThreadCtx`].
//!
//! Handles are plain integers ([`ArrF64`], [`SyncId`]) so kernels stay
//! object-safe: the backends are used as `&dyn KernelRt`.

pub mod native;
pub mod samhita;

pub use native::{NativeCosts, NativeRt};
pub use samhita::SamhitaRt;

pub use samhita_core::{RunReport, ThreadStats};

/// Handle to a shared array of `f64` (backend-interpreted).
pub type ArrF64 = u64;

/// Handle to a mutex or barrier.
pub type SyncId = u32;

/// Host-side services: allocation, initialization, synchronization-object
/// creation, and running a parallel region.
pub trait KernelRt: Sync {
    /// Backend name for reports ("pthreads" / "samhita").
    fn name(&self) -> &'static str;

    /// One shared (global) allocation of `n` doubles, zero-initialized —
    /// the paper's *global allocation* path.
    fn alloc_f64_global(&self, n: usize) -> ArrF64;

    /// Initialize an array from the host, outside timed runs.
    fn init_f64(&self, a: ArrF64, values: &[f64]);

    /// Read an array back from the host, outside timed runs.
    fn fetch_f64(&self, a: ArrF64, n: usize) -> Vec<f64>;

    /// Create a mutual-exclusion variable.
    fn mutex(&self) -> SyncId;

    /// Create a barrier over `parties` threads.
    fn barrier(&self, parties: u32) -> SyncId;

    /// Run `body` on `nthreads` compute threads and collect statistics.
    fn run(&self, nthreads: u32, body: &(dyn Fn(&mut dyn KernelCtx) + Sync)) -> RunReport;
}

/// Per-thread services inside a parallel region.
pub trait KernelCtx {
    /// This thread's id (0-based).
    fn tid(&self) -> u32;

    /// Number of threads in the region.
    fn nthreads(&self) -> u32;

    /// Thread-local allocation of `n` doubles — the paper's *local
    /// allocation* path (Samhita: the per-thread arena; native: ordinary
    /// memory).
    fn alloc_local_f64(&mut self, n: usize) -> ArrF64;

    /// Load element `i`.
    fn read(&mut self, a: ArrF64, i: usize) -> f64;

    /// Store element `i`.
    fn write(&mut self, a: ArrF64, i: usize, v: f64);

    /// Bulk load `out.len()` elements starting at `start`.
    fn read_block(&mut self, a: ArrF64, start: usize, out: &mut [f64]);

    /// Bulk store `src` starting at `start`.
    fn write_block(&mut self, a: ArrF64, start: usize, src: &[f64]);

    /// Read-modify-write `n` elements starting at `start`:
    /// `x[i] = f(i, x[i])` with `i` relative to `start`.
    fn update_block(
        &mut self,
        a: ArrF64,
        start: usize,
        n: usize,
        f: &mut dyn FnMut(usize, f64) -> f64,
    );

    /// Charge `flops` floating-point operations of pure compute.
    fn compute(&mut self, flops: u64);

    /// Restart the measurement epoch: reported statistics cover only work
    /// after the last call. Kernels call this after initialization, where a
    /// wall-clock benchmark would start its timer.
    fn start_timing(&mut self);

    /// Acquire a mutex (entering a consistency region under Samhita).
    fn lock(&mut self, m: SyncId);

    /// Release a mutex.
    fn unlock(&mut self, m: SyncId);

    /// Wait at a barrier.
    fn barrier_wait(&mut self, b: SyncId);

    /// The thread's virtual clock, ns.
    fn now_ns(&self) -> u64;

    /// Virtual time spent in synchronization so far, ns.
    fn sync_ns(&self) -> u64;
}

#[cfg(test)]
mod facade_tests {
    use super::*;
    use samhita_core::SamhitaConfig;

    /// The same tiny program must produce identical results on both
    /// backends — the façade's entire reason to exist.
    fn sum_program(rt: &dyn KernelRt, threads: u32) -> f64 {
        let n = 64usize;
        let arr = rt.alloc_f64_global(n * threads as usize);
        let total = rt.alloc_f64_global(1);
        let m = rt.mutex();
        let b = rt.barrier(threads);
        rt.run(threads, &|ctx| {
            let base = ctx.tid() as usize * n;
            ctx.update_block(arr, base, n, &mut |i, _| (base + i) as f64);
            ctx.compute(n as u64);
            ctx.barrier_wait(b);
            let mut local = 0.0;
            let mut buf = vec![0.0; n];
            ctx.read_block(arr, base, &mut buf);
            for v in buf {
                local += v;
            }
            ctx.lock(m);
            let t = ctx.read(total, 0);
            ctx.write(total, 0, t + local);
            ctx.unlock(m);
            ctx.barrier_wait(b);
        });
        rt.fetch_f64(total, 1)[0]
    }

    #[test]
    fn backends_agree_on_results() {
        let native = NativeRt::default();
        let samhita = SamhitaRt::new(SamhitaConfig::small_for_tests());
        for threads in [1u32, 2, 4] {
            let total = (0..(64 * threads as usize)).map(|i| i as f64).sum::<f64>();
            assert_eq!(sum_program(&native, threads), total, "native, {threads} threads");
            assert_eq!(sum_program(&samhita, threads), total, "samhita, {threads} threads");
        }
    }

    #[test]
    fn backends_report_names() {
        assert_eq!(NativeRt::default().name(), "pthreads");
        assert_eq!(SamhitaRt::new(SamhitaConfig::small_for_tests()).name(), "samhita");
    }
}
