//! The Samhita backend: adapts [`samhita_core::ThreadCtx`] to the façade.
//!
//! Array handles are global byte addresses; element `i` of handle `a` lives
//! at `a + 8 i`. "Local" allocations route through the thread's arena
//! allocator (the paper's strategy 1); "global" allocations are made by the
//! host through the manager.

use samhita_core::{RunReport, Samhita, SamhitaConfig, ThreadCtx};

use crate::{ArrF64, KernelCtx, KernelRt, SyncId};

/// The DSM backend.
pub struct SamhitaRt {
    sys: Samhita,
}

impl SamhitaRt {
    /// Bring up a Samhita system for this backend.
    pub fn new(cfg: SamhitaConfig) -> Self {
        SamhitaRt { sys: Samhita::new(cfg) }
    }

    /// Access the underlying system (stats, direct memory inspection).
    pub fn system(&self) -> &Samhita {
        &self.sys
    }

    /// Drain the event trace (see [`Samhita::take_trace`]); `None` unless
    /// the configuration enabled tracing.
    pub fn take_trace(&self) -> Option<samhita_trace::RunTrace> {
        self.sys.take_trace()
    }

    /// Tear down, returning server-side statistics.
    pub fn shutdown(self) -> samhita_core::SystemStats {
        self.sys.shutdown()
    }
}

impl KernelRt for SamhitaRt {
    fn name(&self) -> &'static str {
        "samhita"
    }

    fn alloc_f64_global(&self, n: usize) -> ArrF64 {
        self.sys.alloc_global(n as u64 * 8)
    }

    fn init_f64(&self, a: ArrF64, values: &[f64]) {
        self.sys.write_f64s(a, values);
    }

    fn fetch_f64(&self, a: ArrF64, n: usize) -> Vec<f64> {
        self.sys.read_f64s(a, n)
    }

    fn mutex(&self) -> SyncId {
        self.sys.create_mutex()
    }

    fn barrier(&self, parties: u32) -> SyncId {
        self.sys.create_barrier(parties)
    }

    fn run(&self, nthreads: u32, body: &(dyn Fn(&mut dyn KernelCtx) + Sync)) -> RunReport {
        self.sys.run(nthreads, |ctx| {
            let mut kctx = SamCtx { inner: ctx };
            body(&mut kctx);
        })
    }
}

struct SamCtx<'a> {
    inner: &'a mut ThreadCtx,
}

impl KernelCtx for SamCtx<'_> {
    fn tid(&self) -> u32 {
        self.inner.tid()
    }

    fn nthreads(&self) -> u32 {
        self.inner.nthreads()
    }

    fn alloc_local_f64(&mut self, n: usize) -> ArrF64 {
        self.inner.alloc(n as u64 * 8, 8)
    }

    fn read(&mut self, a: ArrF64, i: usize) -> f64 {
        self.inner.read_f64(a + i as u64 * 8)
    }

    fn write(&mut self, a: ArrF64, i: usize, v: f64) {
        self.inner.write_f64(a + i as u64 * 8, v);
    }

    fn read_block(&mut self, a: ArrF64, start: usize, out: &mut [f64]) {
        self.inner.read_f64_slice(a + start as u64 * 8, out);
    }

    fn write_block(&mut self, a: ArrF64, start: usize, src: &[f64]) {
        self.inner.write_f64_slice(a + start as u64 * 8, src);
    }

    fn update_block(
        &mut self,
        a: ArrF64,
        start: usize,
        n: usize,
        f: &mut dyn FnMut(usize, f64) -> f64,
    ) {
        self.inner.update_f64s(a + start as u64 * 8, n, f);
    }

    fn compute(&mut self, flops: u64) {
        self.inner.compute(flops);
    }

    fn start_timing(&mut self) {
        self.inner.start_timing();
    }

    fn lock(&mut self, m: SyncId) {
        self.inner.lock(m);
    }

    fn unlock(&mut self, m: SyncId) {
        self.inner.unlock(m);
    }

    fn barrier_wait(&mut self, b: SyncId) {
        self.inner.barrier(b);
    }

    fn now_ns(&self) -> u64 {
        self.inner.now().as_ns()
    }

    fn sync_ns(&self) -> u64 {
        self.inner.sync_time().as_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt() -> SamhitaRt {
        SamhitaRt::new(SamhitaConfig::small_for_tests())
    }

    #[test]
    fn local_allocations_use_the_arena() {
        let rt = rt();
        let layout = *rt.system().layout();
        rt.run(2, &|ctx| {
            let a = ctx.alloc_local_f64(128);
            let region = layout.region_of(a);
            assert_eq!(region, samhita_core::Region::Arena(ctx.tid()));
            ctx.write(a, 0, 1.5);
            assert_eq!(ctx.read(a, 0), 1.5);
        });
    }

    #[test]
    fn global_allocation_visible_across_threads_after_barrier() {
        let rt = rt();
        let a = rt.alloc_f64_global(64);
        let b = rt.barrier(2);
        rt.run(2, &|ctx| {
            let tid = ctx.tid() as usize;
            ctx.write(a, tid, (tid + 1) as f64);
            ctx.barrier_wait(b);
            let other = 1 - tid;
            assert_eq!(ctx.read(a, other), (other + 1) as f64);
        });
    }

    #[test]
    fn host_init_is_visible_inside_runs() {
        let rt = rt();
        let a = rt.alloc_f64_global(8);
        rt.init_f64(a, &[7.0; 8]);
        rt.run(1, &|ctx| {
            let mut buf = vec![0.0; 8];
            ctx.read_block(a, 0, &mut buf);
            assert_eq!(buf, vec![7.0; 8]);
        });
        assert_eq!(rt.fetch_f64(a, 8), vec![7.0; 8]);
    }

    #[test]
    fn shutdown_reports_server_activity() {
        let rt = rt();
        let a = rt.alloc_f64_global(8);
        rt.run(1, &|ctx| {
            ctx.write(a, 0, 1.0);
        });
        let stats = rt.shutdown();
        assert!(stats.servers[0].line_fetches > 0);
        assert!(stats.manager.requests > 0);
    }
}
