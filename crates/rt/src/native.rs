//! The "pthreads" baseline backend.
//!
//! Real OS threads over plain shared memory, standing in for the paper's
//! Pthreads runs on a cache-coherent node. Two fidelity decisions:
//!
//! * **Compute costs are identical to Samhita's** (same `flop_ns`,
//!   `mem_op_ns`): on a hardware-coherent node a cached load costs the same
//!   whether the program was written for Pthreads or Samhita, and this is
//!   what makes the paper's "normalized compute time" (Samhita ÷ 1-thread
//!   Pthreads) meaningful.
//! * **Synchronization costs are hardware-scale constants** (a hundred ns
//!   mutex handoff, a few hundred ns barrier) with the same virtual-clock
//!   combining the DSM uses — a lock grant never precedes the previous
//!   release, a barrier releases at the maximum arrival clock.
//!
//! Shared arrays are `AtomicU64`-backed bit-cast doubles, so the baseline is
//! data-race-free Rust even when kernels write disjoint elements without
//! locks.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use samhita_core::localsync::LocalSync;
use samhita_core::{RunReport, RuntimeKind, ThreadStats};
use samhita_sched::Scheduler;
use samhita_scl::{FabricStatsSnapshot, SimTime};
use samhita_trace::LatencyHistogram;
use serde::{Deserialize, Serialize};

use crate::{ArrF64, KernelCtx, KernelRt, SyncId};

/// Cost constants for the native baseline.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NativeCosts {
    /// Per-flop cost; keep equal to [`samhita_core::CostParams::flop_ns`].
    pub flop_ns: f64,
    /// Per-8-byte-access cost; keep equal to
    /// [`samhita_core::CostParams::mem_op_ns`].
    pub mem_op_ns: f64,
    /// Pthread mutex handoff cost.
    pub mutex_ns: u64,
    /// Pthread barrier cost (futex wake fan-out).
    pub barrier_ns: u64,
}

impl Default for NativeCosts {
    fn default() -> Self {
        let c = samhita_core::CostParams::default();
        NativeCosts { flop_ns: c.flop_ns, mem_op_ns: c.mem_op_ns, mutex_ns: 120, barrier_ns: 400 }
    }
}

impl NativeCosts {
    /// Costs matching a specific Samhita configuration's compute constants.
    pub fn matching(c: &samhita_core::CostParams) -> Self {
        NativeCosts { flop_ns: c.flop_ns, mem_op_ns: c.mem_op_ns, ..NativeCosts::default() }
    }
}

/// The native backend.
pub struct NativeRt {
    costs: NativeCosts,
    runtime: RuntimeKind,
    sched_seed: u64,
    arrays: RwLock<Vec<Arc<Vec<AtomicU64>>>>,
    locks: LocalSync,
    barriers: LocalSync,
}

impl Default for NativeRt {
    fn default() -> Self {
        NativeRt::new(NativeCosts::default())
    }
}

impl NativeRt {
    /// A backend with the given cost constants, running under the
    /// deterministic virtual-time scheduler (the default, matching
    /// [`samhita_core::SamhitaConfig`]).
    pub fn new(costs: NativeCosts) -> Self {
        NativeRt::with_runtime(costs, RuntimeKind::Det, 0)
    }

    /// A backend with an explicit runtime kind and scheduler tie-break seed.
    pub fn with_runtime(costs: NativeCosts, runtime: RuntimeKind, sched_seed: u64) -> Self {
        NativeRt {
            costs,
            runtime,
            sched_seed,
            arrays: RwLock::new(Vec::new()),
            locks: LocalSync::new(costs.mutex_ns),
            barriers: LocalSync::new(costs.barrier_ns),
        }
    }

    fn register(&self, n: usize) -> ArrF64 {
        let mut arrays = self.arrays.write();
        arrays.push(Arc::new((0..n).map(|_| AtomicU64::new(0f64.to_bits())).collect()));
        (arrays.len() - 1) as ArrF64
    }

    fn array(&self, a: ArrF64) -> Arc<Vec<AtomicU64>> {
        Arc::clone(&self.arrays.read()[a as usize])
    }
}

impl KernelRt for NativeRt {
    fn name(&self) -> &'static str {
        "pthreads"
    }

    fn alloc_f64_global(&self, n: usize) -> ArrF64 {
        self.register(n)
    }

    fn init_f64(&self, a: ArrF64, values: &[f64]) {
        let arr = self.array(a);
        for (slot, &v) in arr.iter().zip(values) {
            slot.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    fn fetch_f64(&self, a: ArrF64, n: usize) -> Vec<f64> {
        let arr = self.array(a);
        arr.iter().take(n).map(|s| f64::from_bits(s.load(Ordering::Relaxed))).collect()
    }

    fn mutex(&self) -> SyncId {
        self.locks.create_lock()
    }

    fn barrier(&self, parties: u32) -> SyncId {
        self.barriers.create_barrier(parties)
    }

    fn run(&self, nthreads: u32, body: &(dyn Fn(&mut dyn KernelCtx) + Sync)) -> RunReport {
        assert!(nthreads >= 1);
        // Deterministic mode: a fresh per-run scheduler; the host holds the
        // baton while spawning so every compute task is registered (in tid
        // order) before any of them runs, then parks for the joins. The
        // LocalSync lock/barrier blocking points pick up the scheduler
        // through `Scheduler::current()`.
        let sched = (self.runtime == RuntimeKind::Det).then(|| Scheduler::new(self.sched_seed));
        let host = sched.as_ref().map(|s| s.register_running());
        let stats = std::thread::scope(|s| {
            let handles: Vec<_> = (0..nthreads)
                .map(|tid| {
                    let task = sched.as_ref().map(|sched| sched.register_ready(0));
                    s.spawn(move || {
                        if let Some(task) = &task {
                            task.start();
                        }
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut ctx = NativeCtx {
                                rt: self,
                                tid,
                                nthreads,
                                clock: SimTime::ZERO,
                                frac_ns: 0.0,
                                sync: SimTime::ZERO,
                                epoch_clock: SimTime::ZERO,
                                epoch_sync: SimTime::ZERO,
                                lock_wait: LatencyHistogram::new(),
                                barrier_wait: LatencyHistogram::new(),
                            };
                            body(&mut ctx);
                            let total = ctx.clock.saturating_sub(ctx.epoch_clock);
                            let sync = ctx.sync.saturating_sub(ctx.epoch_sync);
                            ThreadStats {
                                tid,
                                total,
                                sync,
                                compute: total.saturating_sub(sync),
                                lock_wait: ctx.lock_wait,
                                barrier_wait: ctx.barrier_wait,
                                epoch_ns: ctx.epoch_clock.as_ns(),
                                end_ns: ctx.clock.as_ns(),
                                ..ThreadStats::default()
                            }
                        }));
                        if let Some(task) = &task {
                            task.exit();
                        }
                        match result {
                            Ok(stats) => stats,
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    })
                })
                .collect();
            if let Some(host) = &host {
                host.suspend();
            }
            let stats = handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(stats) => stats,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>();
            if let Some(host) = &host {
                host.resume();
            }
            stats
        });
        RunReport::new(stats, FabricStatsSnapshot::default())
    }
}

struct NativeCtx<'rt> {
    rt: &'rt NativeRt,
    tid: u32,
    nthreads: u32,
    clock: SimTime,
    frac_ns: f64,
    sync: SimTime,
    epoch_clock: SimTime,
    epoch_sync: SimTime,
    lock_wait: LatencyHistogram,
    barrier_wait: LatencyHistogram,
}

impl NativeCtx<'_> {
    fn charge(&mut self, ns: f64) {
        self.frac_ns += ns;
        if self.frac_ns >= 1.0 {
            let whole = self.frac_ns.floor();
            self.clock += SimTime::from_ns(whole as u64);
            self.frac_ns -= whole;
        }
    }

    fn charge_mem_ops(&mut self, ops: usize) {
        self.charge(ops as f64 * self.rt.costs.mem_op_ns);
    }
}

impl KernelCtx for NativeCtx<'_> {
    fn tid(&self) -> u32 {
        self.tid
    }

    fn nthreads(&self) -> u32 {
        self.nthreads
    }

    fn alloc_local_f64(&mut self, n: usize) -> ArrF64 {
        // Plain memory: "local" vs "global" only matters for layout under
        // the DSM; here both are ordinary allocations.
        self.rt.register(n)
    }

    fn read(&mut self, a: ArrF64, i: usize) -> f64 {
        self.charge_mem_ops(1);
        f64::from_bits(self.rt.array(a)[i].load(Ordering::Relaxed))
    }

    fn write(&mut self, a: ArrF64, i: usize, v: f64) {
        self.charge_mem_ops(1);
        self.rt.array(a)[i].store(v.to_bits(), Ordering::Relaxed);
    }

    fn read_block(&mut self, a: ArrF64, start: usize, out: &mut [f64]) {
        self.charge_mem_ops(out.len());
        let arr = self.rt.array(a);
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = f64::from_bits(arr[start + k].load(Ordering::Relaxed));
        }
    }

    fn write_block(&mut self, a: ArrF64, start: usize, src: &[f64]) {
        self.charge_mem_ops(src.len());
        let arr = self.rt.array(a);
        for (k, &v) in src.iter().enumerate() {
            arr[start + k].store(v.to_bits(), Ordering::Relaxed);
        }
    }

    fn update_block(
        &mut self,
        a: ArrF64,
        start: usize,
        n: usize,
        f: &mut dyn FnMut(usize, f64) -> f64,
    ) {
        self.charge_mem_ops(2 * n);
        let arr = self.rt.array(a);
        for k in 0..n {
            let v = f64::from_bits(arr[start + k].load(Ordering::Relaxed));
            arr[start + k].store(f(k, v).to_bits(), Ordering::Relaxed);
        }
    }

    fn compute(&mut self, flops: u64) {
        self.charge(flops as f64 * self.rt.costs.flop_ns);
    }

    fn start_timing(&mut self) {
        self.epoch_clock = self.clock;
        self.epoch_sync = self.sync;
    }

    fn lock(&mut self, m: SyncId) {
        let t0 = self.clock;
        let (at, _, _) = self.rt.locks.acquire(m, self.tid, self.clock, Vec::new(), Vec::new(), 0);
        self.clock = self.clock.max(at);
        self.lock_wait.record((self.clock - t0).as_ns());
        self.sync += self.clock - t0;
    }

    fn unlock(&mut self, m: SyncId) {
        let t0 = self.clock;
        self.rt.locks.release(m, self.tid, self.clock, Vec::new(), Vec::new());
        self.charge(self.rt.costs.mutex_ns as f64);
        self.sync += self.clock - t0;
    }

    fn barrier_wait(&mut self, b: SyncId) {
        let t0 = self.clock;
        let (at, _, _) =
            self.rt.barriers.barrier_wait(b, self.tid, self.clock, Vec::new(), Vec::new(), 0);
        self.clock = self.clock.max(at);
        self.barrier_wait.record((self.clock - t0).as_ns());
        self.sync += self.clock - t0;
    }

    fn now_ns(&self) -> u64 {
        self.clock.as_ns()
    }

    fn sync_ns(&self) -> u64 {
        self.sync.as_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_time_is_deterministic_and_flat() {
        let rt = NativeRt::default();
        let b = rt.barrier(4);
        let report = rt.run(4, &|ctx| {
            ctx.compute(1_000_000);
            ctx.barrier_wait(b);
        });
        let compute: Vec<u64> = report.threads.iter().map(|t| t.compute.as_ns()).collect();
        // flop_ns = 0.35 -> exactly 350_000 ns each.
        assert!(compute.iter().all(|&c| c == 350_000), "{compute:?}");
        // Barrier time is small and bounded.
        assert!(report.threads.iter().all(|t| t.sync.as_ns() < 10_000));
    }

    #[test]
    fn mutex_serializes_critical_sections_in_virtual_time() {
        let rt = NativeRt::default();
        let m = rt.mutex();
        let total = rt.alloc_f64_global(1);
        let report = rt.run(8, &|ctx| {
            ctx.lock(m);
            let v = ctx.read(total, 0);
            ctx.write(total, 0, v + 1.0);
            ctx.unlock(m);
        });
        assert_eq!(rt.fetch_f64(total, 1)[0], 8.0);
        // Virtual serialization: someone's grant waited behind 7 releases.
        let max_total = report.makespan.as_ns();
        assert!(max_total >= 7 * rt.costs.mutex_ns, "makespan {max_total}");
    }

    #[test]
    fn blocks_and_elementwise_agree() {
        let rt = NativeRt::default();
        let a = rt.alloc_f64_global(16);
        rt.run(1, &|ctx| {
            ctx.update_block(a, 0, 16, &mut |i, _| i as f64);
            let mut buf = vec![0.0; 16];
            ctx.read_block(a, 0, &mut buf);
            for (i, v) in buf.iter().enumerate() {
                assert_eq!(*v, i as f64);
                assert_eq!(ctx.read(a, i), i as f64);
            }
            ctx.write_block(a, 0, &[9.0; 16]);
            assert_eq!(ctx.read(a, 15), 9.0);
        });
    }

    #[test]
    fn init_and_fetch_roundtrip() {
        let rt = NativeRt::default();
        let a = rt.alloc_f64_global(4);
        rt.init_f64(a, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(rt.fetch_f64(a, 4), vec![1.0, 2.0, 3.0, 4.0]);
    }
}
