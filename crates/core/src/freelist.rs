//! First-fit free-list allocator with coalescing.
//!
//! One engine serves all three of the paper's allocation strategies: each
//! thread arena embeds one (strategy 1), the manager runs one over the
//! shared zone (strategy 2) and one over the striped region with line-sized
//! alignment (strategy 3). Address-ordered free ranges coalesce on free, so
//! long alloc/free workloads do not fragment unboundedly.

use std::collections::{BTreeMap, HashMap};

/// A first-fit allocator over `[base, limit)`.
#[derive(Clone, Debug)]
pub struct FreeListAlloc {
    base: u64,
    limit: u64,
    /// Free ranges: start -> length. Invariant: disjoint, non-adjacent.
    free: BTreeMap<u64, u64>,
    /// Live allocations: start -> length.
    live: HashMap<u64, u64>,
}

impl FreeListAlloc {
    /// An allocator owning `[base, limit)`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    pub fn new(base: u64, limit: u64) -> Self {
        assert!(limit > base, "empty allocator range");
        let mut free = BTreeMap::new();
        free.insert(base, limit - base);
        FreeListAlloc { base, limit, free, live: HashMap::new() }
    }

    /// Allocate `size` bytes aligned to `align` (a power of two). Returns
    /// `None` when no free range fits.
    ///
    /// # Panics
    /// Panics on a zero size or a non-power-of-two alignment.
    pub fn alloc(&mut self, size: u64, align: u64) -> Option<u64> {
        assert!(size > 0, "zero-size allocation");
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        // First fit in address order.
        let mut found: Option<(u64, u64, u64)> = None; // (range_start, range_len, addr)
        for (&start, &len) in &self.free {
            let addr = (start + align - 1) & !(align - 1);
            if addr + size <= start + len {
                found = Some((start, len, addr));
                break;
            }
        }
        let (start, len, addr) = found?;
        self.free.remove(&start);
        if addr > start {
            self.free.insert(start, addr - start);
        }
        let tail = (start + len) - (addr + size);
        if tail > 0 {
            self.free.insert(addr + size, tail);
        }
        self.live.insert(addr, size);
        Some(addr)
    }

    /// Free an allocation by its base address, coalescing neighbors.
    /// Returns the freed size.
    ///
    /// # Panics
    /// Panics on a double free or an address that was never allocated.
    pub fn free(&mut self, addr: u64) -> u64 {
        let size = self.live.remove(&addr).expect("free of unallocated address");
        let mut start = addr;
        let mut len = size;
        // Coalesce with predecessor.
        if let Some((&pstart, &plen)) = self.free.range(..addr).next_back() {
            if pstart + plen == addr {
                self.free.remove(&pstart);
                start = pstart;
                len += plen;
            }
        }
        // Coalesce with successor.
        if let Some((&nstart, &nlen)) = self.free.range(addr + size..).next() {
            if start + len == nstart {
                self.free.remove(&nstart);
                len += nlen;
            }
        }
        self.free.insert(start, len);
        size
    }

    /// Whether `addr` is a live allocation base.
    pub fn is_live(&self, addr: u64) -> bool {
        self.live.contains_key(&addr)
    }

    /// Size of the live allocation at `addr`.
    pub fn size_of(&self, addr: u64) -> Option<u64> {
        self.live.get(&addr).copied()
    }

    /// Total bytes currently allocated.
    pub fn live_bytes(&self) -> u64 {
        self.live.values().sum()
    }

    /// Total bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.free.values().sum()
    }

    /// The managed range.
    pub fn range(&self) -> (u64, u64) {
        (self.base, self.limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_like_first_fits() {
        let mut a = FreeListAlloc::new(4096, 4096 + 1024);
        let p1 = a.alloc(100, 8).unwrap();
        let p2 = a.alloc(100, 8).unwrap();
        assert_eq!(p1, 4096);
        assert!(p2 >= p1 + 100);
        assert_eq!(a.live_bytes(), 200);
    }

    #[test]
    fn alignment_respected() {
        let mut a = FreeListAlloc::new(10, 10_000);
        let p = a.alloc(64, 256).unwrap();
        assert_eq!(p % 256, 0);
        let q = a.alloc(1, 1024).unwrap();
        assert_eq!(q % 1024, 0);
    }

    #[test]
    fn exhaustion_returns_none() {
        let mut a = FreeListAlloc::new(0, 256);
        assert!(a.alloc(200, 8).is_some());
        assert!(a.alloc(100, 8).is_none());
        assert!(a.alloc(56, 8).is_some());
    }

    #[test]
    fn free_and_reuse() {
        let mut a = FreeListAlloc::new(0, 1024);
        let p = a.alloc(512, 8).unwrap();
        assert!(a.alloc(1024, 8).is_none());
        assert_eq!(a.free(p), 512);
        // After coalescing the whole range is available again.
        assert_eq!(a.free_bytes(), 1024);
        assert!(a.alloc(1024, 8).is_some());
    }

    #[test]
    fn coalescing_merges_all_neighbors() {
        let mut a = FreeListAlloc::new(0, 3000);
        let p1 = a.alloc(1000, 8).unwrap();
        let p2 = a.alloc(1000, 8).unwrap();
        let p3 = a.alloc(1000, 8).unwrap();
        a.free(p1);
        a.free(p3);
        a.free(p2); // bridges both neighbors
        assert_eq!(a.free_bytes(), 3000);
        assert_eq!(a.alloc(3000, 8), Some(0));
    }

    #[test]
    #[should_panic(expected = "unallocated address")]
    fn double_free_panics() {
        let mut a = FreeListAlloc::new(0, 1024);
        let p = a.alloc(8, 8).unwrap();
        a.free(p);
        a.free(p);
    }

    #[test]
    fn size_queries() {
        let mut a = FreeListAlloc::new(0, 1024);
        let p = a.alloc(40, 8).unwrap();
        assert!(a.is_live(p));
        assert_eq!(a.size_of(p), Some(40));
        assert_eq!(a.size_of(p + 8), None);
        assert_eq!(a.range(), (0, 1024));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Random alloc/free interleavings: live allocations never overlap,
        /// all stay in range, and byte accounting balances.
        #[test]
        fn allocations_never_overlap(
            ops in proptest::collection::vec((1u64..512, 0usize..4), 1..200)
        ) {
            let (base, limit) = (4096u64, 4096 + 64 * 1024);
            let mut a = FreeListAlloc::new(base, limit);
            let mut held: Vec<(u64, u64)> = Vec::new();
            for (size, action) in ops {
                if action == 0 && !held.is_empty() {
                    // Free a pseudo-random held allocation.
                    let idx = (size as usize) % held.len();
                    let (addr, sz) = held.swap_remove(idx);
                    prop_assert_eq!(a.free(addr), sz);
                } else {
                    let align = 1u64 << (action as u32 * 2); // 1,4,16,64
                    if let Some(addr) = a.alloc(size, align) {
                        prop_assert!(addr >= base && addr + size <= limit);
                        prop_assert_eq!(addr % align, 0);
                        for &(other, osz) in &held {
                            let disjoint = addr + size <= other || other + osz <= addr;
                            prop_assert!(disjoint, "overlap: [{},{}) vs [{},{})",
                                addr, addr + size, other, other + osz);
                        }
                        held.push((addr, size));
                    }
                }
                let live: u64 = held.iter().map(|&(_, s)| s).sum();
                prop_assert_eq!(a.live_bytes(), live);
            }
            // Free everything: the arena must coalesce back to one range.
            for (addr, _) in held {
                a.free(addr);
            }
            prop_assert_eq!(a.free_bytes(), limit - base);
            prop_assert!(a.alloc(limit - base, 1).is_some());
        }
    }
}
