#![warn(missing_docs)]

//! # Samhita: a virtual shared memory runtime (simulated reproduction)
//!
//! This crate is the paper's primary contribution: a software
//! distributed-shared-memory system that provides a consistent shared global
//! address space to compute threads running on components without hardware
//! cache coherence, built from:
//!
//! * **memory servers** that own the backing store (`samhita-mem`),
//! * a **manager** responsible for allocation, synchronization and thread
//!   placement ([`manager`]),
//! * **compute threads**, each with a local software cache filled by demand
//!   paging with multi-page cache lines, adjacent-line prefetching, and
//!   write-biased eviction ([`cache`], [`thread`]),
//! * the **regional consistency** model (`samhita-regc`): fine-grain updates
//!   for lock-protected stores, page-granularity twin/diff updates for
//!   ordinary stores, write-notice invalidations at synchronization
//!   operations,
//! * a **three-strategy allocator**: per-thread arenas, a manager-mediated
//!   shared zone, and server-striped large allocations ([`freelist`],
//!   [`layout`], [`thread::ThreadCtx::alloc`]),
//! * all over the simulated **Samhita Communication Layer** (`samhita-scl`).
//!
//! ## Quick start
//!
//! ```
//! use samhita_core::{Samhita, SamhitaConfig};
//!
//! let system = Samhita::new(SamhitaConfig::small_for_tests());
//! let counter = system.alloc_global(8);
//! let lock = system.create_mutex();
//! let barrier = system.create_barrier(4);
//!
//! let report = system.run(4, |ctx| {
//!     // Lock-protected read-modify-write: a consistency region, flushed
//!     // at fine grain on unlock.
//!     ctx.lock(lock);
//!     let v = ctx.read_u64(counter);
//!     ctx.write_u64(counter, v + 1);
//!     ctx.unlock(lock);
//!     ctx.barrier(barrier);
//!     // After the barrier every thread observes all four increments.
//!     assert_eq!(ctx.read_u64(counter), 4);
//! });
//! assert_eq!(report.threads.len(), 4);
//! let mut back = [0u8; 8];
//! system.read_global(counter, &mut back);
//! assert_eq!(u64::from_le_bytes(back), 4);
//! ```

pub mod cache;
pub mod config;
pub mod freelist;
pub mod layout;
pub mod localsync;
pub mod manager;
pub mod msg;
pub mod proto;
pub mod stats;
pub mod system;
pub mod thread;

pub use config::{
    ConfigError, ConsistencyVariant, CostParams, EvictionPolicy, FabricProfile, FaultConfig,
    PartitionSpec, RetryConfig, RuntimeKind, SamhitaConfig, TopologyKind,
};
pub use layout::{AddressLayout, Placement, Region};
pub use localsync::LocalSyncStats;
pub use msg::MgrError;
pub use stats::{HostNanos, RunReport, ThreadStats, TimeBreakdown};
pub use system::{Samhita, SystemStats};
pub use thread::ThreadCtx;
