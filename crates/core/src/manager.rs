//! The manager: allocation, synchronization, and membership services.
//!
//! The paper routes *all* synchronization through a single manager process —
//! and §V names the resulting overhead as a cost to optimize. The engine
//! here is pure ((request, arrival time) → outgoing messages), with its own
//! [`VirtualResource`] so request bursts queue; the SCL event loop lives in
//! [`crate::system`].
//!
//! The manager is also the publication point for RegC write notices: every
//! flush-carrying request (`Acquire`, `Release`, `BarrierWait`, `CondWait`,
//! `Exit`) publishes an interval, and every blocking grant (`Granted`,
//! `BarrierReleased`) returns the notices the recipient has not yet seen.
//!
//! Since PR 8 the engine is a **write-ahead-logged state machine**: every
//! mutation first becomes a typed [`MgrLogRecord`] (via [`record`]) and is
//! then folded through the single [`apply`] entry point, so the whole
//! manager state is a pure fold over the log. The event loop ships the log
//! to a hot-standby engine on another node, which folds the identical
//! records through the identical function and is therefore a bit-identical
//! replica — including its [`VirtualResource`] clock, so post-failover
//! service times match what the primary would have produced.
//!
//! [`record`]: ManagerEngine::record
//! [`apply`]: ManagerEngine::apply

use std::collections::{HashMap, VecDeque};

use samhita_regc::{FineUpdate, IntervalLog};
use samhita_scl::{EndpointId, SimTime, VirtualResource};
use serde::{Deserialize, Serialize};

use crate::config::SamhitaConfig;
use crate::freelist::FreeListAlloc;
use crate::layout::{AddressLayout, Region};
use crate::msg::{MgrError, MgrLogOp, MgrLogRecord, MgrRequest, MgrResponse};

/// Size cap of the striped region (virtual space, not memory).
const STRIPED_REGION_BYTES: u64 = 1 << 40;

#[derive(Clone, Debug)]
struct Waiter {
    tid: u32,
    token: u64,
    /// Virtual time at which this waiter's request finished manager service.
    ready: SimTime,
    last_seen: u64,
}

#[derive(Clone, Debug, Default)]
struct LockState {
    holder: Option<u32>,
    queue: VecDeque<Waiter>,
    /// Virtual time of the last release (a grant can never precede it).
    free_at: SimTime,
    /// When the current holder's lease expires. A standby that has taken
    /// over may reclaim the lock past this instant; the primary never
    /// reclaims (holders it granted to can always reach it to release).
    leased_until: SimTime,
}

#[derive(Clone, Debug)]
struct BarrierState {
    parties: u32,
    waiting: Vec<Waiter>,
}

#[derive(Clone, Debug, Default)]
struct CondState {
    waiters: VecDeque<(Waiter, u32 /* lock to re-acquire */)>,
}

#[derive(Clone, Debug)]
struct ThreadInfo {
    ep: EndpointId,
    /// Floor of notices this thread may still request (`since(last_seen)`).
    /// Updated at every grant/release delivery; drives log truncation.
    last_seen: u64,
    /// Observers (the host control client) never receive notices and are
    /// excluded from retention accounting.
    observer: bool,
}

/// A message the event loop must send on the engine's behalf.
#[derive(Clone, Debug)]
pub struct Outgoing {
    /// Destination endpoint.
    pub dst: EndpointId,
    /// Request token being answered.
    pub token: u64,
    /// Virtual send time.
    pub at: SimTime,
    /// The response payload.
    pub resp: MgrResponse,
}

/// Manager activity counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ManagerStats {
    /// Total requests handled.
    pub requests: u64,
    /// Lock acquisitions requested.
    pub acquires: u64,
    /// Lock releases processed.
    pub releases: u64,
    /// Barrier arrivals processed.
    pub barrier_waits: u64,
    /// Barrier episodes released.
    pub barrier_releases: u64,
    /// Condition-variable waits queued.
    pub cond_waits: u64,
    /// Condition-variable signals/broadcasts processed.
    pub cond_signals: u64,
    /// Allocation requests served.
    pub allocs: u64,
    /// Frees served.
    pub frees: u64,
    /// Write-notice intervals published.
    pub notices_published: u64,
    /// Locks reclaimed from expired leases (standby takeover only).
    pub lease_reclaims: u64,
    /// Late releases from lease-reclaimed holders, absorbed without
    /// mutating lock state (their write notices still publish).
    pub stale_releases: u64,
    /// Write-ahead log records shipped to the hot standby (0 when no
    /// standby is configured; counted by the event loop).
    pub log_records_shipped: u64,
    /// Virtual busy time of the manager's service resource.
    pub busy_ns: u64,
    /// Total virtual time requests queued before manager service began.
    pub queue_wait_ns: u64,
    /// Peak system occupancy observed at any arrival (1 = uncontended).
    pub peak_queue_depth: u64,
    /// Sum of arrival-sampled occupancies (mean = sum / requests).
    pub queue_depth_sum: u64,
}

/// The manager's request-processing engine.
pub struct ManagerEngine {
    layout: AddressLayout,
    mgr_service: SimTime,
    barrier_release: SimTime,
    shared: FreeListAlloc,
    striped: FreeListAlloc,
    locks: Vec<LockState>,
    barriers: Vec<BarrierState>,
    conds: Vec<CondState>,
    intervals: IntervalLog,
    threads: HashMap<u32, ThreadInfo>,
    resource: VirtualResource,
    stats: ManagerStats,
    /// Service-completion time of the most recent request (for tracing).
    last_done: SimTime,
    /// Sequence number of the last log record folded in. `apply` refuses
    /// gaps, so two engines with equal `applied_seq` have equal state.
    applied_seq: u64,
    /// Lease length added to every grant instant.
    lease: SimTime,
    /// Acknowledge `Release` requests with an `Ok` (standby mode): a
    /// release may then never vanish silently in a crash window.
    ack_releases: bool,
    /// Lock → holder it was lease-reclaimed from; the holder's eventual
    /// late release is absorbed instead of treated as a protocol error.
    reclaimed: HashMap<u32, u32>,
    /// (lock, old holder) pairs reclaimed by the latest sweep, for the
    /// event loop to trace. Drained by [`ManagerEngine::take_reclaims`].
    reclaims: Vec<(u32, u32)>,
}

impl ManagerEngine {
    /// Build the engine for a configuration.
    pub fn new(cfg: &SamhitaConfig) -> Self {
        let layout = AddressLayout::new(cfg);
        ManagerEngine {
            mgr_service: SimTime::from_ns(cfg.costs.mgr_service_ns),
            barrier_release: SimTime::from_ns(cfg.costs.barrier_release_ns),
            shared: FreeListAlloc::new(layout.shared_base, layout.shared_end),
            striped: FreeListAlloc::new(
                layout.striped_base,
                layout.striped_base + STRIPED_REGION_BYTES,
            ),
            layout,
            locks: Vec::new(),
            barriers: Vec::new(),
            conds: Vec::new(),
            intervals: IntervalLog::new(),
            threads: HashMap::new(),
            resource: VirtualResource::new(),
            stats: ManagerStats::default(),
            last_done: SimTime::ZERO,
            applied_seq: 0,
            lease: SimTime::from_ns(cfg.mgr_lease_ns),
            ack_releases: cfg.manager_standby,
            reclaimed: HashMap::new(),
            reclaims: Vec::new(),
        }
    }

    /// When the most recently handled request finished manager service —
    /// the virtual-time stamp for that request's trace event.
    pub fn last_done(&self) -> SimTime {
        self.last_done
    }

    /// Process one request. `src` is the requester's endpoint, `arrival` the
    /// virtual delivery time of the request at the manager. Equivalent to
    /// [`record`](Self::record) followed by [`apply`](Self::apply).
    pub fn handle(
        &mut self,
        src: EndpointId,
        tid: u32,
        token: u64,
        req: MgrRequest,
        arrival: SimTime,
    ) -> Vec<Outgoing> {
        let rec = self.record(src, tid, token, req, arrival);
        self.apply(rec)
    }

    /// Stamp a client request as the next write-ahead log record. Does not
    /// mutate any state: the record only takes effect (and the sequence
    /// number is only consumed) when it is folded in by
    /// [`apply`](Self::apply).
    pub fn record(
        &self,
        src: EndpointId,
        tid: u32,
        token: u64,
        req: MgrRequest,
        arrival: SimTime,
    ) -> MgrLogRecord {
        MgrLogRecord {
            seq: self.applied_seq + 1,
            op: MgrLogOp::Request { src, tid, token, req, arrival },
        }
    }

    /// Stamp a lease-expiry sweep as the next write-ahead log record
    /// (generated only by an active standby after takeover).
    pub fn record_reclaim(&self, now: SimTime) -> MgrLogRecord {
        MgrLogRecord { seq: self.applied_seq + 1, op: MgrLogOp::ReclaimExpired { now } }
    }

    /// Sequence number of the last record folded in.
    pub fn applied_seq(&self) -> u64 {
        self.applied_seq
    }

    /// Fold one log record into the state machine — the **only** mutation
    /// entry point. Primary and standby both call this, with the identical
    /// record stream, which is the whole replication argument: state is a
    /// pure fold of `apply` over the log.
    ///
    /// # Panics
    /// If `rec.seq` is not exactly `applied_seq() + 1` (a log gap would
    /// silently fork the replica).
    pub fn apply(&mut self, rec: MgrLogRecord) -> Vec<Outgoing> {
        assert_eq!(
            rec.seq,
            self.applied_seq + 1,
            "manager log gap: applying record {} after {}",
            rec.seq,
            self.applied_seq
        );
        self.applied_seq = rec.seq;
        match rec.op {
            MgrLogOp::Request { src, tid, token, req, arrival } => {
                self.serve(src, tid, token, req, arrival)
            }
            MgrLogOp::ReclaimExpired { now } => self.reclaim_expired(now),
        }
    }

    fn serve(
        &mut self,
        src: EndpointId,
        tid: u32,
        token: u64,
        req: MgrRequest,
        arrival: SimTime,
    ) -> Vec<Outgoing> {
        self.stats.requests += 1;
        let (_, done) = self.resource.reserve(arrival, self.mgr_service);
        self.last_done = done;
        match req {
            MgrRequest::Register { observer } => {
                let watermark = self.intervals.watermark();
                self.threads.insert(tid, ThreadInfo { ep: src, last_seen: watermark, observer });
                vec![Outgoing {
                    dst: src,
                    token,
                    at: done,
                    resp: MgrResponse::Registered { watermark },
                }]
            }
            MgrRequest::AllocShared { size, align } => {
                self.stats.allocs += 1;
                let resp = match self.shared.alloc(size, align.max(8)) {
                    Some(addr) => MgrResponse::Addr(addr),
                    None => MgrResponse::Err(MgrError::SharedExhausted { size }),
                };
                vec![Outgoing { dst: src, token, at: done, resp }]
            }
            MgrRequest::AllocStriped { size } => {
                self.stats.allocs += 1;
                // Line-aligned so consecutive lines of the allocation rotate
                // across memory servers from its first byte.
                let resp = match self.striped.alloc(size, self.layout.line_bytes) {
                    Some(addr) => MgrResponse::Addr(addr),
                    None => MgrResponse::Err(MgrError::StripedExhausted { size }),
                };
                vec![Outgoing { dst: src, token, at: done, resp }]
            }
            MgrRequest::Free { addr } => {
                self.stats.frees += 1;
                let resp = match self.layout.region_of(addr) {
                    Region::Shared if self.shared.is_live(addr) => {
                        self.shared.free(addr);
                        MgrResponse::Ok
                    }
                    Region::Striped if self.striped.is_live(addr) => {
                        self.striped.free(addr);
                        MgrResponse::Ok
                    }
                    region => MgrResponse::Err(MgrError::BadFree { addr, region }),
                };
                vec![Outgoing { dst: src, token, at: done, resp }]
            }
            MgrRequest::CreateLock => {
                self.locks.push(LockState::default());
                let id = (self.locks.len() - 1) as u32;
                vec![Outgoing { dst: src, token, at: done, resp: MgrResponse::SyncId(id) }]
            }
            MgrRequest::CreateBarrier { parties } => {
                assert!(parties >= 1, "barrier over zero parties");
                self.barriers.push(BarrierState { parties, waiting: Vec::new() });
                let id = (self.barriers.len() - 1) as u32;
                vec![Outgoing { dst: src, token, at: done, resp: MgrResponse::SyncId(id) }]
            }
            MgrRequest::CreateCond => {
                self.conds.push(CondState::default());
                let id = (self.conds.len() - 1) as u32;
                vec![Outgoing { dst: src, token, at: done, resp: MgrResponse::SyncId(id) }]
            }
            MgrRequest::Acquire { lock, pages, updates, last_seen } => {
                self.stats.acquires += 1;
                if !self.threads.contains_key(&tid) {
                    let resp = MgrResponse::Err(MgrError::Unregistered { tid });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                if lock as usize >= self.locks.len() {
                    let resp = MgrResponse::Err(MgrError::UnknownLock { lock });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                self.publish(tid, pages, updates);
                let waiter = Waiter { tid, token, ready: done, last_seen };
                let lease = self.lease;
                let state = &mut self.locks[lock as usize];
                if state.holder.is_none() {
                    state.holder = Some(tid);
                    let at = done.max(state.free_at);
                    state.leased_until = at + lease;
                    vec![self.grant(waiter, at)]
                } else {
                    state.queue.push_back(waiter);
                    Vec::new()
                }
            }
            MgrRequest::Release { lock, pages, updates, last_seen: _ } => {
                self.stats.releases += 1;
                if !self.threads.contains_key(&tid) {
                    let resp = MgrResponse::Err(MgrError::Unregistered { tid });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                self.publish(tid, pages, updates);
                let mut out = self.release_lock(lock, tid, done, src, token);
                // In standby mode, releases are acknowledged so the client
                // can retry (and fail over) one that vanished in a crash
                // window. Skip the ack when the release itself already
                // produced a response for the releaser.
                if self.ack_releases && !out.iter().any(|o| o.dst == src && o.token == token) {
                    out.push(Outgoing { dst: src, token, at: done, resp: MgrResponse::Ok });
                }
                out
            }
            MgrRequest::BarrierWait { barrier, pages, updates, last_seen } => {
                self.stats.barrier_waits += 1;
                if !self.threads.contains_key(&tid) {
                    let resp = MgrResponse::Err(MgrError::Unregistered { tid });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                if barrier as usize >= self.barriers.len() {
                    let resp = MgrResponse::Err(MgrError::UnknownBarrier { barrier });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                self.publish(tid, pages, updates);
                let state = &mut self.barriers[barrier as usize];
                state.waiting.push(Waiter { tid, token, ready: done, last_seen });
                if state.waiting.len() as u32 == state.parties {
                    self.stats.barrier_releases += 1;
                    let state = &mut self.barriers[barrier as usize];
                    let release_at =
                        state.waiting.iter().map(|w| w.ready).fold(SimTime::ZERO, SimTime::max)
                            + self.barrier_release;
                    let waiters = std::mem::take(&mut state.waiting);
                    let mut out = Vec::with_capacity(waiters.len());
                    for w in waiters {
                        let notices = self.intervals.since(w.last_seen);
                        let watermark = self.intervals.watermark();
                        out.push(Outgoing {
                            dst: self.ep_of(w.tid),
                            token: w.token,
                            at: release_at,
                            resp: MgrResponse::BarrierReleased { notices, watermark },
                        });
                        self.note_delivered(w.tid, watermark);
                    }
                    out
                } else {
                    Vec::new()
                }
            }
            MgrRequest::CondWait { cond, lock, pages, updates, last_seen } => {
                self.stats.cond_waits += 1;
                if !self.threads.contains_key(&tid) {
                    let resp = MgrResponse::Err(MgrError::Unregistered { tid });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                if self.locks.get(lock as usize).is_none() {
                    let resp = MgrResponse::Err(MgrError::UnknownLock { lock });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                if cond as usize >= self.conds.len() {
                    let resp = MgrResponse::Err(MgrError::UnknownCond { cond });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                self.publish(tid, pages, updates);
                let waiter = Waiter { tid, token, ready: done, last_seen };
                self.conds[cond as usize].waiters.push_back((waiter, lock));
                // Atomically release the lock the caller held.
                self.release_lock(lock, tid, done, src, token)
            }
            MgrRequest::CondSignal { cond } => {
                self.stats.cond_signals += 1;
                if self.conds.get(cond as usize).is_none() {
                    let resp = MgrResponse::Err(MgrError::UnknownCond { cond });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                let mut out = self.wake_waiters(cond, done, 1);
                out.push(Outgoing { dst: src, token, at: done, resp: MgrResponse::Ok });
                out
            }
            MgrRequest::CondBroadcast { cond } => {
                self.stats.cond_signals += 1;
                if self.conds.get(cond as usize).is_none() {
                    let resp = MgrResponse::Err(MgrError::UnknownCond { cond });
                    return vec![Outgoing { dst: src, token, at: done, resp }];
                }
                let mut out = self.wake_waiters(cond, done, usize::MAX);
                out.push(Outgoing { dst: src, token, at: done, resp: MgrResponse::Ok });
                out
            }
            MgrRequest::Exit { pages, updates } => {
                self.publish(tid, pages, updates);
                self.threads.remove(&tid);
                vec![Outgoing { dst: src, token, at: done, resp: MgrResponse::Ok }]
            }
        }
    }

    /// Record a sync op's flushed pages and fine updates as a write-notice
    /// interval. Callers must validate the request (registered thread, known
    /// sync-object id) *first*: a rejected request publishes nothing, so its
    /// flush never becomes visible to later grantees under an error response.
    fn publish(&mut self, tid: u32, pages: Vec<u64>, updates: Vec<FineUpdate>) {
        if !pages.is_empty() || !updates.is_empty() {
            self.stats.notices_published += 1;
            self.intervals.publish(tid, pages, updates);
        }
    }

    fn ep_of(&self, tid: u32) -> EndpointId {
        self.threads.get(&tid).unwrap_or_else(|| panic!("unregistered thread {tid}")).ep
    }

    fn grant(&mut self, waiter: Waiter, at: SimTime) -> Outgoing {
        let notices = self.intervals.since(waiter.last_seen);
        let watermark = self.intervals.watermark();
        self.note_delivered(waiter.tid, watermark);
        Outgoing {
            dst: self.ep_of(waiter.tid),
            token: waiter.token,
            at,
            resp: MgrResponse::Granted { notices, watermark },
        }
    }

    /// Record that `tid` has now seen everything up to `watermark`, and
    /// garbage-collect notice records every participant has seen.
    fn note_delivered(&mut self, tid: u32, watermark: u64) {
        if let Some(info) = self.threads.get_mut(&tid) {
            info.last_seen = info.last_seen.max(watermark);
        }
        let floor = self
            .threads
            .values()
            .filter(|t| !t.observer)
            .map(|t| t.last_seen)
            .min()
            .unwrap_or(watermark);
        self.intervals.truncate_seen(floor);
    }

    /// Number of retained write-notice records (diagnostics / tests).
    pub fn retained_notices(&self) -> usize {
        self.intervals.len()
    }

    /// Release `lock` held by `tid` at time `done`, granting to the next
    /// queued waiter if any. A release of a lock `tid` does not hold is a
    /// typed error back to `src` — except when the lock was lease-reclaimed
    /// from `tid`, in which case the late release is absorbed (its write
    /// notices, published by the caller, stand).
    fn release_lock(
        &mut self,
        lock: u32,
        tid: u32,
        done: SimTime,
        src: EndpointId,
        token: u64,
    ) -> Vec<Outgoing> {
        let lease = self.lease;
        let Some(state) = self.locks.get_mut(lock as usize) else {
            let resp = MgrResponse::Err(MgrError::UnknownLock { lock });
            return vec![Outgoing { dst: src, token, at: done, resp }];
        };
        if state.holder != Some(tid) {
            if self.reclaimed.get(&lock) == Some(&tid) {
                self.reclaimed.remove(&lock);
                self.stats.stale_releases += 1;
                return Vec::new();
            }
            let resp = MgrResponse::Err(MgrError::NotHolder { lock, tid });
            return vec![Outgoing { dst: src, token, at: done, resp }];
        }
        let state = self.locks.get_mut(lock as usize).expect("checked above");
        state.holder = None;
        state.free_at = done;
        if let Some(next) = state.queue.pop_front() {
            state.holder = Some(next.tid);
            let at = done.max(next.ready);
            state.leased_until = at + lease;
            vec![self.grant(next, at)]
        } else {
            Vec::new()
        }
    }

    /// Move up to `n` condvar waiters onto their lock queues (or grant
    /// directly when the lock is free). The caller has validated `cond`;
    /// queued locks were validated when the waiter enqueued.
    fn wake_waiters(&mut self, cond: u32, now: SimTime, n: usize) -> Vec<Outgoing> {
        let lease = self.lease;
        let mut out = Vec::new();
        for _ in 0..n {
            let Some((mut waiter, lock)) = self
                .conds
                .get_mut(cond as usize)
                .expect("caller validated cond")
                .waiters
                .pop_front()
            else {
                break;
            };
            waiter.ready = waiter.ready.max(now);
            let state = self.locks.get_mut(lock as usize).expect("validated at CondWait");
            if state.holder.is_none() {
                state.holder = Some(waiter.tid);
                let at = waiter.ready.max(state.free_at);
                state.leased_until = at + lease;
                out.push(self.grant(waiter, at));
            } else {
                state.queue.push_back(waiter);
            }
        }
        out
    }

    /// Reclaim every lock whose lease expired before `now` (the
    /// [`MgrLogOp::ReclaimExpired`] fold step): the holder is deposed, its
    /// eventual late release will be absorbed, and the next queued waiter
    /// (if any) is granted at `now`.
    fn reclaim_expired(&mut self, now: SimTime) -> Vec<Outgoing> {
        let lease = self.lease;
        let mut out = Vec::new();
        for lock in 0..self.locks.len() as u32 {
            let state = &mut self.locks[lock as usize];
            let Some(holder) = state.holder else { continue };
            if state.leased_until > now {
                continue;
            }
            state.holder = None;
            state.free_at = state.free_at.max(state.leased_until);
            let granted = if let Some(next) = state.queue.pop_front() {
                state.holder = Some(next.tid);
                let at = now.max(next.ready).max(state.free_at);
                state.leased_until = at + lease;
                Some((next, at))
            } else {
                None
            };
            self.stats.lease_reclaims += 1;
            self.reclaimed.insert(lock, holder);
            self.reclaims.push((lock, holder));
            if let Some((next, at)) = granted {
                out.push(self.grant(next, at));
            }
        }
        out
    }

    /// Earliest lease expiry among currently held locks — the virtual
    /// deadline an active standby sleeps until between requests.
    pub fn next_lease_expiry(&self) -> Option<SimTime> {
        self.locks.iter().filter(|s| s.holder.is_some()).map(|s| s.leased_until).min()
    }

    /// Drain the (lock, deposed holder) pairs reclaimed since the last
    /// drain, for `LeaseReclaim` trace emission.
    pub fn take_reclaims(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.reclaims)
    }

    /// Activity counters.
    pub fn stats(&self) -> ManagerStats {
        let mut s = self.stats;
        let r = self.resource.stats();
        s.busy_ns = r.busy_ns;
        s.queue_wait_ns = r.queue_wait_ns;
        s.peak_queue_depth = r.peak_depth;
        s.queue_depth_sum = r.depth_sum;
        s
    }

    /// Drain the manager resource's queue-occupancy samples (see
    /// [`samhita_scl::VirtualResource::take_samples`]).
    pub fn take_queue_samples(&self) -> (Vec<samhita_scl::QueueSample>, u64) {
        self.resource.take_samples()
    }

    /// Reset the manager resource's queue accounting between runs.
    pub fn reset_queue_accounting(&self) {
        self.resource.reset_queue_accounting();
    }

    /// Notice-log watermark (tests / diagnostics).
    pub fn notice_watermark(&self) -> u64 {
        self.intervals.watermark()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: u32 = 0;
    const T1: u32 = 1;
    const EP0: EndpointId = EndpointId(10);
    const EP1: EndpointId = EndpointId(11);

    fn engine() -> ManagerEngine {
        let cfg = SamhitaConfig::small_for_tests();
        let mut e = ManagerEngine::new(&cfg);
        e.handle(EP0, T0, 1, MgrRequest::Register { observer: false }, SimTime::ZERO);
        e.handle(EP1, T1, 1, MgrRequest::Register { observer: false }, SimTime::ZERO);
        e
    }

    fn lock_id(e: &mut ManagerEngine) -> u32 {
        match &e.handle(EP0, T0, 2, MgrRequest::CreateLock, SimTime::ZERO)[0].resp {
            MgrResponse::SyncId(id) => *id,
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn register_and_create_objects() {
        let mut e = engine();
        let out = e.handle(EP0, T0, 5, MgrRequest::CreateBarrier { parties: 2 }, SimTime::ZERO);
        assert!(matches!(out[0].resp, MgrResponse::SyncId(0)));
        let out = e.handle(EP0, T0, 6, MgrRequest::CreateCond, SimTime::ZERO);
        assert!(matches!(out[0].resp, MgrResponse::SyncId(0)));
    }

    #[test]
    fn uncontended_acquire_grants_immediately() {
        let mut e = engine();
        let l = lock_id(&mut e);
        let out = e.handle(
            EP0,
            T0,
            3,
            MgrRequest::Acquire { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::from_us(1),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, EP0);
        assert!(matches!(out[0].resp, MgrResponse::Granted { .. }));
        assert!(out[0].at >= SimTime::from_us(1));
    }

    #[test]
    fn contended_acquire_queues_until_release() {
        let mut e = engine();
        let l = lock_id(&mut e);
        e.handle(
            EP0,
            T0,
            3,
            MgrRequest::Acquire { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        // Second acquire: queued, nothing sent.
        let out = e.handle(
            EP1,
            T1,
            4,
            MgrRequest::Acquire { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::from_ns(10),
        );
        assert!(out.is_empty());
        // Release by T0 grants T1, no earlier than the release.
        let out = e.handle(
            EP0,
            T0,
            5,
            MgrRequest::Release { lock: l, pages: vec![7], updates: vec![], last_seen: 0 },
            SimTime::from_us(5),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, EP1);
        assert!(out[0].at >= SimTime::from_us(5));
        // The grant carries the releaser's write notice for page 7.
        match &out[0].resp {
            MgrResponse::Granted { notices, watermark } => {
                assert_eq!(notices.len(), 1);
                assert_eq!(notices[0].writer, T0);
                assert_eq!(notices[0].pages, vec![7]);
                assert_eq!(*watermark, 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn foreign_release_reports_a_typed_error() {
        let mut e = engine();
        let l = lock_id(&mut e);
        e.handle(
            EP0,
            T0,
            3,
            MgrRequest::Acquire { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        let out = e.handle(
            EP1,
            T1,
            4,
            MgrRequest::Release { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, EP1);
        assert!(
            matches!(out[0].resp, MgrResponse::Err(MgrError::NotHolder { lock: 0, tid: 1 })),
            "unexpected {:?}",
            out[0].resp
        );
        // The rightful holder is undisturbed and can still release.
        let out = e.handle(
            EP0,
            T0,
            5,
            MgrRequest::Release { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        assert!(out.is_empty(), "uncontended release sends nothing without ack mode");
    }

    #[test]
    fn unknown_sync_ids_report_typed_errors() {
        let mut e = engine();
        let cases: Vec<(MgrRequest, MgrError)> = vec![
            (
                MgrRequest::Acquire { lock: 9, pages: vec![], updates: vec![], last_seen: 0 },
                MgrError::UnknownLock { lock: 9 },
            ),
            (
                MgrRequest::Release { lock: 9, pages: vec![], updates: vec![], last_seen: 0 },
                MgrError::UnknownLock { lock: 9 },
            ),
            (
                MgrRequest::BarrierWait {
                    barrier: 7,
                    pages: vec![],
                    updates: vec![],
                    last_seen: 0,
                },
                MgrError::UnknownBarrier { barrier: 7 },
            ),
            (
                MgrRequest::CondWait {
                    cond: 5,
                    lock: 9,
                    pages: vec![],
                    updates: vec![],
                    last_seen: 0,
                },
                MgrError::UnknownLock { lock: 9 },
            ),
            (MgrRequest::CondSignal { cond: 5 }, MgrError::UnknownCond { cond: 5 }),
            (MgrRequest::CondBroadcast { cond: 5 }, MgrError::UnknownCond { cond: 5 }),
        ];
        for (i, (req, want)) in cases.into_iter().enumerate() {
            let out = e.handle(EP0, T0, 10 + i as u64, req, SimTime::ZERO);
            assert_eq!(out.len(), 1);
            match &out[0].resp {
                MgrResponse::Err(got) => assert_eq!(*got, want),
                other => panic!("case {i}: unexpected {other:?}"),
            }
        }
        // An unregistered thread gets a typed error instead of a panic.
        let out = e.handle(
            EndpointId(77),
            42,
            99,
            MgrRequest::Acquire { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        assert!(matches!(out[0].resp, MgrResponse::Err(MgrError::Unregistered { tid: 42 })));
    }

    /// Folding the identical record stream through `apply` on a second
    /// engine reproduces the primary bit-for-bit — the replication
    /// argument for the hot standby.
    #[test]
    fn log_replay_reproduces_state_and_responses() {
        let cfg = SamhitaConfig::small_for_tests();
        let mut primary = ManagerEngine::new(&cfg);
        let mut standby = ManagerEngine::new(&cfg);
        let script: Vec<(EndpointId, u32, u64, MgrRequest)> = vec![
            (EP0, T0, 1, MgrRequest::Register { observer: false }),
            (EP1, T1, 1, MgrRequest::Register { observer: false }),
            (EP0, T0, 2, MgrRequest::CreateLock),
            (EP0, T0, 3, MgrRequest::AllocShared { size: 4096, align: 8 }),
            (
                EP0,
                T0,
                4,
                MgrRequest::Acquire { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
            ),
            (
                EP1,
                T1,
                5,
                MgrRequest::Acquire { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
            ),
            (
                EP0,
                T0,
                6,
                MgrRequest::Release { lock: 0, pages: vec![3], updates: vec![], last_seen: 0 },
            ),
        ];
        for (i, (src, tid, token, req)) in script.into_iter().enumerate() {
            let arrival = SimTime::from_ns(100 * i as u64);
            let rec = primary.record(src, tid, token, req, arrival);
            let shipped = rec.clone();
            let a = primary.apply(rec);
            let b = standby.apply(shipped);
            assert_eq!(a.len(), b.len(), "record {i}: diverging fan-out");
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.dst, y.dst);
                assert_eq!(x.token, y.token);
                assert_eq!(x.at, y.at, "record {i}: service times diverge");
                assert_eq!(format!("{:?}", x.resp), format!("{:?}", y.resp));
            }
        }
        assert_eq!(primary.applied_seq(), standby.applied_seq());
        assert_eq!(primary.notice_watermark(), standby.notice_watermark());
        assert_eq!(primary.last_done(), standby.last_done());
        assert_eq!(primary.stats(), standby.stats());
    }

    #[test]
    #[should_panic(expected = "manager log gap")]
    fn apply_refuses_log_gaps() {
        let cfg = SamhitaConfig::small_for_tests();
        let mut e = ManagerEngine::new(&cfg);
        let rec = e.record(EP0, T0, 1, MgrRequest::Register { observer: false }, SimTime::ZERO);
        let skipped = MgrLogRecord { seq: rec.seq + 1, op: rec.op };
        e.apply(skipped);
    }

    fn leased_engine() -> ManagerEngine {
        let cfg = SamhitaConfig {
            manager_standby: true,
            mgr_lease_ns: 1_000, // 1 µs leases so expiry is easy to reach
            ..SamhitaConfig::small_for_tests()
        };
        let mut e = ManagerEngine::new(&cfg);
        e.handle(EP0, T0, 1, MgrRequest::Register { observer: false }, SimTime::ZERO);
        e.handle(EP1, T1, 1, MgrRequest::Register { observer: false }, SimTime::ZERO);
        e.handle(EP0, T0, 2, MgrRequest::CreateLock, SimTime::ZERO);
        e
    }

    #[test]
    fn expired_leases_are_reclaimed_and_waiters_granted() {
        let mut e = leased_engine();
        let out = e.handle(
            EP0,
            T0,
            3,
            MgrRequest::Acquire { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        let granted_at = out[0].at;
        e.handle(
            EP1,
            T1,
            4,
            MgrRequest::Acquire { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::from_ns(100),
        );
        let expiry = e.next_lease_expiry().expect("a held lock has a lease");
        assert_eq!(expiry, granted_at + SimTime::from_ns(1_000));
        // Before expiry a sweep reclaims nothing.
        let rec = e.record_reclaim(SimTime::from_ns(1));
        assert!(e.apply(rec).is_empty());
        assert!(e.take_reclaims().is_empty());
        // After expiry the sweep deposes T0 and grants the queued T1.
        let sweep_at = expiry + SimTime::from_ns(1);
        let rec = e.record_reclaim(sweep_at);
        let out = e.apply(rec);
        assert_eq!(e.take_reclaims(), vec![(0, T0)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, EP1);
        assert!(matches!(out[0].resp, MgrResponse::Granted { .. }));
        assert!(out[0].at >= sweep_at);
        assert_eq!(e.stats().lease_reclaims, 1);
        // The deposed holder's late release is absorbed: no error, its
        // notices still publish, and the new holder keeps the lock.
        let out = e.handle(
            EP0,
            T0,
            5,
            MgrRequest::Release { lock: 0, pages: vec![9], updates: vec![], last_seen: 0 },
            sweep_at + SimTime::from_ns(50),
        );
        assert_eq!(out.len(), 1, "standby mode still acks the stale release");
        assert_eq!(out[0].dst, EP0);
        assert!(matches!(out[0].resp, MgrResponse::Ok));
        let s = e.stats();
        assert_eq!(s.stale_releases, 1);
        assert_eq!(s.notices_published, 1, "the stale release's flush still published");
        // T1 still holds: its own release must succeed.
        let out = e.handle(
            EP1,
            T1,
            6,
            MgrRequest::Release { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
            sweep_at + SimTime::from_ns(100),
        );
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].resp, MgrResponse::Ok), "ack mode acknowledges releases");
    }

    #[test]
    fn releases_are_acknowledged_in_standby_mode() {
        let mut e = leased_engine();
        e.handle(
            EP0,
            T0,
            3,
            MgrRequest::Acquire { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        let out = e.handle(
            EP0,
            T0,
            4,
            MgrRequest::Release { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::from_ns(500),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, EP0);
        assert_eq!(out[0].token, 4);
        assert!(matches!(out[0].resp, MgrResponse::Ok));
    }

    #[test]
    fn barrier_releases_all_at_max_arrival() {
        let mut e = engine();
        e.handle(EP0, T0, 2, MgrRequest::CreateBarrier { parties: 2 }, SimTime::ZERO);
        let out = e.handle(
            EP0,
            T0,
            3,
            MgrRequest::BarrierWait { barrier: 0, pages: vec![1], updates: vec![], last_seen: 0 },
            SimTime::from_us(1),
        );
        assert!(out.is_empty(), "first arrival waits");
        let out = e.handle(
            EP1,
            T1,
            4,
            MgrRequest::BarrierWait { barrier: 0, pages: vec![2], updates: vec![], last_seen: 0 },
            SimTime::from_us(9),
        );
        assert_eq!(out.len(), 2, "last arrival releases everyone");
        let release_at = out[0].at;
        assert!(out.iter().all(|o| o.at == release_at));
        assert!(release_at > SimTime::from_us(9), "release after the straggler");
        // Each participant sees both write notices.
        for o in &out {
            match &o.resp {
                MgrResponse::BarrierReleased { notices, watermark } => {
                    assert_eq!(notices.len(), 2);
                    assert_eq!(*watermark, 2);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        // The barrier is reusable.
        let out = e.handle(
            EP0,
            T0,
            5,
            MgrRequest::BarrierWait { barrier: 0, pages: vec![], updates: vec![], last_seen: 2 },
            SimTime::from_us(20),
        );
        assert!(out.is_empty());
    }

    #[test]
    fn condvar_wait_signal_handoff() {
        let mut e = engine();
        let l = lock_id(&mut e);
        e.handle(EP0, T0, 9, MgrRequest::CreateCond, SimTime::ZERO);
        // T0 holds the lock and waits on the cond (releasing the lock).
        e.handle(
            EP0,
            T0,
            10,
            MgrRequest::Acquire { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        let out = e.handle(
            EP0,
            T0,
            11,
            MgrRequest::CondWait {
                cond: 0,
                lock: l,
                pages: vec![3],
                updates: vec![],
                last_seen: 0,
            },
            SimTime::from_us(1),
        );
        assert!(out.is_empty(), "no one queued on the lock");
        // T1 can now take the lock, then signals.
        let out = e.handle(
            EP1,
            T1,
            12,
            MgrRequest::Acquire { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::from_us(2),
        );
        assert_eq!(out.len(), 1);
        let out = e.handle(EP1, T1, 13, MgrRequest::CondSignal { cond: 0 }, SimTime::from_us(3));
        // Signal moved T0 onto the lock queue; signaler gets an Ok.
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].resp, MgrResponse::Ok));
        // T1 releases: T0 is re-granted the lock (token 11 — the CondWait).
        let out = e.handle(
            EP1,
            T1,
            14,
            MgrRequest::Release { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::from_us(4),
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dst, EP0);
        assert_eq!(out[0].token, 11);
        assert!(matches!(out[0].resp, MgrResponse::Granted { .. }));
    }

    #[test]
    fn signal_with_no_waiters_is_ok() {
        let mut e = engine();
        e.handle(EP0, T0, 2, MgrRequest::CreateCond, SimTime::ZERO);
        let out = e.handle(EP0, T0, 3, MgrRequest::CondSignal { cond: 0 }, SimTime::ZERO);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0].resp, MgrResponse::Ok));
    }

    #[test]
    fn alloc_free_roundtrip_by_region() {
        let mut e = engine();
        let shared = match &e.handle(
            EP0,
            T0,
            2,
            MgrRequest::AllocShared { size: 4096, align: 8 },
            SimTime::ZERO,
        )[0]
        .resp
        {
            MgrResponse::Addr(a) => *a,
            other => panic!("unexpected {other:?}"),
        };
        let striped =
            match &e.handle(EP0, T0, 3, MgrRequest::AllocStriped { size: 1 << 20 }, SimTime::ZERO)
                [0]
            .resp
            {
                MgrResponse::Addr(a) => *a,
                other => panic!("unexpected {other:?}"),
            };
        let layout = AddressLayout::new(&SamhitaConfig::small_for_tests());
        assert_eq!(layout.region_of(shared), Region::Shared);
        assert_eq!(layout.region_of(striped), Region::Striped);
        assert_eq!(striped % layout.line_bytes, 0, "striped allocations are line-aligned");
        for addr in [shared, striped] {
            let out = e.handle(EP0, T0, 4, MgrRequest::Free { addr }, SimTime::ZERO);
            assert!(matches!(out[0].resp, MgrResponse::Ok));
        }
        // Double free reports an error instead of panicking the manager.
        let out = e.handle(EP0, T0, 5, MgrRequest::Free { addr: shared }, SimTime::ZERO);
        assert!(matches!(out[0].resp, MgrResponse::Err(_)));
    }

    #[test]
    fn manager_requests_queue_on_its_resource() {
        let mut e = engine();
        let a = e.handle(EP0, T0, 2, MgrRequest::CreateLock, SimTime::ZERO)[0].at;
        let b = e.handle(EP0, T0, 3, MgrRequest::CreateLock, SimTime::ZERO)[0].at;
        assert!(b > a, "same-arrival requests serialize at the manager");
    }

    #[test]
    fn notice_log_is_garbage_collected_once_everyone_has_seen() {
        let mut e = engine();
        e.handle(EP0, T0, 2, MgrRequest::CreateBarrier { parties: 2 }, SimTime::ZERO);
        let mut seen = [0u64; 2];
        for round in 0..50u64 {
            for (tid, ep) in [(T0, EP0), (T1, EP1)] {
                let out = e.handle(
                    ep,
                    tid,
                    10 + round,
                    MgrRequest::BarrierWait {
                        barrier: 0,
                        pages: vec![round],
                        updates: vec![],
                        last_seen: seen[tid as usize],
                    },
                    SimTime::from_us(round),
                );
                for o in out {
                    if let MgrResponse::BarrierReleased { watermark, .. } = o.resp {
                        // Track each participant's watermark like the real
                        // thread context would.
                        seen = [watermark; 2];
                    }
                }
            }
            // Retention must stay bounded by one round's publications, not
            // grow with history.
            assert!(
                e.retained_notices() <= 4,
                "round {round}: {} notices retained",
                e.retained_notices()
            );
        }
        assert!(e.notice_watermark() >= 100);
    }

    #[test]
    fn observers_do_not_block_truncation() {
        let mut e = engine();
        // A host-like observer registered from the start with last_seen 0.
        e.handle(EndpointId(99), 999, 1, MgrRequest::Register { observer: true }, SimTime::ZERO);
        e.handle(EP0, T0, 2, MgrRequest::CreateBarrier { parties: 2 }, SimTime::ZERO);
        let mut seen = [0u64; 2];
        for round in 0..10u64 {
            for (tid, ep) in [(T0, EP0), (T1, EP1)] {
                let out = e.handle(
                    ep,
                    tid,
                    10,
                    MgrRequest::BarrierWait {
                        barrier: 0,
                        pages: vec![round],
                        updates: vec![],
                        last_seen: seen[tid as usize],
                    },
                    SimTime::ZERO,
                );
                for o in out {
                    if let MgrResponse::BarrierReleased { watermark, .. } = o.resp {
                        seen = [watermark; 2];
                    }
                }
            }
        }
        assert!(e.retained_notices() <= 4, "observer pinned the log: {}", e.retained_notices());
    }

    #[test]
    fn late_registrants_start_at_the_current_watermark() {
        let mut e = engine();
        let l = lock_id(&mut e);
        e.handle(
            EP0,
            T0,
            3,
            MgrRequest::Acquire { lock: l, pages: vec![1], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        e.handle(
            EP0,
            T0,
            4,
            MgrRequest::Release { lock: l, pages: vec![2], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        let out =
            e.handle(EndpointId(50), 7, 5, MgrRequest::Register { observer: false }, SimTime::ZERO);
        match &out[0].resp {
            MgrResponse::Registered { watermark } => assert_eq!(*watermark, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn stats_track_activity() {
        let mut e = engine();
        let l = lock_id(&mut e);
        e.handle(
            EP0,
            T0,
            3,
            MgrRequest::Acquire { lock: l, pages: vec![1], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        e.handle(
            EP0,
            T0,
            4,
            MgrRequest::Release { lock: l, pages: vec![], updates: vec![], last_seen: 0 },
            SimTime::ZERO,
        );
        let s = e.stats();
        assert_eq!(s.acquires, 1);
        assert_eq!(s.releases, 1);
        assert_eq!(s.notices_published, 1);
        assert!(s.busy_ns > 0);
        assert_eq!(e.notice_watermark(), 1);
    }
}

#[cfg(test)]
mod stress {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Randomized lock traffic from many clients: exactly one holder at any
    /// time, every acquire eventually granted, grants never precede the
    /// releases that enabled them.
    #[test]
    fn lock_service_invariants_under_random_traffic() {
        let cfg = SamhitaConfig::small_for_tests();
        let mut e = ManagerEngine::new(&cfg);
        const CLIENTS: u32 = 6;
        for tid in 0..CLIENTS {
            e.handle(
                EndpointId(100 + tid),
                tid,
                1,
                MgrRequest::Register { observer: false },
                SimTime::ZERO,
            );
        }
        e.handle(EndpointId(100), 0, 2, MgrRequest::CreateLock, SimTime::ZERO);

        let mut rng = StdRng::seed_from_u64(2024);
        let mut holder: Option<u32> = None;
        let mut waiting: Vec<u32> = Vec::new();
        let mut idle: Vec<u32> = (0..CLIENTS).collect();
        let mut granted_count = 0u32;
        let mut acquires = 0u32;
        let mut now = SimTime::ZERO;
        let mut last_release = SimTime::ZERO;

        let absorb = |outs: Vec<Outgoing>,
                      holder: &mut Option<u32>,
                      waiting: &mut Vec<u32>,
                      granted: &mut u32,
                      last_release: SimTime| {
            for out in outs {
                assert!(matches!(out.resp, MgrResponse::Granted { .. }));
                assert!(out.at >= last_release, "grant precedes enabling release");
                let tid = out.dst.0 - 100;
                assert!(holder.is_none(), "two holders at once");
                *holder = Some(tid);
                waiting.retain(|&w| w != tid);
                *granted += 1;
            }
        };

        for step in 0..400 {
            now += SimTime::from_ns(50);
            let tok = 10 + step;
            if rng.gen_bool(0.5) && !idle.is_empty() {
                // A random idle client asks for the lock.
                let tid = idle.swap_remove(rng.gen_range(0..idle.len()));
                acquires += 1;
                let outs = e.handle(
                    EndpointId(100 + tid),
                    tid,
                    tok,
                    MgrRequest::Acquire { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
                    now,
                );
                if outs.is_empty() {
                    waiting.push(tid);
                } else {
                    assert!(holder.is_none());
                    absorb(outs, &mut holder, &mut waiting, &mut granted_count, last_release);
                    assert_eq!(holder, Some(tid));
                }
            } else if let Some(h) = holder.take() {
                // The holder releases.
                last_release = now;
                let outs = e.handle(
                    EndpointId(100 + h),
                    h,
                    tok,
                    MgrRequest::Release { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
                    now,
                );
                idle.push(h);
                absorb(outs, &mut holder, &mut waiting, &mut granted_count, last_release);
                if let Some(new_holder) = holder {
                    assert!(!waiting.contains(&new_holder));
                }
            }
        }
        // Drain: release until the queue is empty.
        while let Some(h) = holder.take() {
            now += SimTime::from_ns(50);
            let outs = e.handle(
                EndpointId(100 + h),
                h,
                9999,
                MgrRequest::Release { lock: 0, pages: vec![], updates: vec![], last_seen: 0 },
                now,
            );
            idle.push(h);
            absorb(outs, &mut holder, &mut waiting, &mut granted_count, now);
        }
        assert!(waiting.is_empty(), "acquires left ungranted: {waiting:?}");
        assert_eq!(granted_count, acquires, "every acquire granted exactly once");
        let s = e.stats();
        assert_eq!(s.acquires, acquires as u64);
        assert_eq!(s.releases, granted_count as u64);
    }
}
