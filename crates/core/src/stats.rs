//! Per-thread and per-run measurement.
//!
//! The paper's evaluation splits application runtime into **compute time**
//! and **synchronization time** (Figures 3–11). We reproduce that split
//! exactly: every virtual nanosecond of a thread's clock belongs to one of
//! the two buckets — synchronization operations (lock/unlock, barriers,
//! condition waits, including the consistency flushes they perform) charge
//! the sync bucket, everything else (including demand-fetch misses and
//! invalidation refetches during computation, which is where false sharing
//! hurts) is compute time.

use samhita_scl::{FabricStatsSnapshot, MsgClass, QueueSample, SimTime};
use samhita_trace::{HotspotMap, LatencyHistogram};
use serde::{Deserialize, Serialize};

use crate::layout::{AddressLayout, Region};

/// Counters and clocks of one compute thread over one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Thread id within the run.
    pub tid: u32,
    /// Final virtual clock (total time).
    pub total: SimTime,
    /// Time inside synchronization operations.
    pub sync: SimTime,
    /// `total - sync`.
    pub compute: SimTime,
    /// Demand line fetches (cold or capacity misses).
    pub line_misses: u64,
    /// Single-page refetches after invalidation (false-sharing traffic).
    pub page_refetches: u64,
    /// Misses satisfied by a completed prefetch.
    pub prefetch_hits: u64,
    /// Misses that had to wait for an in-flight prefetch.
    pub prefetch_late: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Pages invalidated by write notices from other threads.
    pub invalidations: u64,
    /// Twins created (first ordinary write to a clean page).
    pub twins_created: u64,
    /// Ordinary-region diff payload flushed, in bytes.
    pub diff_bytes_flushed: u64,
    /// Fine-grain (consistency-region) payload flushed, in bytes.
    pub fine_bytes_flushed: u64,
    /// Lock acquisitions.
    pub locks_acquired: u64,
    /// Barrier episodes.
    pub barriers: u64,
    /// Protocol requests retransmitted after detecting loss.
    pub retries: u64,
    /// Memory-server failovers: the thread gave up on a primary home and
    /// re-homed its traffic to the replica.
    pub failovers: u64,
    /// Manager failovers: the thread exhausted its retry budget against the
    /// primary manager and re-homed all manager traffic to the hot standby
    /// (at most 1 per thread — the re-home is sticky).
    pub mgr_failovers: u64,
    /// Latency of every synchronous fetch stall (demand misses, refetches,
    /// late prefetch waits). Recorded unconditionally — histograms are part
    /// of the report, not of the (optional) event trace.
    pub fetch_latency: LatencyHistogram,
    /// Lock-wait latency: acquire request → grant observed.
    pub lock_wait: LatencyHistogram,
    /// Barrier-wait latency: arrival → release observed.
    pub barrier_wait: LatencyHistogram,
    /// Per-page protocol activity (misses, refetches, invalidations, twins,
    /// flushed bytes). Always on, like the histograms: part of the report,
    /// not of the (optional) event trace.
    pub hot: HotspotMap,
    /// Virtual clock at the timing epoch (where `total` starts counting).
    pub epoch_ns: u64,
    /// Virtual clock when the thread body finished (`epoch_ns + total`).
    pub end_ns: u64,
    /// Σ synchronous fetch-stall waits (demand misses, refetches, late
    /// prefetch waits). Sum of exactly the intervals `fetch_latency` buckets.
    pub fetch_wait_ns: u64,
    /// Σ lock waits: acquire request → grant observed, including condition
    /// re-acquires. Sum of exactly the intervals `lock_wait` buckets.
    pub lock_wait_ns: u64,
    /// Σ barrier waits: arrival → release observed.
    pub barrier_wait_ns: u64,
    /// Σ non-sync manager RPC waits (alloc, free, create, signal…).
    pub mgr_wait_ns: u64,
    /// Σ time inside sync-time consistency flushes (twin diffing, staging,
    /// batched sends, the ack-horizon fence). Measured *around* the whole
    /// flush, and the lock/barrier waits are measured *after* the flush
    /// returns, so the five wait classes are pairwise disjoint by
    /// construction (the conservation audit, DESIGN.md §13).
    pub flush_wait_ns: u64,
}

/// Where one thread's share of the run went: the five measured wait classes,
/// the compute remainder, and scheduler idle (the gap between this thread's
/// finish and the run makespan). Sums to the makespan exactly — see
/// [`ThreadStats::breakdown`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeBreakdown {
    /// Compute remainder: `total` minus every measured wait.
    pub compute_ns: u64,
    /// Synchronous fetch stalls.
    pub fetch_ns: u64,
    /// Lock waits (request → grant).
    pub lock_ns: u64,
    /// Barrier waits (arrival → release).
    pub barrier_ns: u64,
    /// Non-sync manager RPC waits.
    pub mgr_ns: u64,
    /// Sync-time consistency flushes.
    pub flush_ns: u64,
    /// Time after this thread finished while the run was still going.
    pub idle_ns: u64,
    /// The thread's own measured time (`compute + waits`).
    pub total_ns: u64,
}

impl TimeBreakdown {
    /// Sum of every class including idle; equals the makespan it was built
    /// against (the conservation identity).
    pub fn sum_ns(&self) -> u64 {
        self.compute_ns
            + self.fetch_ns
            + self.lock_ns
            + self.barrier_ns
            + self.mgr_ns
            + self.flush_ns
            + self.idle_ns
    }

    /// Sum of the five measured wait classes.
    pub fn wait_ns(&self) -> u64 {
        self.fetch_ns + self.lock_ns + self.barrier_ns + self.mgr_ns + self.flush_ns
    }

    fn add(&mut self, other: &TimeBreakdown) {
        self.compute_ns += other.compute_ns;
        self.fetch_ns += other.fetch_ns;
        self.lock_ns += other.lock_ns;
        self.barrier_ns += other.barrier_ns;
        self.mgr_ns += other.mgr_ns;
        self.flush_ns += other.flush_ns;
        self.idle_ns += other.idle_ns;
        self.total_ns += other.total_ns;
    }
}

impl ThreadStats {
    /// Time-conservation breakdown of this thread against the run makespan:
    /// `compute + fetch + lock + barrier + mgr + flush + idle == makespan`,
    /// exactly, in integer nanoseconds. The wait classes are measured as
    /// pairwise-disjoint intervals of this thread's virtual clock, so the
    /// compute remainder never underflows on a well-formed report (asserted
    /// by the conservation property tests).
    pub fn breakdown(&self, makespan: SimTime) -> TimeBreakdown {
        let total = self.total.as_ns();
        let waits = self.fetch_wait_ns
            + self.lock_wait_ns
            + self.barrier_wait_ns
            + self.mgr_wait_ns
            + self.flush_wait_ns;
        debug_assert!(waits <= total, "wait classes overlap: {waits} > {total}");
        TimeBreakdown {
            compute_ns: total.saturating_sub(waits),
            fetch_ns: self.fetch_wait_ns,
            lock_ns: self.lock_wait_ns,
            barrier_ns: self.barrier_wait_ns,
            mgr_ns: self.mgr_wait_ns,
            flush_ns: self.flush_wait_ns,
            idle_ns: makespan.as_ns().saturating_sub(total),
            total_ns: total,
        }
    }
}

/// Wall-clock nanoseconds measured on the *host*, wrapped so the value is
/// redacted from `Debug` output: determinism tests compare `RunReport`
/// debug strings across runs, and host time is the one field that may
/// legitimately differ between two bit-identical virtual executions.
/// Read it with [`HostNanos::get`]; never let it influence virtual state.
#[derive(Clone, Copy, Default, Serialize, Deserialize)]
pub struct HostNanos(u64);

impl HostNanos {
    /// Wrap a host-clock duration.
    pub fn new(ns: u64) -> Self {
        HostNanos(ns)
    }

    /// The wall-clock nanoseconds.
    pub fn get(self) -> u64 {
        self.0
    }
}

impl std::fmt::Debug for HostNanos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Deliberately constant: host time must never enter a determinism
        // fingerprint, and debug-formatted reports are one.
        f.write_str("HostNanos(<host>)")
    }
}

/// The result of one `Samhita::run` (or one native-baseline run).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-thread statistics, in tid order.
    pub threads: Vec<ThreadStats>,
    /// Fabric traffic attributable to this run.
    pub fabric: FabricStatsSnapshot,
    /// Longest thread clock: the run's virtual wall time.
    pub makespan: SimTime,
    /// Manager service time spent on this run's requests, in virtual ns.
    pub mgr_busy_ns: u64,
    /// Per-server service time spent on this run's requests, in virtual ns.
    pub server_busy_ns: Vec<u64>,
    /// The run's address-space layout, for attributing hotspot pages to
    /// allocation sites. `None` for native-baseline runs (no DSM layout).
    pub layout: Option<AddressLayout>,
    /// Total virtual time this run's requests queued at the manager before
    /// service began (queue wait, not service time).
    pub mgr_queue_wait_ns: u64,
    /// Peak manager queue occupancy observed at any arrival this run
    /// (1 = never contended).
    pub mgr_peak_queue_depth: u64,
    /// Sum of arrival-sampled manager queue depths; divide by
    /// `mgr_requests` for the mean.
    pub mgr_queue_depth_sum: u64,
    /// Manager requests this run.
    pub mgr_requests: u64,
    /// Per-server queue wait, in server order.
    pub server_queue_wait_ns: Vec<u64>,
    /// Per-server peak queue occupancy, in server order.
    pub server_peak_queue_depth: Vec<u64>,
    /// Per-server sum of arrival-sampled queue depths, in server order.
    pub server_queue_depth_sum: Vec<u64>,
    /// Peak staged backlog observed at the manager's fabric endpoint.
    pub mgr_endpoint_backlog_peak: u64,
    /// Peak staged backlog per memory-server endpoint, in server order.
    pub server_endpoint_backlog_peak: Vec<u64>,
    /// Per-request manager queue-occupancy samples `(arrival, depth,
    /// queue_wait)`, bounded at the source; feed the metrics timeline.
    pub mgr_queue_samples: Vec<QueueSample>,
    /// Per-server queue-occupancy samples, in server order.
    pub server_queue_samples: Vec<Vec<QueueSample>>,
    /// Baton grants the deterministic scheduler issued during this run
    /// (0 under the OS runtime).
    pub sched_grants: u64,
    /// Bypass-mode (local-sync) lock grants that waited behind the previous
    /// holder this run (0 when the manager arbitrates locks).
    pub local_contended_acquires: u64,
    /// Total virtual time bypass-mode lock grants spent waiting behind the
    /// previous holder — the local-sync analogue of manager queue wait.
    pub local_handoff_wait_ns: u64,
    /// Log records the primary manager shipped to the hot standby this run,
    /// counting repair re-ships of the unacked suffix (0 with no standby).
    pub log_records_shipped: u64,
    /// Lock leases the standby reclaimed from dead or deposed holders after
    /// taking over (0 on any fault-free run).
    pub lease_reclaims: u64,
    /// Stale releases the standby absorbed: a deposed holder released a
    /// lock the standby had already reclaimed (0 on any fault-free run).
    pub stale_releases: u64,
    /// Requests the standby served after taking over (0 unless the primary
    /// manager crashed mid-run).
    pub standby_serves: u64,
    /// Virtual instant the standby served its first post-takeover request
    /// (0 = the primary survived the whole run).
    pub takeover_ns: u64,
    /// End-to-end wall-clock duration of the run on the host. Purely
    /// observational: redacted from `Debug` (see [`HostNanos`]) and never
    /// serialized into determinism-compared artifacts.
    pub host_wall_ns: HostNanos,
}

impl RunReport {
    /// Assemble a report, computing the makespan. Busy time and layout are
    /// filled in by the DSM runtime after construction; native baselines
    /// leave them at their defaults.
    pub fn new(threads: Vec<ThreadStats>, fabric: FabricStatsSnapshot) -> Self {
        let makespan = threads.iter().map(|t| t.total).fold(SimTime::ZERO, SimTime::max);
        RunReport { threads, fabric, makespan, ..RunReport::default() }
    }

    /// Aggregate time-conservation breakdown: every thread's
    /// [`ThreadStats::breakdown`] summed, so
    /// `sum_ns() == threads × makespan` exactly.
    pub fn wait_breakdown(&self) -> TimeBreakdown {
        let mut out = TimeBreakdown::default();
        for t in &self.threads {
            out.add(&t.breakdown(self.makespan));
        }
        out
    }

    /// Fraction of total available thread-time (threads × makespan) that
    /// this run's requests spent queued at the manager. This is the
    /// headline "manager is the wall" number: it grows with P while
    /// `mgr_utilization` saturates at 1.
    pub fn mgr_queue_wait_fraction(&self) -> f64 {
        let denom = self.threads.len() as u64 * self.makespan.as_ns();
        if denom == 0 {
            return 0.0;
        }
        self.mgr_queue_wait_ns as f64 / denom as f64
    }

    /// Mean manager queue occupancy over this run's arrivals
    /// (1.0 = never contended; 0 with no requests).
    pub fn mgr_mean_queue_depth(&self) -> f64 {
        if self.mgr_requests == 0 {
            return 0.0;
        }
        self.mgr_queue_depth_sum as f64 / self.mgr_requests as f64
    }

    /// Mean compute time across threads.
    pub fn mean_compute(&self) -> SimTime {
        self.mean(|t| t.compute)
    }

    /// Mean synchronization time across threads.
    pub fn mean_sync(&self) -> SimTime {
        self.mean(|t| t.sync)
    }

    /// Maximum compute time across threads.
    pub fn max_compute(&self) -> SimTime {
        self.threads.iter().map(|t| t.compute).fold(SimTime::ZERO, SimTime::max)
    }

    /// Maximum synchronization time across threads.
    pub fn max_sync(&self) -> SimTime {
        self.threads.iter().map(|t| t.sync).fold(SimTime::ZERO, SimTime::max)
    }

    fn mean(&self, f: impl Fn(&ThreadStats) -> SimTime) -> SimTime {
        if self.threads.is_empty() {
            return SimTime::ZERO;
        }
        let sum: u64 = self.threads.iter().map(|t| f(t).as_ns()).sum();
        SimTime::from_ns(sum / self.threads.len() as u64)
    }

    /// Sum a counter over all threads.
    pub fn total_of(&self, f: impl Fn(&ThreadStats) -> u64) -> u64 {
        self.threads.iter().map(f).sum()
    }

    /// Fraction of total thread time spent in synchronization, `0.0..=1.0`
    /// (0 for an empty report). The paper's compute/sync split as a ratio.
    pub fn sync_fraction(&self) -> f64 {
        let total: u64 = self.threads.iter().map(|t| t.total.as_ns()).sum();
        if total == 0 {
            return 0.0;
        }
        let sync: u64 = self.threads.iter().map(|t| t.sync.as_ns()).sum();
        sync as f64 / total as f64
    }

    /// Total synchronization operations across all threads: lock
    /// acquisitions plus barrier episodes. Each one triggers a full flush,
    /// so it is the natural denominator for per-sync-op message rates.
    pub fn sync_ops(&self) -> u64 {
        self.total_of(|t| t.locks_acquired) + self.total_of(|t| t.barriers)
    }

    /// Total manager failovers across threads. Each thread re-homes at most
    /// once (the switch is sticky), so this is also the number of threads
    /// that independently detected the primary manager's crash.
    pub fn mgr_failovers(&self) -> u64 {
        self.total_of(|t| t.mgr_failovers)
    }

    /// Update-class messages sent per synchronization operation. With
    /// batched flushes this is bounded by the number of destination memory
    /// servers (plus acks and replica copies) instead of the number of
    /// dirty pages; a rise signals a flush-path regression. Runs with no
    /// sync ops report their raw update-message count.
    pub fn msgs_per_sync_op(&self) -> f64 {
        self.fabric.msgs(MsgClass::Update) as f64 / self.sync_ops().max(1) as f64
    }

    /// Compute-time skew across threads: `max(compute) / mean(compute)`.
    /// 1.0 means perfectly balanced; 0 for an empty report or when no
    /// thread accumulated compute time.
    pub fn compute_imbalance(&self) -> f64 {
        let mean = self.mean_compute().as_ns();
        if mean == 0 {
            return 0.0;
        }
        self.max_compute().as_ns() as f64 / mean as f64
    }

    /// All threads' fetch-stall latencies, merged.
    pub fn fetch_latency(&self) -> LatencyHistogram {
        self.merged(|t| &t.fetch_latency)
    }

    /// All threads' lock-wait latencies, merged.
    pub fn lock_wait(&self) -> LatencyHistogram {
        self.merged(|t| &t.lock_wait)
    }

    /// All threads' barrier-wait latencies, merged.
    pub fn barrier_wait(&self) -> LatencyHistogram {
        self.merged(|t| &t.barrier_wait)
    }

    fn merged(&self, f: impl Fn(&ThreadStats) -> &LatencyHistogram) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for t in &self.threads {
            out.merge(f(t));
        }
        out
    }

    /// All threads' per-page hotspot counters, merged.
    pub fn hotspots(&self) -> HotspotMap {
        let mut out = HotspotMap::new();
        for t in &self.threads {
            out.merge(&t.hot);
        }
        out
    }

    /// Manager utilization: service time over the run's makespan,
    /// `0.0..=1.0` (0 for an empty run).
    pub fn mgr_utilization(&self) -> f64 {
        Self::utilization(self.mgr_busy_ns, self.makespan)
    }

    /// Per-server utilization: service time over the run's makespan, in
    /// server order.
    pub fn server_utilization(&self) -> Vec<f64> {
        self.server_busy_ns.iter().map(|&b| Self::utilization(b, self.makespan)).collect()
    }

    fn utilization(busy_ns: u64, makespan: SimTime) -> f64 {
        if makespan.as_ns() == 0 {
            return 0.0;
        }
        busy_ns as f64 / makespan.as_ns() as f64
    }

    /// The allocation site of a global page, when the run has a layout.
    pub fn site_of_page(&self, page: u64) -> Option<Region> {
        self.layout.map(|l| l.region_of(page * l.page_size))
    }

    /// Human label for a page's allocation site: `arena(tid)`, `shared`,
    /// `striped`, `reserved`, or `?` when no layout is attached.
    pub fn site_label(&self, page: u64) -> String {
        match self.site_of_page(page) {
            Some(Region::Arena(tid)) => format!("arena({tid})"),
            Some(Region::Shared) => "shared".to_string(),
            Some(Region::Striped) => "striped".to_string(),
            Some(Region::Reserved) => "reserved".to_string(),
            None => "?".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use samhita_scl::FabricStats;

    use super::*;

    fn t(tid: u32, total_ns: u64, sync_ns: u64) -> ThreadStats {
        ThreadStats {
            tid,
            total: SimTime::from_ns(total_ns),
            sync: SimTime::from_ns(sync_ns),
            compute: SimTime::from_ns(total_ns - sync_ns),
            ..ThreadStats::default()
        }
    }

    #[test]
    fn report_aggregates() {
        let r = RunReport::new(vec![t(0, 100, 20), t(1, 200, 60)], FabricStatsSnapshot::default());
        assert_eq!(r.makespan, SimTime::from_ns(200));
        assert_eq!(r.mean_compute(), SimTime::from_ns((80 + 140) / 2));
        assert_eq!(r.mean_sync(), SimTime::from_ns(40));
        assert_eq!(r.max_compute(), SimTime::from_ns(140));
        assert_eq!(r.max_sync(), SimTime::from_ns(60));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::new(vec![], FabricStatsSnapshot::default());
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.mean_compute(), SimTime::ZERO);
    }

    #[test]
    fn sync_fraction_is_time_weighted() {
        // Thread 0: 100ns total, 20 sync; thread 1: 300ns total, 60 sync.
        // Weighted fraction = (20 + 60) / (100 + 300) = 0.2, not the mean of
        // the per-thread fractions.
        let r = RunReport::new(vec![t(0, 100, 20), t(1, 300, 60)], FabricStatsSnapshot::default());
        assert!((r.sync_fraction() - 0.2).abs() < 1e-12);
        // Degenerate cases are 0, not NaN.
        assert_eq!(RunReport::new(vec![], FabricStatsSnapshot::default()).sync_fraction(), 0.0);
        assert_eq!(
            RunReport::new(vec![t(0, 0, 0)], FabricStatsSnapshot::default()).sync_fraction(),
            0.0
        );
    }

    #[test]
    fn compute_imbalance_is_max_over_mean() {
        // compute: 80 and 140 → mean 110, max 140.
        let r = RunReport::new(vec![t(0, 100, 20), t(1, 200, 60)], FabricStatsSnapshot::default());
        assert!((r.compute_imbalance() - 140.0 / 110.0).abs() < 1e-12);
        // A perfectly balanced run sits at exactly 1.0.
        let b = RunReport::new(vec![t(0, 100, 0), t(1, 100, 0)], FabricStatsSnapshot::default());
        assert_eq!(b.compute_imbalance(), 1.0);
        // Degenerate cases are 0, not NaN.
        assert_eq!(RunReport::new(vec![], FabricStatsSnapshot::default()).compute_imbalance(), 0.0);
    }

    #[test]
    fn merged_histograms_cover_all_threads() {
        let mut a = t(0, 10, 0);
        a.fetch_latency.record(100);
        a.lock_wait.record(50);
        let mut b = t(1, 10, 0);
        b.fetch_latency.record(200);
        b.barrier_wait.record(70);
        let r = RunReport::new(vec![a, b], FabricStatsSnapshot::default());
        assert_eq!(r.fetch_latency().count(), 2);
        assert_eq!(r.fetch_latency().max_ns(), 200);
        assert_eq!(r.lock_wait().count(), 1);
        assert_eq!(r.barrier_wait().count(), 1);
    }

    #[test]
    fn hotspots_merge_across_threads() {
        let mut a = t(0, 10, 0);
        a.hot.record_refetch(5);
        a.hot.record_diff(5, 100);
        let mut b = t(1, 10, 0);
        b.hot.record_refetch(5);
        b.hot.record_miss(9, 2);
        let r = RunReport::new(vec![a, b], FabricStatsSnapshot::default());
        let hot = r.hotspots();
        assert_eq!(hot.page(5).unwrap().refetches, 2);
        assert_eq!(hot.page(5).unwrap().diff_bytes, 100);
        assert_eq!(hot.page(9).unwrap().misses, 1);
        assert_eq!(hot.page(10).unwrap().misses, 1);
    }

    #[test]
    fn utilization_is_busy_over_makespan() {
        let mut r = RunReport::new(vec![t(0, 1_000, 0)], FabricStatsSnapshot::default());
        r.mgr_busy_ns = 250;
        r.server_busy_ns = vec![500, 1_000];
        assert!((r.mgr_utilization() - 0.25).abs() < 1e-12);
        let su = r.server_utilization();
        assert!((su[0] - 0.5).abs() < 1e-12);
        assert!((su[1] - 1.0).abs() < 1e-12);
        // Degenerate: empty run divides to 0, not NaN.
        let empty = RunReport::new(vec![], FabricStatsSnapshot::default());
        assert_eq!(empty.mgr_utilization(), 0.0);
    }

    #[test]
    fn site_labels_follow_the_layout() {
        let cfg = crate::config::SamhitaConfig::small_for_tests();
        let layout = AddressLayout::new(&cfg);
        let mut r = RunReport::new(vec![t(0, 10, 0)], FabricStatsSnapshot::default());
        assert_eq!(r.site_label(0), "?", "no layout attached yet");
        r.layout = Some(layout);
        assert_eq!(r.site_label(0), "reserved");
        assert_eq!(r.site_label(layout.arena_base / layout.page_size), "arena(0)");
        assert_eq!(r.site_label(layout.shared_base / layout.page_size), "shared");
        assert_eq!(r.site_label(layout.striped_base / layout.page_size + 100), "striped");
    }

    #[test]
    fn sync_ops_and_message_rate() {
        let mut a = t(0, 10, 0);
        a.locks_acquired = 3;
        a.barriers = 2;
        let mut b = t(1, 10, 0);
        b.locks_acquired = 1;
        let stats = FabricStats::default();
        for _ in 0..12 {
            stats.record(MsgClass::Update, 64);
        }
        stats.record(MsgClass::Data, 4096);
        let r = RunReport::new(vec![a, b], stats.snapshot());
        assert_eq!(r.sync_ops(), 6);
        assert!((r.msgs_per_sync_op() - 2.0).abs() < 1e-12, "12 update msgs over 6 sync ops");
        // No sync ops: the raw update count, not a division by zero.
        let empty = RunReport::new(vec![t(0, 10, 0)], stats.snapshot());
        assert_eq!(empty.sync_ops(), 0);
        assert!((empty.msgs_per_sync_op() - 12.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_conserves_time_exactly() {
        let mut a = t(0, 1_000, 300);
        a.fetch_wait_ns = 100;
        a.lock_wait_ns = 150;
        a.barrier_wait_ns = 50;
        a.mgr_wait_ns = 25;
        a.flush_wait_ns = 75;
        let b = t(1, 1_600, 0); // the makespan thread, all compute
        let r = RunReport::new(vec![a, b], FabricStatsSnapshot::default());
        assert_eq!(r.makespan.as_ns(), 1_600);
        let ba = r.threads[0].breakdown(r.makespan);
        assert_eq!(ba.compute_ns, 1_000 - 400);
        assert_eq!(ba.wait_ns(), 400);
        assert_eq!(ba.idle_ns, 600);
        assert_eq!(ba.sum_ns(), 1_600, "per-thread identity: classes sum to makespan");
        let bb = r.threads[1].breakdown(r.makespan);
        assert_eq!((bb.compute_ns, bb.idle_ns, bb.sum_ns()), (1_600, 0, 1_600));
        let agg = r.wait_breakdown();
        assert_eq!(agg.sum_ns(), 2 * 1_600, "aggregate identity: threads × makespan");
        assert_eq!(agg.total_ns, 2_600);
    }

    #[test]
    fn queue_fractions_are_normalized() {
        let mut r = RunReport::new(vec![t(0, 1_000, 0), t(1, 1_000, 0)], Default::default());
        r.mgr_queue_wait_ns = 500;
        r.mgr_requests = 10;
        r.mgr_queue_depth_sum = 25;
        assert!((r.mgr_queue_wait_fraction() - 500.0 / 2_000.0).abs() < 1e-12);
        assert!((r.mgr_mean_queue_depth() - 2.5).abs() < 1e-12);
        let empty = RunReport::new(vec![], FabricStatsSnapshot::default());
        assert_eq!(empty.mgr_queue_wait_fraction(), 0.0);
        assert_eq!(empty.mgr_mean_queue_depth(), 0.0);
    }

    #[test]
    fn counter_totals() {
        let mut a = t(0, 10, 0);
        a.line_misses = 3;
        let mut b = t(1, 10, 0);
        b.line_misses = 4;
        let r = RunReport::new(vec![a, b], FabricStatsSnapshot::default());
        assert_eq!(r.total_of(|t| t.line_misses), 7);
    }
}
