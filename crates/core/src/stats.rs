//! Per-thread and per-run measurement.
//!
//! The paper's evaluation splits application runtime into **compute time**
//! and **synchronization time** (Figures 3–11). We reproduce that split
//! exactly: every virtual nanosecond of a thread's clock belongs to one of
//! the two buckets — synchronization operations (lock/unlock, barriers,
//! condition waits, including the consistency flushes they perform) charge
//! the sync bucket, everything else (including demand-fetch misses and
//! invalidation refetches during computation, which is where false sharing
//! hurts) is compute time.

use samhita_scl::{FabricStatsSnapshot, SimTime};
use serde::{Deserialize, Serialize};

/// Counters and clocks of one compute thread over one run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct ThreadStats {
    /// Thread id within the run.
    pub tid: u32,
    /// Final virtual clock (total time).
    pub total: SimTime,
    /// Time inside synchronization operations.
    pub sync: SimTime,
    /// `total - sync`.
    pub compute: SimTime,
    /// Demand line fetches (cold or capacity misses).
    pub line_misses: u64,
    /// Single-page refetches after invalidation (false-sharing traffic).
    pub page_refetches: u64,
    /// Misses satisfied by a completed prefetch.
    pub prefetch_hits: u64,
    /// Misses that had to wait for an in-flight prefetch.
    pub prefetch_late: u64,
    /// Lines evicted.
    pub evictions: u64,
    /// Pages invalidated by write notices from other threads.
    pub invalidations: u64,
    /// Twins created (first ordinary write to a clean page).
    pub twins_created: u64,
    /// Ordinary-region diff payload flushed, in bytes.
    pub diff_bytes_flushed: u64,
    /// Fine-grain (consistency-region) payload flushed, in bytes.
    pub fine_bytes_flushed: u64,
    /// Lock acquisitions.
    pub locks_acquired: u64,
    /// Barrier episodes.
    pub barriers: u64,
}

/// The result of one `Samhita::run` (or one native-baseline run).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunReport {
    /// Per-thread statistics, in tid order.
    pub threads: Vec<ThreadStats>,
    /// Fabric traffic attributable to this run.
    pub fabric: FabricStatsSnapshot,
    /// Longest thread clock: the run's virtual wall time.
    pub makespan: SimTime,
}

impl RunReport {
    /// Assemble a report, computing the makespan.
    pub fn new(threads: Vec<ThreadStats>, fabric: FabricStatsSnapshot) -> Self {
        let makespan = threads.iter().map(|t| t.total).fold(SimTime::ZERO, SimTime::max);
        RunReport { threads, fabric, makespan }
    }

    /// Mean compute time across threads.
    pub fn mean_compute(&self) -> SimTime {
        self.mean(|t| t.compute)
    }

    /// Mean synchronization time across threads.
    pub fn mean_sync(&self) -> SimTime {
        self.mean(|t| t.sync)
    }

    /// Maximum compute time across threads.
    pub fn max_compute(&self) -> SimTime {
        self.threads.iter().map(|t| t.compute).fold(SimTime::ZERO, SimTime::max)
    }

    /// Maximum synchronization time across threads.
    pub fn max_sync(&self) -> SimTime {
        self.threads.iter().map(|t| t.sync).fold(SimTime::ZERO, SimTime::max)
    }

    fn mean(&self, f: impl Fn(&ThreadStats) -> SimTime) -> SimTime {
        if self.threads.is_empty() {
            return SimTime::ZERO;
        }
        let sum: u64 = self.threads.iter().map(|t| f(t).as_ns()).sum();
        SimTime::from_ns(sum / self.threads.len() as u64)
    }

    /// Sum a counter over all threads.
    pub fn total_of(&self, f: impl Fn(&ThreadStats) -> u64) -> u64 {
        self.threads.iter().map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(tid: u32, total_ns: u64, sync_ns: u64) -> ThreadStats {
        ThreadStats {
            tid,
            total: SimTime::from_ns(total_ns),
            sync: SimTime::from_ns(sync_ns),
            compute: SimTime::from_ns(total_ns - sync_ns),
            ..ThreadStats::default()
        }
    }

    #[test]
    fn report_aggregates() {
        let r = RunReport::new(vec![t(0, 100, 20), t(1, 200, 60)], FabricStatsSnapshot::default());
        assert_eq!(r.makespan, SimTime::from_ns(200));
        assert_eq!(r.mean_compute(), SimTime::from_ns((80 + 140) / 2));
        assert_eq!(r.mean_sync(), SimTime::from_ns(40));
        assert_eq!(r.max_compute(), SimTime::from_ns(140));
        assert_eq!(r.max_sync(), SimTime::from_ns(60));
    }

    #[test]
    fn empty_report_is_zero() {
        let r = RunReport::new(vec![], FabricStatsSnapshot::default());
        assert_eq!(r.makespan, SimTime::ZERO);
        assert_eq!(r.mean_compute(), SimTime::ZERO);
    }

    #[test]
    fn counter_totals() {
        let mut a = t(0, 10, 0);
        a.line_misses = 3;
        let mut b = t(1, 10, 0);
        b.line_misses = 4;
        let r = RunReport::new(vec![a, b], FabricStatsSnapshot::default());
        assert_eq!(r.total_of(|t| t.line_misses), 7);
    }
}
