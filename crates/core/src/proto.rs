//! The typed RPC transport layer.
//!
//! Everything about *getting a request answered over a lossy fabric* lives
//! here, in one place, instead of being hand-rolled at each call site:
//!
//! * **token correlation** — every request carries a token from a private
//!   per-channel counter, so responses (acks, prefetch data) may arrive out
//!   of order and still be matched;
//! * **retry / timeout / backoff** — send-time drops are retried eagerly
//!   with capped exponential backoff; in-flight losses surface as the lost
//!   copy's arrival (the deterministic analogue of a retransmission timeout);
//! * **idempotent request tokens** — manager retransmissions reuse their
//!   token so the manager's replay cache answers them; memory-server
//!   retransmissions resend the identical request so the server's dedup
//!   cache re-acks without re-applying;
//! * **replica failover** — when a memory server exhausts its retry budget
//!   the channel re-homes its traffic to the write-through replica, stickily;
//! * **per-class cost accounting** — every send charges the configured send
//!   cost against the channel's virtual clock and tags the message with its
//!   [`MsgClass`] for the fabric's per-class counters;
//! * **trace emission** — `Retry` / `Failover` events are recorded here;
//!   `FaultInjected` events are recorded by the fabric observer at the
//!   moment the fate is decided.
//!
//! [`Channel`] is the compute-thread transport (owned by
//! [`crate::thread::ThreadCtx`]); [`HostChannel`] is the host control
//! client's reliable, fault-exempt variant. Both speak [`Msg`].

use std::collections::{HashMap, HashSet};

use samhita_mem::{HomeMap, MemRequest, MemResponse};
use samhita_scl::{Endpoint, EndpointId, Envelope, MsgClass, RetryPolicy, SimTime};
use samhita_trace::{EventKind, TraceBuf};

use crate::msg::{MgrRequest, MgrResponse, Msg};

/// An asynchronous update (batched flush or eviction diff) whose
/// acknowledgement is still outstanding. Kept so a lost ack can be answered
/// by retransmitting the identical request (the server's idempotency cache
/// re-acks without re-applying), and so ack-path exhaustion can fail over
/// knowing which server and copy (primary or write-through shadow) the
/// update targeted.
struct PendingAck {
    server: u32,
    class: MsgClass,
    req: MemRequest,
    shadow: bool,
    attempts: u32,
}

/// A compute thread's typed transport channel: virtual clock, token counter,
/// retry/failover state, outstanding-ack ledger, and prefetch correlation.
pub struct Channel {
    ep: Endpoint<Msg>,
    mgr_ep: EndpointId,
    /// The hot-standby manager, when one is configured. Retry exhaustion
    /// against the primary re-homes all manager traffic here instead of
    /// panicking.
    standby_ep: Option<EndpointId>,
    /// Grant-liveness probe period (virtual ns), armed only with a standby
    /// under the deterministic runtime. A *deferred* request (queued
    /// acquire, barrier arrival, condition wait) is answered much later
    /// than it is served, so a crash can destroy the only record of it:
    /// the request reached the primary, but the log ship of its serve died
    /// with the crash, and no response will ever come. A blocked client
    /// therefore re-sends its (idempotent, same-token) request every probe
    /// period: a live manager's replay cache ignores the duplicate, while
    /// a dead one lets the resend escalate through the normal
    /// retry/failover path and teach the standby about the queued request.
    probe_ns: Option<u64>,
    mem_eps: Vec<EndpointId>,
    tid: u32,
    /// Per-send fixed cost, ns (from the configured cost model).
    send_ns: f64,
    replica_offset: u32,
    home_map: HomeMap,

    clock: SimTime,
    /// Sub-nanosecond cost accumulator (keeps tiny per-op charges exact).
    frac_ns: f64,

    next_token: u64,
    retry: RetryPolicy,
    /// Memory servers this channel has given up on (sticky: once a server
    /// is declared dead, all its traffic is re-homed to the replica).
    failed_servers: HashSet<u32>,
    /// Whether this channel has given up on the primary manager (sticky,
    /// like `failed_servers`): all manager traffic goes to the standby.
    mgr_failed: bool,
    outstanding_acks: HashMap<u64, PendingAck>,
    ack_horizon: SimTime,
    prefetch_tokens: HashMap<u64, u64>,   // token -> line
    prefetch_inflight: HashMap<u64, u64>, // line -> token
    prefetch_ready: HashMap<u64, (SimTime, Vec<u8>, Vec<u64>)>,
    /// Prefetch tokens whose line was invalidated while the fetch was in
    /// flight: the response must be discarded, not installed.
    poisoned_prefetches: HashSet<u64>,

    retries: u64,
    failovers: u64,
    mgr_failovers: u64,
    /// Event ring for this channel's thread track; `None` when tracing is
    /// off. Strictly observational — never read back, never advances the
    /// clock.
    trace: Option<TraceBuf>,
}

impl Channel {
    /// Build a channel for thread `tid` over endpoint `ep`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        tid: u32,
        ep: Endpoint<Msg>,
        mgr_ep: EndpointId,
        standby_ep: Option<EndpointId>,
        probe_ns: Option<u64>,
        mem_eps: Vec<EndpointId>,
        send_ns: f64,
        replica_offset: u32,
        home_map: HomeMap,
        retry: RetryPolicy,
    ) -> Self {
        Channel {
            ep,
            mgr_ep,
            standby_ep,
            probe_ns,
            mem_eps,
            tid,
            send_ns,
            replica_offset,
            home_map,
            clock: SimTime::ZERO,
            frac_ns: 0.0,
            next_token: 1,
            retry,
            failed_servers: HashSet::new(),
            mgr_failed: false,
            outstanding_acks: HashMap::new(),
            ack_horizon: SimTime::ZERO,
            prefetch_tokens: HashMap::new(),
            prefetch_inflight: HashMap::new(),
            prefetch_ready: HashMap::new(),
            poisoned_prefetches: HashSet::new(),
            retries: 0,
            failovers: 0,
            mgr_failovers: 0,
            trace: None,
        }
    }

    // ------------------------------------------------------------------
    // Clock, trace, counters
    // ------------------------------------------------------------------

    /// The channel's virtual clock (the owning thread's timeline).
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// Advance the clock to at least `t` (message deliveries, grants).
    pub(crate) fn advance_to(&mut self, t: SimTime) {
        self.clock = self.clock.max(t);
    }

    /// Charge `ns` (possibly fractional) of virtual time.
    pub(crate) fn charge(&mut self, ns: f64) {
        self.frac_ns += ns;
        if self.frac_ns >= 1.0 {
            let whole = self.frac_ns.floor();
            self.clock += SimTime::from_ns(whole as u64);
            self.frac_ns -= whole;
        }
    }

    /// Zero the clock (registration is setup, not application time). The
    /// fractional accumulator intentionally carries over: it is a cost
    /// remainder, not a timestamp.
    pub(crate) fn reset_clock(&mut self) {
        self.clock = SimTime::ZERO;
    }

    /// Record one protocol event at the current virtual time, if tracing.
    ///
    /// Takes a closure so the event is never *constructed* when tracing is
    /// off — some payloads are not free to build (`BatchFlush` walks the
    /// batch for its wire size), and the common production configuration
    /// runs untraced. Construction is pure, so skipping it cannot move
    /// virtual time; `tests/prof.rs` pins the byte-identity.
    #[inline]
    pub(crate) fn trace(&mut self, kind: impl FnOnce() -> EventKind) {
        if let Some(buf) = self.trace.as_mut() {
            buf.push(self.clock, kind());
        }
    }

    pub(crate) fn attach_trace(&mut self, buf: TraceBuf) {
        self.trace = Some(buf);
    }

    pub(crate) fn take_trace(&mut self) -> Option<TraceBuf> {
        self.trace.take()
    }

    /// Retransmissions performed so far.
    pub(crate) fn retries(&self) -> u64 {
        self.retries
    }

    /// Server failovers performed so far.
    pub(crate) fn failovers(&self) -> u64 {
        self.failovers
    }

    /// Manager failovers performed so far (0 or 1 — the re-home is sticky).
    pub(crate) fn mgr_failovers(&self) -> u64 {
        self.mgr_failovers
    }

    /// Whether lock releases must be acknowledged. With a standby configured
    /// a fire-and-forget release could vanish with the crashed primary and
    /// leave the lock held forever, so the release path upgrades to a full
    /// RPC (whose retry/failover machinery lands it at whichever manager is
    /// alive).
    pub(crate) fn acked_releases(&self) -> bool {
        self.standby_ep.is_some()
    }

    fn fresh_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    fn token_of(env: &Envelope<Msg>) -> u64 {
        match &env.msg {
            Msg::MemResp { token, .. } | Msg::MgrResp { token, .. } => *token,
            other => panic!("compute thread received non-response message: {other:?}"),
        }
    }

    /// Record one retransmission: bump the counter, advance the clock to the
    /// backoff deadline (or the virtual-timeout instant), trace it.
    fn note_retry(&mut self, op: &'static str, attempt: u32, resume_at: SimTime) {
        self.retries += 1;
        self.clock = self.clock.max(resume_at);
        self.trace(|| EventKind::Retry { op, attempt });
    }

    // ------------------------------------------------------------------
    // Failover topology
    // ------------------------------------------------------------------

    fn replica_of(&self, server: u32) -> Option<u32> {
        self.home_map.replica_of_server(server, self.replica_offset)
    }

    fn live_replica_of(&self, server: u32) -> Option<u32> {
        self.replica_of(server).filter(|r| !self.failed_servers.contains(r))
    }

    /// Where traffic homed on `home` actually goes: the primary while it is
    /// believed alive, its replica after a failover.
    pub(crate) fn effective_server(&self, home: u32) -> u32 {
        if self.failed_servers.contains(&home) {
            self.live_replica_of(home)
                .unwrap_or_else(|| panic!("memory server {home} failed with no live replica"))
        } else {
            home
        }
    }

    /// Declare `from` dead and re-home its traffic to the replica.
    fn fail_over(&mut self, from: u32) -> u32 {
        let to = self
            .live_replica_of(from)
            .unwrap_or_else(|| panic!("memory server {from} unreachable and no live replica"));
        if self.failed_servers.insert(from) {
            self.failovers += 1;
            self.trace(|| EventKind::Failover { from, to });
        }
        to
    }

    /// Where manager traffic goes: the primary while it is believed alive,
    /// the standby after a manager failover.
    fn mgr_target(&self) -> EndpointId {
        if self.mgr_failed {
            self.standby_ep.expect("mgr_failed set with no standby")
        } else {
            self.mgr_ep
        }
    }

    /// Declare the primary manager dead and re-home all manager traffic to
    /// the hot standby. With no standby (or with the standby also
    /// unreachable) exhaustion stays fatal, exactly as before.
    fn mgr_fail_over(&mut self, op: &'static str, what: &str, attempts: u32) {
        assert!(
            !self.mgr_failed && self.standby_ep.is_some(),
            "manager unreachable: {op} {what} {attempts} times"
        );
        self.mgr_failed = true;
        self.mgr_failovers += 1;
        self.trace(|| EventKind::MgrFailover { op });
    }

    // ------------------------------------------------------------------
    // Manager RPC
    // ------------------------------------------------------------------

    /// Synchronous manager RPC with retry and backoff. Every retransmission
    /// reuses the request's token, so the manager's replay cache makes the
    /// request idempotent (a retried `Acquire` can never double-acquire).
    /// Retry exhaustion fails over to the hot standby when one is
    /// configured (resending the SAME token — the standby's replayed log
    /// reconstructed the primary's replay cache, so a request the primary
    /// already served is re-answered, never re-applied); with no standby,
    /// exhaustion is fatal.
    pub(crate) fn rpc_mgr(&mut self, req: MgrRequest, class: MsgClass) -> MgrResponse {
        let op = req.label();
        let wire = req.wire_bytes();
        let token = self.fresh_token();
        let mut attempt = 0u32;
        loop {
            let sent_at = self.clock;
            let (_, fate) = self
                .ep
                .send_faulted(
                    self.mgr_target(),
                    self.clock,
                    wire,
                    class,
                    Msg::MgrReq { token, tid: self.tid, req: req.clone() },
                )
                .expect("manager endpoint closed");
            self.charge(self.send_ns);
            if fate.is_dropped() {
                attempt += 1;
                if attempt >= self.retry.max_attempts {
                    self.mgr_fail_over(op, "request dropped", attempt);
                    attempt = 0;
                    continue;
                }
                self.note_retry(op, attempt, sent_at + self.retry.delay(attempt));
                continue;
            }
            // Block for the matching reply. A *lost* matching reply arriving
            // is the deterministic analogue of a retransmission timeout
            // firing. Requests whose grant is legitimately deferred (queued
            // acquires, barrier arrivals, condition waits) keep blocking —
            // but with a standby configured they re-send the same token
            // every probe period (see `probe_ns`), so a grant that died
            // with the primary cannot block the run forever.
            let probe_at = self.probe_ns.map(|p| self.clock + SimTime::from_ns(p));
            'await_reply: loop {
                let env = match probe_at {
                    Some(at) => {
                        match self.ep.recv_deadline(at).expect("fabric closed awaiting response") {
                            Some(env) => env,
                            None => {
                                // Probe deadline: no reply by `at`. Re-send
                                // the same token via the outer loop; a live
                                // manager's replay cache absorbs it.
                                self.clock = self.clock.max(at);
                                self.trace(|| EventKind::Retry { op, attempt });
                                break 'await_reply;
                            }
                        }
                    }
                    None => self.ep.recv().expect("fabric closed while awaiting response"),
                };
                let t = Self::token_of(&env);
                if t != token {
                    self.absorb(t, env);
                    continue;
                }
                self.clock = self.clock.max(env.deliver_at);
                if env.lost {
                    attempt += 1;
                    if attempt >= self.retry.max_attempts {
                        self.mgr_fail_over(op, "reply lost", attempt);
                        attempt = 0;
                    } else {
                        self.note_retry(op, attempt, env.deliver_at);
                    }
                    break;
                }
                match env.msg {
                    Msg::MgrResp { resp, .. } => return resp,
                    other => panic!("unexpected manager response: {other:?}"),
                }
            }
        }
    }

    /// Fire-and-forget manager send (lock releases): the manager orders the
    /// request before any subsequent grant; the sender only pays the send
    /// cost, plus backoff for retransmissions after send-time drops.
    pub(crate) fn send_mgr_oneway(&mut self, req: MgrRequest, class: MsgClass) {
        let op = req.label();
        let wire = req.wire_bytes();
        let token = self.fresh_token();
        let mut attempt = 0u32;
        loop {
            let sent_at = self.clock;
            let (_, fate) = self
                .ep
                .send_faulted(
                    self.mgr_target(),
                    self.clock,
                    wire,
                    class,
                    Msg::MgrReq { token, tid: self.tid, req: req.clone() },
                )
                .expect("manager endpoint closed");
            self.charge(self.send_ns);
            if !fate.is_dropped() {
                return;
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                self.mgr_fail_over(op, "request dropped", attempt);
                attempt = 0;
                continue;
            }
            self.note_retry(op, attempt, sent_at + self.retry.delay(attempt));
        }
    }

    // ------------------------------------------------------------------
    // Memory-server RPC
    // ------------------------------------------------------------------

    /// Synchronous memory-server RPC with retry, timeout (played by the lost
    /// copy's arrival), backoff, and failover to the replica on exhaustion.
    pub(crate) fn rpc_mem(
        &mut self,
        home: u32,
        req: MemRequest,
        class: MsgClass,
    ) -> (MemResponse, SimTime) {
        let op = req.label();
        let wire = req.wire_bytes();
        let mut server = self.effective_server(home);
        'fresh: loop {
            // A fresh token per target server: a late reply from an
            // abandoned primary must never pass for the replica's answer.
            let token = self.fresh_token();
            let mut attempt = 0u32;
            loop {
                let sent_at = self.clock;
                let (_, fate) = self
                    .ep
                    .send_faulted(
                        self.mem_eps[server as usize],
                        self.clock,
                        wire,
                        class,
                        Msg::MemReq { token, shadow: false, req: req.clone() },
                    )
                    .expect("memory server endpoint closed");
                self.charge(self.send_ns);
                if fate.is_dropped() {
                    attempt += 1;
                    if attempt >= self.retry.max_attempts {
                        server = self.fail_over(server);
                        continue 'fresh;
                    }
                    self.note_retry(op, attempt, sent_at + self.retry.delay(attempt));
                    continue;
                }
                loop {
                    let env = self.ep.recv().expect("fabric closed while awaiting response");
                    let t = Self::token_of(&env);
                    if t != token {
                        self.absorb(t, env);
                        continue;
                    }
                    self.clock = self.clock.max(env.deliver_at);
                    if env.lost {
                        attempt += 1;
                        if attempt >= self.retry.max_attempts {
                            server = self.fail_over(server);
                            continue 'fresh;
                        }
                        self.note_retry(op, attempt, env.deliver_at);
                        break;
                    }
                    match env.msg {
                        Msg::MemResp { resp, .. } => return (resp, env.deliver_at),
                        other => panic!("unexpected memory response: {other:?}"),
                    }
                }
            }
        }
    }

    /// Ship one asynchronous update to its home, write-through to the
    /// replica when one is configured and the home is still the live
    /// primary. Acks for every copy are awaited at the next fence, so at a
    /// fence the replica is byte-identical to the primary — the property
    /// that makes post-failover reads bit-exact.
    pub(crate) fn send_update(&mut self, home: u32, class: MsgClass, req: MemRequest) {
        let primary = self.effective_server(home);
        if self.replica_offset == 0 {
            self.post_update(primary, class, req, false);
            return;
        }
        self.post_update(primary, class, req.clone(), false);
        // Re-check after the primary send: if it exhausted its retries and
        // failed over, the replica already received the (sole) live copy.
        if !self.failed_servers.contains(&home) {
            if let Some(r) = self.live_replica_of(home) {
                self.post_update(r, class, req, true);
            }
        }
    }

    /// Transmit one update copy, eagerly riding out send-time drops with
    /// capped backoff; registers the ack obligation on success.
    fn post_update(&mut self, mut server: u32, class: MsgClass, req: MemRequest, shadow: bool) {
        let op = req.label();
        let wire = req.wire_bytes();
        let token = self.fresh_token();
        let mut attempt = 0u32;
        loop {
            let sent_at = self.clock;
            let (_, fate) = self
                .ep
                .send_faulted(
                    self.mem_eps[server as usize],
                    self.clock,
                    wire,
                    class,
                    Msg::MemReq { token, shadow, req: req.clone() },
                )
                .expect("memory server endpoint closed");
            self.charge(self.send_ns);
            if !fate.is_dropped() {
                break;
            }
            attempt += 1;
            if attempt >= self.retry.max_attempts {
                if shadow {
                    // The replica is unreachable: abandon write-through to
                    // it; the already-posted primary copy stands alone.
                    self.failed_servers.insert(server);
                    return;
                }
                server = self.fail_over(server);
                attempt = 0;
                continue;
            }
            self.note_retry(op, attempt, sent_at + self.retry.delay(attempt));
        }
        self.outstanding_acks.insert(token, PendingAck { server, class, req, shadow, attempts: 0 });
    }

    /// Block until every outstanding update has been acknowledged (the
    /// fence half of a flush), then advance the clock past the latest ack.
    pub(crate) fn drain_acks(&mut self) {
        while !self.outstanding_acks.is_empty() {
            let env = self.ep.recv().expect("fabric closed while draining acks");
            let token = Self::token_of(&env);
            self.absorb(token, env);
        }
        self.clock = self.clock.max(self.ack_horizon);
    }

    /// File an out-of-band message: prefetch data, a flush ack, a lost copy
    /// signalling a retransmission timeout, or a suppressed duplicate of an
    /// already-handled reply (silently dropped — that is the idempotent-token
    /// half of duplicate suppression).
    fn absorb(&mut self, token: u64, env: Envelope<Msg>) {
        if self.poisoned_prefetches.remove(&token) {
            // Stale prefetch overtaken by an invalidation: drop it (lost or
            // not — nobody waits on it).
        } else if let Some(line) = self.prefetch_tokens.remove(&token) {
            self.prefetch_inflight.remove(&line);
            if env.lost {
                // Lost prefetch response: forget the prefetch entirely; a
                // later miss will demand-fetch the line.
                return;
            }
            match env.msg {
                Msg::MemResp { resp: MemResponse::Line { data, versions, .. }, .. } => {
                    self.prefetch_ready.insert(line, (env.deliver_at, data, versions));
                }
                other => panic!("unexpected prefetch response: {other:?}"),
            }
        } else if self.outstanding_acks.contains_key(&token) {
            if env.lost {
                self.retransmit_update(token, env.deliver_at);
            } else {
                self.outstanding_acks.remove(&token);
                self.ack_horizon = self.ack_horizon.max(env.deliver_at);
            }
        }
    }

    /// A flush ack was lost. The server *has* applied the update (only the
    /// acknowledgement is missing), so retransmit the identical request —
    /// the server's idempotency cache re-acks without re-applying — until an
    /// ack survives the wire, or give up and lean on the replica copy.
    fn retransmit_update(&mut self, token: u64, observed_at: SimTime) {
        let mut pa = self.outstanding_acks.remove(&token).expect("pending ack");
        let give_up = |me: &mut Self, pa: &PendingAck| {
            // The path to this server is dead, but the data was applied
            // there. Drop the ack obligation; for a primary copy, re-home
            // future traffic to the replica carrying the write-through copy.
            if pa.shadow {
                me.failed_servers.insert(pa.server);
            } else {
                me.fail_over(pa.server);
            }
        };
        pa.attempts += 1;
        if pa.attempts >= self.retry.max_attempts {
            give_up(self, &pa);
            self.ack_horizon = self.ack_horizon.max(observed_at);
            return;
        }
        self.note_retry(pa.req.label(), pa.attempts, observed_at);
        loop {
            let sent_at = self.clock;
            let (_, fate) = self
                .ep
                .send_faulted(
                    self.mem_eps[pa.server as usize],
                    self.clock,
                    pa.req.wire_bytes(),
                    pa.class,
                    Msg::MemReq { token, shadow: pa.shadow, req: pa.req.clone() },
                )
                .expect("memory server endpoint closed");
            self.charge(self.send_ns);
            if !fate.is_dropped() {
                self.outstanding_acks.insert(token, pa);
                return;
            }
            pa.attempts += 1;
            if pa.attempts >= self.retry.max_attempts {
                give_up(self, &pa);
                return;
            }
            self.note_retry(pa.req.label(), pa.attempts, sent_at + self.retry.delay(pa.attempts));
        }
    }

    // ------------------------------------------------------------------
    // Prefetch correlation
    // ------------------------------------------------------------------

    /// Issue an asynchronous line prefetch towards `home`'s effective
    /// server. Returns `false` when the send was dropped — prefetch is
    /// opportunistic and never retried; a later demand miss fetches the
    /// line for real.
    pub(crate) fn try_prefetch(&mut self, home: u32, line: u64, req: MemRequest) -> bool {
        let server = self.effective_server(home);
        let wire = req.wire_bytes();
        let token = self.fresh_token();
        let (_, fate) = self
            .ep
            .send_faulted(
                self.mem_eps[server as usize],
                self.clock,
                wire,
                MsgClass::Data,
                Msg::MemReq { token, shadow: false, req },
            )
            .expect("memory server endpoint closed");
        self.charge(self.send_ns);
        if fate.is_dropped() {
            return false;
        }
        self.prefetch_tokens.insert(token, line);
        self.prefetch_inflight.insert(line, token);
        true
    }

    /// Take a completed prefetch for `line`, if one has arrived.
    pub(crate) fn take_ready_prefetch(
        &mut self,
        line: u64,
    ) -> Option<(SimTime, Vec<u8>, Vec<u64>)> {
        self.prefetch_ready.remove(&line)
    }

    /// Take the token of an in-flight prefetch for `line` (deregistering
    /// it), so the caller can [`Channel::await_prefetch`] it.
    pub(crate) fn take_inflight_prefetch(&mut self, line: u64) -> Option<u64> {
        let token = self.prefetch_inflight.remove(&line)?;
        self.prefetch_tokens.remove(&token);
        Some(token)
    }

    /// True when a prefetch covering `line` is in flight or completed.
    pub(crate) fn prefetch_pending_for(&self, line: u64) -> bool {
        self.prefetch_inflight.contains_key(&line) || self.prefetch_ready.contains_key(&line)
    }

    /// Block for an in-flight prefetch response. Returns `None` when the
    /// response was lost on the wire — the lost copy's arrival plays the
    /// retransmission timeout, and the caller demand-fetches instead.
    pub(crate) fn await_prefetch(&mut self, token: u64) -> Option<(Vec<u8>, Vec<u64>)> {
        loop {
            let env = self.ep.recv().expect("fabric closed while awaiting response");
            let t = Self::token_of(&env);
            if t != token {
                self.absorb(t, env);
                continue;
            }
            self.clock = self.clock.max(env.deliver_at);
            if env.lost {
                return None;
            }
            match env.msg {
                Msg::MemResp { resp: MemResponse::Line { data, versions, .. }, .. } => {
                    return Some((data, versions));
                }
                other => panic!("unexpected prefetch response: {other:?}"),
            }
        }
    }

    /// Drop a completed and poison an in-flight prefetch covering `line`.
    pub(crate) fn poison_prefetch_line(&mut self, line: u64) {
        self.prefetch_ready.remove(&line);
        if let Some(token) = self.prefetch_inflight.remove(&line) {
            self.prefetch_tokens.remove(&token);
            self.poisoned_prefetches.insert(token);
        }
    }

    /// Settle all in-flight prefetch traffic (thread teardown): receiving
    /// each response proves its server already processed the request, so
    /// run-level busy counters read after join are race-free.
    pub(crate) fn settle_prefetches(&mut self) {
        while !self.prefetch_tokens.is_empty() || !self.poisoned_prefetches.is_empty() {
            let env = self.ep.recv().expect("fabric closed while settling prefetches");
            let token = Self::token_of(&env);
            self.absorb(token, env);
        }
    }
}

/// The host control client's channel: reliable (fault-exempt — it models
/// the experimenter's out-of-band access), strictly request/response, with
/// its own token stream and virtual clock.
///
/// Reliability does not survive a *structural* manager crash: a dead
/// primary's replies come back marked lost (see `manager_loop`), and the
/// host — which, like [`host_read_server`](crate::Samhita), knows the fault
/// plan out-of-band — re-sends the same token to the hot standby and stays
/// there. Without a standby a manager crash is rejected at config
/// validation, so a lost reply always has somewhere to go.
pub struct HostChannel {
    ep: Endpoint<Msg>,
    clock: SimTime,
    next_token: u64,
    /// Hot-standby manager endpoint, when one is configured.
    standby: Option<EndpointId>,
    /// Sticky: once a manager reply is lost to the crash, every subsequent
    /// manager RPC goes to the standby.
    mgr_failed: bool,
}

impl HostChannel {
    pub(crate) fn new(ep: Endpoint<Msg>, standby: Option<EndpointId>) -> Self {
        HostChannel { ep, clock: SimTime::ZERO, next_token: 1, standby, mgr_failed: false }
    }

    fn fresh_token(&mut self) -> u64 {
        let t = self.next_token;
        self.next_token += 1;
        t
    }

    /// Reliable manager RPC on behalf of host tid `tid`. A reply marked
    /// lost means the primary died mid-serve (ctl replies are otherwise
    /// fault-exempt): fail over to the standby with the same token — its
    /// replay cache, reconstructed from the shipped log, absorbs any
    /// request the primary both served and shipped.
    pub(crate) fn rpc_mgr(
        &mut self,
        mgr: EndpointId,
        tid: u32,
        req: MgrRequest,
        class: MsgClass,
    ) -> MgrResponse {
        let wire = req.wire_bytes();
        let token = self.fresh_token();
        loop {
            let target = if self.mgr_failed { self.standby.expect("standby manager") } else { mgr };
            self.ep
                .send_reliable(
                    target,
                    self.clock,
                    wire,
                    class,
                    Msg::MgrReq { token, tid, req: req.clone() },
                )
                .expect("manager endpoint closed");
            let env = self.wait_for(token);
            self.clock = self.clock.max(env.deliver_at);
            if env.lost {
                assert!(
                    !self.mgr_failed && self.standby.is_some(),
                    "host manager reply lost with no standby to fail over to"
                );
                self.mgr_failed = true;
                continue;
            }
            match env.msg {
                Msg::MgrResp { resp, .. } => return resp,
                other => panic!("unexpected manager response: {other:?}"),
            }
        }
    }

    /// Reliable memory-server RPC (control-plane reads and writes; `shadow`
    /// marks replica write-through copies, kept off the event trace).
    pub(crate) fn rpc_mem(
        &mut self,
        server: EndpointId,
        shadow: bool,
        req: MemRequest,
    ) -> MemResponse {
        let wire = req.wire_bytes();
        let token = self.fresh_token();
        self.ep
            .send_reliable(
                server,
                self.clock,
                wire,
                MsgClass::Control,
                Msg::MemReq { token, shadow, req },
            )
            .expect("memory server endpoint closed");
        let env = self.wait_for(token);
        self.clock = self.clock.max(env.deliver_at);
        match env.msg {
            Msg::MemResp { resp, .. } => resp,
            other => panic!("unexpected memory response: {other:?}"),
        }
    }

    /// Reliable teardown signal: a crashed (or partitioned) service must
    /// still receive its shutdown message, or the join would hang.
    pub(crate) fn send_shutdown(&self, dst: EndpointId) {
        let _ = self.ep.send_reliable(dst, self.clock, 8, MsgClass::Control, Msg::Shutdown);
    }

    fn wait_for(&mut self, token: u64) -> Envelope<Msg> {
        // The control client is strictly request/response: the next message
        // must be the matching reply.
        let env = self.ep.recv().expect("fabric closed");
        match &env.msg {
            Msg::MemResp { token: t, .. } | Msg::MgrResp { token: t, .. } if *t == token => env,
            other => panic!("control client got unexpected message: {other:?}"),
        }
    }
}
