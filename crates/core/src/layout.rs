//! Address-space layout and thread placement.
//!
//! The shared global address space is a flat 64-bit byte space carved into
//! three regions, one per allocation strategy:
//!
//! ```text
//! page 0        : reserved (null guard)
//! ARENA region  : max_threads arenas, one per thread, line-aligned so that
//!                 thread-local allocations can never false-share
//! SHARED zone   : manager-mediated medium allocations
//! STRIPED region: large allocations, line-aligned so consecutive lines
//!                 rotate across memory servers
//! ```
//!
//! Placement maps components onto topology nodes following the paper's
//! experimental setup: the manager gets its own node, each memory server its
//! own node, and compute threads fill the remaining nodes core by core.

use samhita_scl::{NodeId, Topology};
use serde::{Deserialize, Serialize};

use crate::config::{SamhitaConfig, TopologyKind};

/// Resolved region boundaries for one configuration.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AddressLayout {
    /// Bytes per page (copied from the config for convenience).
    pub page_size: u64,
    /// Bytes per cache line.
    pub line_bytes: u64,
    /// First byte of the arena region.
    pub arena_base: u64,
    /// Bytes per thread arena.
    pub arena_stride: u64,
    /// Number of provisioned arenas.
    pub arenas: u32,
    /// First byte of the shared zone.
    pub shared_base: u64,
    /// One past the last byte of the shared zone.
    pub shared_end: u64,
    /// First byte of the striped region.
    pub striped_base: u64,
}

impl AddressLayout {
    /// Compute the layout for a configuration.
    pub fn new(cfg: &SamhitaConfig) -> Self {
        let page = cfg.page_size as u64;
        let line = cfg.line_bytes() as u64;
        // Round the arena stride up to a whole number of lines so arenas of
        // different threads never share a cache line (or a page).
        let arena_stride = cfg.arena_bytes_per_thread.div_ceil(line) * line;
        let arena_base = line.max(page); // skip the null guard, stay line-aligned
        let shared_base = arena_base + arena_stride * cfg.max_threads as u64;
        let shared_end = shared_base + cfg.shared_zone_bytes;
        // Striped region starts at the next line boundary.
        let striped_base = shared_end.div_ceil(line) * line;
        AddressLayout {
            page_size: page,
            line_bytes: line,
            arena_base,
            arena_stride,
            arenas: cfg.max_threads,
            shared_base,
            shared_end,
            striped_base,
        }
    }

    /// The arena address range `[start, end)` for a thread.
    ///
    /// # Panics
    /// Panics if `tid` exceeds the provisioned arena count.
    pub fn arena_range(&self, tid: u32) -> (u64, u64) {
        assert!(tid < self.arenas, "thread {tid} beyond provisioned arenas");
        let start = self.arena_base + self.arena_stride * tid as u64;
        (start, start + self.arena_stride)
    }

    /// Which region an address belongs to.
    pub fn region_of(&self, addr: u64) -> Region {
        if addr < self.arena_base {
            Region::Reserved
        } else if addr < self.shared_base {
            Region::Arena(((addr - self.arena_base) / self.arena_stride) as u32)
        } else if addr < self.shared_end {
            Region::Shared
        } else if addr >= self.striped_base {
            Region::Striped
        } else {
            Region::Reserved // padding between shared_end and striped_base
        }
    }
}

/// Address-space regions (see module docs).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Region {
    /// Unmapped guard/padding space.
    Reserved,
    /// A thread arena (payload: owning thread id).
    Arena(u32),
    /// The manager-mediated shared zone (strategy 2).
    Shared,
    /// The server-striped large-allocation region (strategy 3).
    Striped,
}

/// Where each component runs.
#[derive(Clone, Debug)]
pub struct Placement {
    /// Node hosting the manager.
    pub manager: NodeId,
    /// Node hosting each memory server.
    pub mem_servers: Vec<NodeId>,
    /// Nodes available for compute threads, with their core counts.
    compute_nodes: Vec<(NodeId, u32)>,
}

impl Placement {
    /// Compute placement for a configuration over its topology.
    pub fn new(cfg: &SamhitaConfig, topo: &Topology) -> Self {
        match cfg.topology {
            TopologyKind::SingleNode => {
                let n = NodeId(0);
                Placement {
                    manager: n,
                    mem_servers: vec![n; cfg.mem_servers as usize],
                    compute_nodes: vec![(n, topo.node(n).expect("node 0").cores)],
                }
            }
            TopologyKind::Cluster { nodes } => {
                // Paper setup: node 0 = manager, nodes 1..=m = memory
                // servers, the rest run compute threads.
                let m = cfg.mem_servers;
                assert!(nodes >= 2 + m, "validated by SamhitaConfig::validate");
                let mem_servers = (1..=m).map(NodeId).collect();
                let compute_nodes = (1 + m..nodes)
                    .map(|i| (NodeId(i), topo.node(NodeId(i)).expect("cluster node").cores))
                    .collect();
                Placement { manager: NodeId(0), mem_servers, compute_nodes }
            }
            TopologyKind::HeteroNode { coprocessors, cores_per_cop } => {
                // Figure 1: manager and memory servers on the host, compute
                // threads on the coprocessor cores.
                let host = NodeId(0);
                let compute_nodes =
                    (1..=coprocessors).map(|i| (NodeId(i), cores_per_cop)).collect();
                Placement {
                    manager: host,
                    mem_servers: vec![host; cfg.mem_servers as usize],
                    compute_nodes,
                }
            }
        }
    }

    /// The node a compute thread runs on: fill nodes core by core, wrapping
    /// (oversubscribing) if threads exceed total cores.
    pub fn compute_node(&self, tid: u32) -> NodeId {
        let total: u32 = self.compute_nodes.iter().map(|&(_, c)| c).sum();
        let mut slot = tid % total.max(1);
        for &(node, cores) in &self.compute_nodes {
            if slot < cores {
                return node;
            }
            slot -= cores;
        }
        self.compute_nodes.last().expect("at least one compute node").0
    }

    /// Total compute cores before oversubscription.
    pub fn compute_cores(&self) -> u32 {
        self.compute_nodes.iter().map(|&(_, c)| c).sum()
    }

    /// Node hosting the hot-standby manager, when one is configured: the
    /// last compute node, which on any multi-node topology is distinct from
    /// the manager's node, so a manager-node crash cannot take the standby
    /// down with it.
    pub fn standby_node(&self) -> NodeId {
        self.compute_nodes.last().map_or(self.manager, |&(n, _)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> (SamhitaConfig, AddressLayout) {
        let cfg = SamhitaConfig::default();
        let l = AddressLayout::new(&cfg);
        (cfg, l)
    }

    #[test]
    fn regions_are_ordered_and_aligned() {
        let (cfg, l) = layout();
        assert!(l.arena_base >= cfg.page_size as u64);
        assert!(l.arena_base % l.line_bytes == 0);
        assert!(l.shared_base > l.arena_base);
        assert!(l.striped_base >= l.shared_end);
        assert!(l.striped_base % l.line_bytes == 0);
        assert!(l.arena_stride % l.line_bytes == 0);
    }

    #[test]
    fn arena_ranges_are_disjoint_per_thread() {
        let (_, l) = layout();
        let (_s0, e0) = l.arena_range(0);
        let (s1, e1) = l.arena_range(1);
        assert_eq!(e0, s1);
        assert!(e1 > s1);
        // No two arenas can share a cache line.
        assert_eq!(e0 % l.line_bytes, 0);
    }

    #[test]
    fn region_classification() {
        let (_, l) = layout();
        assert_eq!(l.region_of(0), Region::Reserved);
        assert_eq!(l.region_of(l.arena_base), Region::Arena(0));
        assert_eq!(l.region_of(l.arena_base + l.arena_stride), Region::Arena(1));
        assert_eq!(l.region_of(l.shared_base), Region::Shared);
        assert_eq!(l.region_of(l.shared_end - 1), Region::Shared);
        assert_eq!(l.region_of(l.striped_base), Region::Striped);
        assert_eq!(l.region_of(l.striped_base + (1 << 40)), Region::Striped);
    }

    #[test]
    fn cluster_placement_matches_paper() {
        let cfg = SamhitaConfig::default(); // 6 nodes, 1 memory server
        let topo = cfg.build_topology();
        let p = Placement::new(&cfg, &topo);
        assert_eq!(p.manager, NodeId(0));
        assert_eq!(p.mem_servers, vec![NodeId(1)]);
        assert_eq!(p.compute_cores(), 32); // 4 compute nodes x 8 cores
                                           // Fill-first placement: first 8 threads share node 2.
        assert_eq!(p.compute_node(0), NodeId(2));
        assert_eq!(p.compute_node(7), NodeId(2));
        assert_eq!(p.compute_node(8), NodeId(3));
        assert_eq!(p.compute_node(31), NodeId(5));
        // Oversubscription wraps.
        assert_eq!(p.compute_node(32), NodeId(2));
    }

    #[test]
    fn hetero_placement_puts_compute_on_coprocessors() {
        let cfg = SamhitaConfig {
            topology: TopologyKind::HeteroNode { coprocessors: 2, cores_per_cop: 16 },
            ..SamhitaConfig::default()
        };
        let topo = cfg.build_topology();
        let p = Placement::new(&cfg, &topo);
        assert_eq!(p.manager, NodeId(0));
        assert_eq!(p.mem_servers, vec![NodeId(0)]);
        assert_eq!(p.compute_node(0), NodeId(1));
        assert_eq!(p.compute_node(16), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "beyond provisioned arenas")]
    fn arena_range_bounds_checked() {
        let (_, l) = layout();
        l.arena_range(10_000);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Every address belongs to exactly one region, region boundaries
        /// are consistent with `arena_range`, and arena ownership matches
        /// the arithmetic.
        #[test]
        fn regions_partition_the_address_space(addr in any::<u64>()) {
            let cfg = SamhitaConfig::default();
            let l = AddressLayout::new(&cfg);
            match l.region_of(addr) {
                Region::Reserved => {
                    prop_assert!(
                        addr < l.arena_base || (addr >= l.shared_end && addr < l.striped_base)
                    );
                }
                Region::Arena(tid) => {
                    prop_assert!(tid < l.arenas);
                    let (lo, hi) = l.arena_range(tid);
                    prop_assert!(addr >= lo && addr < hi, "arena {tid}: {addr} not in [{lo},{hi})");
                }
                Region::Shared => {
                    prop_assert!(addr >= l.shared_base && addr < l.shared_end);
                }
                Region::Striped => {
                    prop_assert!(addr >= l.striped_base);
                }
            }
        }

        /// Arena ranges tile the arena region exactly.
        #[test]
        fn arena_ranges_tile(tid in 0u32..64) {
            let cfg = SamhitaConfig::default();
            let l = AddressLayout::new(&cfg);
            let (lo, hi) = l.arena_range(tid);
            prop_assert_eq!(l.region_of(lo), Region::Arena(tid));
            prop_assert_eq!(l.region_of(hi - 1), Region::Arena(tid));
            if tid + 1 < l.arenas {
                prop_assert_eq!(l.region_of(hi), Region::Arena(tid + 1));
            } else {
                prop_assert_eq!(l.region_of(hi), Region::Shared);
            }
        }
    }
}
