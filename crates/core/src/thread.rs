//! The compute-thread context: the whole client side of the DSM.
//!
//! A [`ThreadCtx`] is handed to each compute thread by
//! [`crate::system::Samhita::run`]. It owns the thread's software cache,
//! region state, fine-grain write set, and virtual clock, and exposes the
//! programming interface the paper describes as "very similar to that
//! presented by Pthreads": allocation, typed loads and stores into the
//! shared global address space, mutual-exclusion locks, condition variables
//! and barriers. All fabric traffic goes through a typed transport
//! [`crate::proto::Channel`], which owns token correlation, retry/backoff,
//! failover, and cost accounting.
//!
//! ## Time accounting
//!
//! Every access is charged against the virtual clock. Synchronization
//! operations record their elapsed time in the `sync` bucket; everything
//! else — including demand-fetch misses and the invalidation refetches
//! caused by false sharing — is compute time, exactly the split the paper's
//! figures use.
//!
//! ## Consistency operations
//!
//! Per RegC, every synchronization operation doubles as a consistency
//! operation: dirty ordinary pages are diffed and flushed to their homes,
//! the fine-grain write set is flushed as object-level updates, a write
//! notice is published through the manager, and incoming notices invalidate
//! stale cached pages.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use samhita_mem::{HomeMap, MemRequest, MemResponse, PageId};
use samhita_regc::{
    FineUpdate, PageState, RegionKind, RegionState, UpdateBatch, UpdatePart, WriteNotice, WriteSet,
};
use samhita_scl::{Endpoint, EndpointId, MsgClass, RetryPolicy, SimTime};
use samhita_trace::{EventKind, FetchKind, TraceBuf};

use crate::cache::SoftCache;
use crate::config::{ConsistencyVariant, RuntimeKind, SamhitaConfig};
use crate::freelist::FreeListAlloc;
use crate::layout::{AddressLayout, Region};
use crate::localsync::LocalSync;
use crate::msg::{MgrRequest, MgrResponse, Msg};
use crate::proto::Channel;
use crate::stats::ThreadStats;

/// Running totals of the five measured wait classes, in virtual ns. Kept
/// separately from [`ThreadStats`] so [`ThreadCtx::start_timing`] can
/// snapshot a baseline and the reported counters stay epoch-relative —
/// otherwise pre-warm-up waits would break the per-thread conservation
/// identity `compute + waits + idle == makespan`.
#[derive(Copy, Clone, Debug, Default)]
struct WaitAcc {
    fetch: u64,
    lock: u64,
    barrier: u64,
    mgr: u64,
    flush: u64,
}

/// The per-thread handle to the shared global address space.
pub struct ThreadCtx {
    tid: u32,
    nthreads: u32,
    cfg: Arc<SamhitaConfig>,
    layout: AddressLayout,
    home_map: HomeMap,

    /// The thread's typed transport: clock, tokens, retries, failover.
    chan: Channel,
    local_sync: Option<Arc<LocalSync>>,

    sync_time: SimTime,
    /// Timing epoch (see [`ThreadCtx::start_timing`]).
    epoch_clock: SimTime,
    epoch_sync: SimTime,
    /// Wait-class totals since thread start / since the epoch snapshot.
    waits: WaitAcc,
    epoch_waits: WaitAcc,

    cache: SoftCache,
    region: RegionState,
    writeset: WriteSet,
    /// Pages flushed (sync flushes and evictions) not yet published.
    pending_pages: BTreeSet<u64>,
    last_seen: u64,

    arena: FreeListAlloc,

    stats: ThreadStats,
}

impl ThreadCtx {
    /// Build and register a thread context. Called by the system; not part
    /// of the public API.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        tid: u32,
        nthreads: u32,
        cfg: Arc<SamhitaConfig>,
        ep: Endpoint<Msg>,
        mgr_ep: EndpointId,
        standby_ep: Option<EndpointId>,
        mem_eps: Vec<EndpointId>,
        local_sync: Option<Arc<LocalSync>>,
    ) -> Self {
        let layout = AddressLayout::new(&cfg);
        let (arena_lo, arena_hi) = layout.arena_range(tid);
        let cache = SoftCache::new(
            cfg.page_size,
            cfg.line_pages as usize,
            cfg.cache_capacity_lines,
            cfg.eviction,
        );
        let home_map = HomeMap::new(cfg.mem_servers, cfg.line_pages);
        // Per-thread jitter stream: deterministic, but decorrelated across
        // threads so retransmissions do not synchronize.
        let retry = RetryPolicy {
            base: SimTime::from_ns(cfg.retry.base_ns),
            cap: SimTime::from_ns(cfg.retry.cap_ns),
            max_attempts: cfg.retry.max_attempts,
            seed: cfg.faults.seed ^ (u64::from(tid) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // Grant-liveness probe for blocked manager requests (see
        // `Channel::probe_ns`): one lease period, so a waiter orphaned by a
        // manager crash resurfaces on the same timescale the standby uses
        // to reclaim expired leases. Deterministic-runtime only — on the OS
        // runtime `recv_deadline` degrades to a wall-clock poll and the
        // probe would fire nondeterministically.
        let probe_ns =
            (cfg.runtime == RuntimeKind::Det && standby_ep.is_some()).then_some(cfg.mgr_lease_ns);
        let chan = Channel::new(
            tid,
            ep,
            mgr_ep,
            standby_ep,
            probe_ns,
            mem_eps,
            cfg.costs.send_ns as f64,
            cfg.replica_offset,
            home_map,
            retry,
        );
        let mut ctx = ThreadCtx {
            tid,
            nthreads,
            cfg,
            layout,
            home_map,
            chan,
            local_sync,
            sync_time: SimTime::ZERO,
            epoch_clock: SimTime::ZERO,
            epoch_sync: SimTime::ZERO,
            waits: WaitAcc::default(),
            epoch_waits: WaitAcc::default(),
            cache,
            region: RegionState::new(),
            writeset: WriteSet::new(),
            pending_pages: BTreeSet::new(),
            last_seen: 0,
            arena: FreeListAlloc::new(arena_lo, arena_hi),
            stats: ThreadStats { tid, ..ThreadStats::default() },
        };
        match ctx.chan.rpc_mgr(MgrRequest::Register { observer: false }, MsgClass::Control) {
            MgrResponse::Registered { watermark } => ctx.last_seen = watermark,
            MgrResponse::Err(e) => panic!("registration failed: {e}"),
            other => panic!("registration failed: {other:?}"),
        }
        // Registration is setup, not application time.
        ctx.chan.reset_clock();
        ctx
    }

    /// Attach the thread's event buffer. Called by the system after
    /// construction (registration is setup, not a traced protocol event), so
    /// every stamp in the buffer is on the post-reset application timeline.
    pub(crate) fn attach_trace(&mut self, buf: TraceBuf) {
        self.chan.attach_trace(buf);
    }

    /// Record one protocol event at the current virtual time, if tracing.
    /// Takes a closure so untraced runs never construct the event (see
    /// [`Channel::trace`]).
    #[inline]
    fn trace(&mut self, kind: impl FnOnce() -> EventKind) {
        self.chan.trace(kind);
    }

    /// Close a fetch stall that started at `t0`: feed the latency histogram
    /// (always on) and the event trace (when enabled).
    fn record_fetch(&mut self, page: u64, pages: u32, kind: FetchKind, t0: SimTime) {
        let wait_ns = (self.chan.now() - t0).as_ns();
        self.stats.fetch_latency.record(wait_ns);
        self.waits.fetch += wait_ns;
        self.trace(|| EventKind::Fetch { page, pages, kind, wait_ns });
    }

    // ------------------------------------------------------------------
    // Identity and time
    // ------------------------------------------------------------------

    /// This thread's id within the run (0-based).
    pub fn tid(&self) -> u32 {
        self.tid
    }

    /// Number of compute threads in the run.
    pub fn nthreads(&self) -> u32 {
        self.nthreads
    }

    /// The thread's virtual clock.
    pub fn now(&self) -> SimTime {
        self.chan.now()
    }

    /// Time spent in synchronization operations so far.
    pub fn sync_time(&self) -> SimTime {
        self.sync_time
    }

    /// Restart the measurement epoch: the reported [`crate::ThreadStats`]
    /// cover only work after the last call. Benchmarks call this after their
    /// initialization/warm-up phase, exactly where a wall-clock benchmark
    /// would start its timer.
    pub fn start_timing(&mut self) {
        self.epoch_clock = self.chan.now();
        self.epoch_sync = self.sync_time;
        self.epoch_waits = self.waits;
    }

    /// Charge `flops` floating-point operations of pure computation.
    pub fn compute(&mut self, flops: u64) {
        self.chan.charge(flops as f64 * self.cfg.costs.flop_ns);
    }

    fn charge_mem_ops(&mut self, bytes: usize) {
        let ops = bytes.div_ceil(8) as f64;
        self.chan.charge(ops * self.cfg.costs.mem_op_ns);
    }

    // ------------------------------------------------------------------
    // Allocation (the three strategies)
    // ------------------------------------------------------------------

    /// Allocate `size` bytes in the shared global address space.
    ///
    /// Strategy follows the paper: sizes up to the small threshold come from
    /// this thread's arena (local, no manager round-trip, no false sharing
    /// with other threads by construction); medium sizes from the manager's
    /// shared zone; large sizes striped across memory servers.
    ///
    /// # Panics
    /// Panics when the address space region is exhausted.
    pub fn alloc(&mut self, size: u64, align: u64) -> u64 {
        assert!(size > 0, "zero-size allocation");
        let align = align.max(8);
        if size <= self.cfg.small_threshold {
            self.charge_mem_ops(16); // local free-list walk
            if let Some(addr) = self.arena.alloc(size, align) {
                return addr;
            }
            // Arena exhausted: overflow to the shared zone like the
            // original allocator would.
        }
        let req = if size >= self.cfg.large_threshold {
            MgrRequest::AllocStriped { size }
        } else {
            MgrRequest::AllocShared { size, align }
        };
        match self.rpc_mgr_traced(req, MsgClass::Control) {
            MgrResponse::Addr(addr) => addr,
            MgrResponse::Err(e) => panic!("allocation failed: {e}"),
            other => panic!("unexpected allocation response: {other:?}"),
        }
    }

    /// Free an allocation made by [`ThreadCtx::alloc`] (any thread may free
    /// manager-mediated allocations; arena allocations must be freed by
    /// their owner).
    pub fn free(&mut self, addr: u64) {
        match self.layout.region_of(addr) {
            Region::Arena(owner) if owner == self.tid => {
                self.charge_mem_ops(16);
                self.arena.free(addr);
            }
            Region::Arena(owner) => {
                panic!("thread {} freeing thread {owner}'s arena allocation", self.tid)
            }
            Region::Shared | Region::Striped => {
                match self.rpc_mgr_traced(MgrRequest::Free { addr }, MsgClass::Control) {
                    MgrResponse::Ok => {}
                    MgrResponse::Err(e) => panic!("free failed: {e}"),
                    other => panic!("unexpected free response: {other:?}"),
                }
            }
            Region::Reserved => panic!("free of reserved address {addr:#x}"),
        }
    }

    // ------------------------------------------------------------------
    // Loads and stores
    // ------------------------------------------------------------------

    /// Read `out.len()` bytes from global address `addr`.
    pub fn read_bytes(&mut self, addr: u64, out: &mut [u8]) {
        let ps = self.cfg.page_size as u64;
        let mut cursor = 0usize;
        while cursor < out.len() {
            let at = addr + cursor as u64;
            let page = at / ps;
            let off = (at % ps) as usize;
            let take = ((ps as usize) - off).min(out.len() - cursor);
            self.ensure_resident(page);
            self.cache.read_page(page, off, &mut out[cursor..cursor + take]);
            cursor += take;
        }
        self.charge_mem_ops(out.len());
    }

    /// Write `data` to global address `addr`, applying the RegC protocol.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let ps = self.cfg.page_size as u64;
        let region = self.effective_region();
        let mut cursor = 0usize;
        while cursor < data.len() {
            let at = addr + cursor as u64;
            let page = at / ps;
            let off = (at % ps) as usize;
            let take = ((ps as usize) - off).min(data.len() - cursor);
            self.ensure_resident(page);
            let chunk = &data[cursor..cursor + take];
            let outcome = self.cache.write_page(page, off, chunk, region);
            if outcome.twin_created {
                self.stats.twins_created += 1;
                self.stats.hot.record_twin(page);
                self.trace(|| EventKind::TwinCreate { page });
            }
            if outcome.log_fine_grain {
                self.writeset.record(at, chunk);
            }
            cursor += take;
        }
        self.charge_mem_ops(data.len());
    }

    /// Read one `f64`.
    pub fn read_f64(&mut self, addr: u64) -> f64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        f64::from_le_bytes(b)
    }

    /// Write one `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read one `u64`.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write one `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read `out.len()` consecutive `f64`s starting at `addr`.
    pub fn read_f64_slice(&mut self, addr: u64, out: &mut [f64]) {
        let mut bytes = vec![0u8; out.len() * 8];
        self.read_bytes(addr, &mut bytes);
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            out[i] = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
    }

    /// Write `src` as consecutive `f64`s starting at `addr`.
    pub fn write_f64_slice(&mut self, addr: u64, src: &[f64]) {
        let mut bytes = Vec::with_capacity(src.len() * 8);
        for v in src {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_bytes(addr, &bytes);
    }

    /// Read-modify-write `n` consecutive `f64`s starting at `addr`:
    /// `x[i] = f(i, x[i])`. One protocol application per touched page, two
    /// memory operations charged per element — the bulk path the kernels
    /// use for their inner loops.
    pub fn update_f64s(&mut self, addr: u64, n: usize, mut f: impl FnMut(usize, f64) -> f64) {
        let ps = self.cfg.page_size as u64;
        let region = self.effective_region();
        let mut idx = 0usize;
        let mut cursor = 0u64;
        let total = n as u64 * 8;
        let mut scratch = Vec::new();
        while cursor < total {
            let at = addr + cursor;
            let page = at / ps;
            let off = (at % ps) as usize;
            let take = (ps - at % ps).min(total - cursor) as usize;
            debug_assert_eq!(take % 8, 0, "f64 elements straddling pages need 8-aligned addr");
            self.ensure_resident(page);
            scratch.resize(take, 0);
            self.cache.read_page(page, off, &mut scratch);
            for chunk in scratch.chunks_exact_mut(8) {
                let v = f64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
                let nv = f(idx, v);
                chunk.copy_from_slice(&nv.to_le_bytes());
                idx += 1;
            }
            let outcome = self.cache.write_page(page, off, &scratch, region);
            if outcome.twin_created {
                self.stats.twins_created += 1;
                self.stats.hot.record_twin(page);
                self.trace(|| EventKind::TwinCreate { page });
            }
            if outcome.log_fine_grain {
                self.writeset.record(at, &scratch);
            }
            cursor += take as u64;
        }
        self.charge_mem_ops(n * 16); // one load + one store per element
    }

    fn effective_region(&self) -> RegionKind {
        match self.cfg.consistency {
            // Whole-page ablation: every store follows the ordinary-region
            // (twin + page diff) path, even inside critical sections.
            ConsistencyVariant::WholePage => RegionKind::Ordinary,
            ConsistencyVariant::FineGrain => self.region.kind(),
        }
    }

    // ------------------------------------------------------------------
    // Synchronization (each op is also a consistency operation)
    // ------------------------------------------------------------------

    /// Acquire a mutual-exclusion lock, entering a consistency region.
    pub fn lock(&mut self, lock: u32) {
        let t0 = self.chan.now();
        let (pages, updates) = self.flush_all();
        let req_at = self.chan.now();
        self.trace(|| EventKind::LockRequest { lock });
        let (notices, wm) = if let Some(ls) = self.local_sync.clone() {
            let (at, notices, wm) =
                ls.acquire(lock, self.tid, self.chan.now(), pages, updates, self.last_seen);
            self.chan.advance_to(at);
            (notices, wm)
        } else {
            match self.chan.rpc_mgr(
                MgrRequest::Acquire { lock, pages, updates, last_seen: self.last_seen },
                MsgClass::Sync,
            ) {
                MgrResponse::Granted { notices, watermark } => (notices, watermark),
                MgrResponse::Err(e) => panic!("lock acquire failed: {e}"),
                other => panic!("unexpected acquire response: {other:?}"),
            }
        };
        let wait_ns = (self.chan.now() - req_at).as_ns();
        self.stats.lock_wait.record(wait_ns);
        self.waits.lock += wait_ns;
        self.trace(|| EventKind::LockAcquire { lock, wait_ns });
        self.apply_notices(&notices);
        self.last_seen = wm;
        self.region.enter();
        self.stats.locks_acquired += 1;
        self.sync_time += self.chan.now() - t0;
    }

    /// Release a lock, flushing consistency-region updates at fine grain.
    pub fn unlock(&mut self, lock: u32) {
        let t0 = self.chan.now();
        self.region.exit();
        let (pages, updates) = self.flush_all();
        // Stamped after the flush and before the wire send: on a correct run
        // this always precedes the next holder's grant stamp, which is what
        // lets the trace checker treat [acquire, release] as the hold.
        self.trace(|| EventKind::LockRelease { lock });
        if let Some(ls) = self.local_sync.clone() {
            ls.release(lock, self.tid, self.chan.now(), pages, updates);
            self.chan.charge(self.cfg.costs.local_sync_ns as f64);
        } else {
            let req = MgrRequest::Release { lock, pages, updates, last_seen: self.last_seen };
            if self.chan.acked_releases() {
                // With a hot standby, a fire-and-forget release could vanish
                // with the crashed primary and leave the lock held until its
                // lease expires. Upgrade to a full RPC: the channel's
                // retry/failover machinery lands it at whichever manager is
                // alive, and the stall is attributed like any manager wait.
                match self.rpc_mgr_traced(req, MsgClass::Sync) {
                    MgrResponse::Ok => {}
                    MgrResponse::Err(e) => panic!("release failed: {e}"),
                    other => panic!("unexpected release response: {other:?}"),
                }
            } else {
                // Fire-and-forget: the manager orders the release before any
                // subsequent grant; the releaser only pays the send cost (plus
                // backoff for any retransmission after a send-time drop).
                self.chan.send_mgr_oneway(req, MsgClass::Sync);
            }
        }
        self.sync_time += self.chan.now() - t0;
    }

    /// Wait at a barrier.
    pub fn barrier(&mut self, barrier: u32) {
        let t0 = self.chan.now();
        let (pages, updates) = self.flush_all();
        let arrive_at = self.chan.now();
        self.trace(|| EventKind::BarrierArrive { barrier });
        let (notices, wm) = if let Some(ls) = self.local_sync.clone() {
            let (at, notices, wm) =
                ls.barrier_wait(barrier, self.tid, self.chan.now(), pages, updates, self.last_seen);
            self.chan.advance_to(at);
            (notices, wm)
        } else {
            match self.chan.rpc_mgr(
                MgrRequest::BarrierWait { barrier, pages, updates, last_seen: self.last_seen },
                MsgClass::Sync,
            ) {
                MgrResponse::BarrierReleased { notices, watermark } => (notices, watermark),
                MgrResponse::Err(e) => panic!("barrier wait failed: {e}"),
                other => panic!("unexpected barrier response: {other:?}"),
            }
        };
        let wait_ns = (self.chan.now() - arrive_at).as_ns();
        self.stats.barrier_wait.record(wait_ns);
        self.waits.barrier += wait_ns;
        self.trace(|| EventKind::BarrierRelease { barrier, wait_ns });
        self.apply_notices(&notices);
        self.last_seen = wm;
        self.stats.barriers += 1;
        self.sync_time += self.chan.now() - t0;
    }

    /// Atomically release `lock` and wait on condition variable `cond`;
    /// re-acquires the lock before returning. Must be called while holding
    /// `lock` (as with Pthreads, that is a caller obligation).
    pub fn cond_wait(&mut self, cond: u32, lock: u32) {
        let t0 = self.chan.now();
        let (pages, updates) = self.flush_all();
        // On the trace, a cond wait is a lock release (the atomic handoff to
        // the manager) followed by a re-acquire at wake-up.
        self.trace(|| EventKind::LockRelease { lock });
        let req_at = self.chan.now();
        match self.chan.rpc_mgr(
            MgrRequest::CondWait { cond, lock, pages, updates, last_seen: self.last_seen },
            MsgClass::Sync,
        ) {
            MgrResponse::Granted { notices, watermark } => {
                let wait_ns = (self.chan.now() - req_at).as_ns();
                // The conservation audit's consistency fix: a condition wait
                // is a lock wait on the trace and must be one in the report
                // too — it previously skipped the histogram and would have
                // been double-counted as compute by any remainder-based
                // breakdown.
                self.stats.lock_wait.record(wait_ns);
                self.waits.lock += wait_ns;
                self.trace(|| EventKind::LockAcquire { lock, wait_ns });
                self.apply_notices(&notices);
                self.last_seen = watermark;
            }
            MgrResponse::Err(e) => panic!("cond wait failed: {e}"),
            other => panic!("unexpected cond-wait response: {other:?}"),
        }
        self.sync_time += self.chan.now() - t0;
    }

    /// Wake one waiter of `cond`.
    pub fn cond_signal(&mut self, cond: u32) {
        let t0 = self.chan.now();
        match self.rpc_mgr_traced(MgrRequest::CondSignal { cond }, MsgClass::Sync) {
            MgrResponse::Ok => {}
            MgrResponse::Err(e) => panic!("cond signal failed: {e}"),
            other => panic!("unexpected signal response: {other:?}"),
        }
        self.sync_time += self.chan.now() - t0;
    }

    /// Wake all waiters of `cond`.
    pub fn cond_broadcast(&mut self, cond: u32) {
        let t0 = self.chan.now();
        match self.rpc_mgr_traced(MgrRequest::CondBroadcast { cond }, MsgClass::Sync) {
            MgrResponse::Ok => {}
            MgrResponse::Err(e) => panic!("cond broadcast failed: {e}"),
            other => panic!("unexpected broadcast response: {other:?}"),
        }
        self.sync_time += self.chan.now() - t0;
    }

    /// Create a lock from a running thread (locks are more typically created
    /// by the host before `run`).
    pub fn create_lock(&mut self) -> u32 {
        match self.rpc_mgr_traced(MgrRequest::CreateLock, MsgClass::Control) {
            MgrResponse::SyncId(id) => id,
            MgrResponse::Err(e) => panic!("create-lock failed: {e}"),
            other => panic!("unexpected create-lock response: {other:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Internals: residency, flushing
    // ------------------------------------------------------------------

    /// Make `page` resident and valid, faulting (and prefetching) as needed.
    fn ensure_resident(&mut self, page: u64) {
        let line = self.cache.line_of(page);
        let line_pages = self.cache.line_pages() as u32;
        if self.cache.contains_line(line) {
            if self.cache.page_state(page) == Some(PageState::Invalid) {
                let t0 = self.chan.now();
                // Revalidation after invalidation notices: false-sharing
                // refetch traffic. When several pages of the line were
                // invalidated, one line fetch amortizes the round-trip.
                let fetched_pages = if self.cache.invalid_pages_in_line(line) > 1 {
                    let first = PageId(line * self.cache.line_pages() as u64);
                    let server = self.home_map.home_of_line(line);
                    let (resp, _) = self.chan.rpc_mem(
                        server,
                        MemRequest::FetchLine { first, pages: self.cache.line_pages() as u32 },
                        MsgClass::Data,
                    );
                    match resp {
                        MemResponse::Line { data, versions, .. } => {
                            self.chan.charge(
                                (data.len() as u64 / 1024 * self.cfg.costs.cache_fill_per_kib_ns)
                                    as f64,
                            );
                            self.cache.refresh_line(line, &data, &versions);
                        }
                        other => panic!("unexpected line fetch response: {other:?}"),
                    }
                    line_pages
                } else {
                    let server = self.home_map.home_of_page(PageId(page));
                    let (resp, _) = self.chan.rpc_mem(
                        server,
                        MemRequest::FetchPage { page: PageId(page) },
                        MsgClass::Data,
                    );
                    match resp {
                        MemResponse::Page { data, version, .. } => {
                            self.cache.install_page(page, &data, version);
                            self.chan.charge(
                                (data.len() as u64 / 1024 * self.cfg.costs.cache_fill_per_kib_ns)
                                    as f64,
                            );
                        }
                        other => panic!("unexpected page fetch response: {other:?}"),
                    }
                    1
                };
                self.stats.page_refetches += 1;
                self.stats.hot.record_refetch(page);
                self.record_fetch(page, fetched_pages, FetchKind::Refetch, t0);
            }
            self.cache.touch_line(line);
            return;
        }

        let first_page = line * self.cache.line_pages() as u64;
        let t0 = self.chan.now();
        if let Some((deliver, data, versions)) = self.chan.take_ready_prefetch(line) {
            // A completed prefetch: free unless we outran it.
            self.chan.advance_to(deliver);
            self.stats.prefetch_hits += 1;
            self.install_line(line, data, versions);
            self.record_fetch(first_page, line_pages, FetchKind::PrefetchHit, t0);
        } else if let Some(token) = self.chan.take_inflight_prefetch(line) {
            // Prefetch still in flight: wait for it.
            match self.chan.await_prefetch(token) {
                Some((data, versions)) => {
                    self.stats.prefetch_late += 1;
                    self.install_line(line, data, versions);
                    self.record_fetch(first_page, line_pages, FetchKind::PrefetchLate, t0);
                }
                None => {
                    // The prefetch response was lost on the wire (the wait
                    // for the lost copy was the timeout): demand-fetch.
                    self.stats.line_misses += 1;
                    self.stats.hot.record_miss(first_page, line_pages as u64);
                    self.demand_fetch_line(line);
                    self.record_fetch(first_page, line_pages, FetchKind::Demand, t0);
                }
            }
        } else {
            // Demand miss.
            self.stats.line_misses += 1;
            self.stats.hot.record_miss(first_page, line_pages as u64);
            self.demand_fetch_line(line);
            self.record_fetch(first_page, line_pages, FetchKind::Demand, t0);
        }
        self.cache.touch_line(line);

        // Anticipatory paging: ask for the adjacent line asynchronously.
        if self.cfg.prefetch {
            self.maybe_prefetch(line + 1);
        }
    }

    /// Fetch a whole line synchronously from its (effective) home.
    fn demand_fetch_line(&mut self, line: u64) {
        let first = PageId(line * self.cache.line_pages() as u64);
        let server = self.home_map.home_of_line(line);
        let (resp, _) = self.chan.rpc_mem(
            server,
            MemRequest::FetchLine { first, pages: self.cache.line_pages() as u32 },
            MsgClass::Data,
        );
        match resp {
            MemResponse::Line { data, versions, .. } => self.install_line(line, data, versions),
            other => panic!("unexpected line fetch response: {other:?}"),
        }
    }

    fn install_line(&mut self, line: u64, data: Vec<u8>, versions: Vec<u64>) {
        self.make_room();
        self.chan.charge((data.len() as u64 / 1024 * self.cfg.costs.cache_fill_per_kib_ns) as f64);
        self.cache.install_line(line, data, versions);
    }

    /// Evict until a new line fits, flushing dirty victims home. Each
    /// evicted line's diffs travel as one batch per destination server
    /// (acks awaited at the next flush fence).
    fn make_room(&mut self) {
        while self.cache.is_full() {
            let (line, victim) = self.cache.pop_victim().expect("full cache has lines");
            self.stats.evictions += 1;
            let diffs = self.cache.diffs_of_evicted(victim);
            self.trace(|| EventKind::Evict { line, dirty_pages: diffs.len() as u32 });
            let mut batches = BTreeMap::new();
            for (page, diff) in diffs {
                self.stage_diff(&mut batches, page, diff);
            }
            self.flush_batches(batches);
        }
    }

    fn maybe_prefetch(&mut self, line: u64) {
        if self.cache.contains_line(line) || self.chan.prefetch_pending_for(line) {
            return;
        }
        let first = PageId(line * self.cache.line_pages() as u64);
        let pages = self.cache.line_pages() as u32;
        let home = self.home_map.home_of_line(line);
        let req = MemRequest::FetchLine { first, pages };
        if self.chan.try_prefetch(home, line, req) {
            self.trace(|| EventKind::PrefetchIssue { page: first.0, pages });
        }
    }

    /// Stage one page diff into the per-server batch map, recording the
    /// per-page accounting (stats, hotspots, trace, pending notice) that is
    /// unchanged by batching.
    fn stage_diff(
        &mut self,
        batches: &mut BTreeMap<u32, UpdateBatch>,
        page: u64,
        diff: samhita_regc::Diff,
    ) {
        let bytes = diff.payload_bytes() as u64;
        self.stats.diff_bytes_flushed += bytes;
        self.stats.hot.record_diff(page, bytes);
        self.trace(|| EventKind::DiffFlush { page, bytes });
        self.pending_pages.insert(page);
        let home = self.home_map.home_of_page(PageId(page));
        batches.entry(home).or_default().push(UpdatePart::Diff { page, diff });
    }

    /// Ship the staged batches: one update message per destination server,
    /// each acknowledged as a single unit (acks awaited at the next flush
    /// fence). Iteration over the `BTreeMap` keeps the send order
    /// deterministic.
    fn flush_batches(&mut self, batches: BTreeMap<u32, UpdateBatch>) {
        for (server, batch) in batches {
            self.trace(|| EventKind::BatchFlush {
                server,
                parts: batch.len() as u32,
                bytes: batch.wire_bytes() as u64,
            });
            self.chan.send_update(server, MsgClass::Update, MemRequest::UpdateBatch { batch });
        }
    }

    /// Flush all local modifications home. Returns the interval to publish:
    /// page-granularity write notices (receivers invalidate) and fine-grain
    /// updates (receivers apply in place) — the consistency half of every
    /// synchronization operation.
    ///
    /// Everything bound for the same memory server travels as one
    /// [`UpdateBatch`] with one ack, so the message count per sync operation
    /// is O(servers), not O(dirty pages).
    fn flush_all(&mut self) -> (Vec<u64>, Vec<FineUpdate>) {
        let flush_t0 = self.chan.now();
        let mut batches: BTreeMap<u32, UpdateBatch> = BTreeMap::new();
        // Ordinary-region pages: twin diffs (multiple-writer protocol).
        for page in self.cache.dirty_pages() {
            if let Some(diff) = self.cache.flush_page(page) {
                if !diff.is_empty() {
                    self.stage_diff(&mut batches, page, diff);
                }
            }
        }
        // Consistency-region stores: fine-grain object updates, shipped to
        // the home *and* carried in the published notice so other caches
        // can apply them without refetching.
        let parts = self.writeset.drain_per_page(self.cfg.page_size as u64);
        let mut updates = Vec::with_capacity(parts.len());
        for (page, offset, bytes) in parts {
            self.stats.fine_bytes_flushed += bytes.len() as u64;
            self.stats.hot.record_fine(page, bytes.len() as u64);
            self.trace(|| EventKind::FineFlush { page, bytes: bytes.len() as u64 });
            let home = self.home_map.home_of_page(PageId(page));
            batches.entry(home).or_default().push(UpdatePart::Fine {
                page,
                offset,
                bytes: bytes.clone(),
            });
            updates.push(FineUpdate { page, offset, bytes });
        }
        self.flush_batches(batches);
        // Fence: all updates must be applied at their homes before the sync
        // operation publishes them.
        self.chan.drain_acks();
        // The whole flush — twin diffing, staging, batched sends, the ack
        // fence — is one measured interval. Lock/barrier waits start only
        // after this returns, so the wait classes stay pairwise disjoint.
        self.waits.flush += (self.chan.now() - flush_t0).as_ns();
        let pages: Vec<u64> = std::mem::take(&mut self.pending_pages).into_iter().collect();
        (pages, updates)
    }

    /// Invalidate cached pages named by other threads' write notices.
    ///
    /// Prefetched data covering a noticed page is as stale as a cached copy:
    /// completed prefetches are dropped and in-flight ones poisoned so their
    /// responses are discarded on arrival (a demand miss will refetch).
    fn apply_notices(&mut self, notices: &[WriteNotice]) {
        for n in notices {
            if n.writer == self.tid {
                continue;
            }
            for &page in &n.pages {
                if self.cache.invalidate_page(page) {
                    self.stats.invalidations += 1;
                    self.stats.hot.record_invalidate(page);
                    self.trace(|| EventKind::Invalidate { page, writer: n.writer });
                }
                self.poison_prefetch(page);
            }
            for u in &n.updates {
                // A page named in the same notice's invalidation list is
                // already stale as a whole; skip its carried bytes.
                if n.pages.contains(&u.page) {
                    continue;
                }
                if self.cache.apply_update(u.page, u.offset as usize, &u.bytes) {
                    self.charge_mem_ops(u.bytes.len());
                }
                // Prefetched copies may predate the home's version of this
                // update (the fetch raced the flush): drop/poison them.
                self.poison_prefetch(u.page);
            }
        }
    }

    /// Drop completed and poison in-flight prefetches covering `page`.
    fn poison_prefetch(&mut self, page: u64) {
        let line = self.cache.line_of(page);
        self.chan.poison_prefetch_line(line);
    }

    /// [`crate::proto::Channel::rpc_mgr`] plus a `MgrRpc` trace event
    /// covering the request→response stall. Used by the non-sync paths
    /// (allocation, creation, signals); lock/barrier paths have dedicated
    /// events.
    fn rpc_mgr_traced(&mut self, req: MgrRequest, class: MsgClass) -> MgrResponse {
        let op = req.label();
        let t0 = self.chan.now();
        let resp = self.chan.rpc_mgr(req, class);
        let wait_ns = (self.chan.now() - t0).as_ns();
        self.waits.mgr += wait_ns;
        self.trace(|| EventKind::MgrRpc { op, wait_ns });
        resp
    }

    /// Final flush + departure. Returns the thread's statistics and its
    /// event buffer (if tracing).
    pub(crate) fn finish(mut self) -> (ThreadStats, Option<TraceBuf>) {
        // The measurement stops here: the final flush and departure RPC are
        // teardown, not application time (a wall-clock benchmark's timer
        // stops before join/teardown too).
        let end_clock = self.chan.now();
        let end_sync = self.sync_time;
        let end_waits = self.waits;
        let (pages, updates) = self.flush_all();
        // Settle in-flight prefetch traffic: receiving each response proves
        // its server already processed the request, so by the time all
        // threads have joined, every server-side request this run issued is
        // accounted for — the run-level busy-time counters read after join
        // would otherwise race straggler prefetches. Stats were snapshotted
        // above; draining is teardown and cannot affect the report.
        self.chan.settle_prefetches();
        if let Some(ls) = self.local_sync.clone() {
            ls.publish_final(self.tid, pages, updates);
            let req = MgrRequest::Exit { pages: Vec::new(), updates: Vec::new() };
            match self.chan.rpc_mgr(req, MsgClass::Control) {
                MgrResponse::Ok => {}
                MgrResponse::Err(e) => panic!("exit failed: {e}"),
                other => panic!("unexpected exit response: {other:?}"),
            }
        } else {
            match self.chan.rpc_mgr(MgrRequest::Exit { pages, updates }, MsgClass::Control) {
                MgrResponse::Ok => {}
                MgrResponse::Err(e) => panic!("exit failed: {e}"),
                other => panic!("unexpected exit response: {other:?}"),
            }
        }
        let mut stats = self.stats;
        stats.retries = self.chan.retries();
        stats.failovers = self.chan.failovers();
        stats.mgr_failovers = self.chan.mgr_failovers();
        stats.total = end_clock.saturating_sub(self.epoch_clock);
        stats.sync = end_sync.saturating_sub(self.epoch_sync);
        stats.compute = stats.total.saturating_sub(stats.sync);
        stats.epoch_ns = self.epoch_clock.as_ns();
        stats.end_ns = end_clock.as_ns();
        stats.fetch_wait_ns = end_waits.fetch - self.epoch_waits.fetch;
        stats.lock_wait_ns = end_waits.lock - self.epoch_waits.lock;
        stats.barrier_wait_ns = end_waits.barrier - self.epoch_waits.barrier;
        stats.mgr_wait_ns = end_waits.mgr - self.epoch_waits.mgr;
        stats.flush_wait_ns = end_waits.flush - self.epoch_waits.flush;
        (stats, self.chan.take_trace())
    }
}
