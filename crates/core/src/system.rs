//! System bring-up, the service event loops, and the host control client.
//!
//! A [`Samhita`] instance spawns one OS thread per memory server and one for
//! the manager, all joined by an SCL fabric built from the configured
//! topology. The host (the code that owns the `Samhita` value) interacts
//! through a control client: it can allocate global memory, create
//! synchronization objects, and initialize / inspect global memory outside
//! of timed runs. [`Samhita::run`] then spawns compute threads, hands each a
//! [`ThreadCtx`], and collects a [`RunReport`].
//!
//! For timing experiments, create a fresh instance per measured run: virtual
//! service clocks (manager, memory servers) advance monotonically across
//! runs of one instance, which is harmless for correctness but perturbs
//! timings of later runs.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;
use samhita_mem::{HomeMap, MemRequest, MemResponse, MemoryServer, PageId, ServerStats};
use samhita_regc::UpdatePart;
use samhita_sched::{Scheduler, TaskRef};
use samhita_scl::{DepthGauge, Endpoint, EndpointId, Fabric, MsgClass, QueueSample, SimTime};
use samhita_trace::{EventKind, RunTrace, SharedTrack, Tracer, TrackId};
use serde::{Deserialize, Serialize};

use crate::config::{RuntimeKind, SamhitaConfig};
use crate::layout::{AddressLayout, Placement};
use crate::localsync::LocalSync;
use crate::manager::{ManagerEngine, ManagerStats};
use crate::msg::{MgrLogOp, MgrLogRecord, MgrRequest, MgrResponse, Msg};
use crate::proto::HostChannel;
use crate::stats::RunReport;
use crate::thread::ThreadCtx;

/// The manager tid reserved for the host control client.
const HOST_TID: u32 = u32::MAX;

/// Bound on host-side queue-occupancy samples retained per service per run.
const QUEUE_SAMPLE_CAP: usize = 65_536;

/// Live mirror of one service loop's queue accounting, published by the loop
/// after each request is handled and *before* its response is sent — the
/// same visibility discipline as the busy mirrors, so once every outstanding
/// request has been answered the host reads race-free, deterministic values.
/// Counters are cumulative (the host subtracts run-start snapshots); the
/// peak and the sample list are per-run (the host clears them at run start,
/// while it holds the baton and the loops are quiescent).
#[derive(Default)]
struct QueueMirror {
    /// Cumulative queue wait (virtual ns) at this service.
    wait_ns: u64,
    /// Per-run peak arrival-sampled queue occupancy.
    peak_depth: u64,
    /// Cumulative sum of arrival-sampled occupancies.
    depth_sum: u64,
    /// Cumulative requests handled.
    requests: u64,
    /// Per-run occupancy samples, bounded by [`QUEUE_SAMPLE_CAP`].
    samples: Vec<QueueSample>,
}

impl QueueMirror {
    /// Publish the loop's latest cumulative counters plus freshly drained
    /// samples (called with the loop's own service stats after each request).
    fn publish(&mut self, wait_ns: u64, depth_sum: u64, requests: u64, new: Vec<QueueSample>) {
        self.wait_ns = wait_ns;
        self.depth_sum = depth_sum;
        self.requests = requests;
        for s in new {
            self.peak_depth = self.peak_depth.max(s.depth);
            if self.samples.len() < QUEUE_SAMPLE_CAP {
                self.samples.push(s);
            }
        }
    }

    /// Run-start snapshot: returns the cumulative counters and clears the
    /// per-run peak and sample list.
    fn begin_run(&mut self) -> (u64, u64, u64) {
        self.peak_depth = 0;
        self.samples.clear();
        (self.wait_ns, self.depth_sum, self.requests)
    }
}

/// Post-shutdown server-side statistics.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct SystemStats {
    /// Manager activity counters.
    pub manager: ManagerStats,
    /// Per-memory-server counters, in server-index order.
    pub servers: Vec<ServerStats>,
    /// The hot-standby manager's counters, when one was configured. Its
    /// `requests` count includes replayed log records (the replica's view of
    /// the workload), not just post-takeover serves.
    pub standby: Option<ManagerStats>,
}

/// Live mirrors of the crash-recovery machinery's counters, published by the
/// primary's and standby's loops under the same before-the-response-leaves
/// discipline as the busy mirrors (so end-of-run host reads are race-free
/// and deterministic). All cumulative except `takeover_ns`, which is the
/// absolute virtual instant of the standby's first post-takeover serve.
#[derive(Default)]
struct RecoveryMirror {
    /// Log records the primary shipped (counting re-ships of the unacked
    /// suffix — repair traffic is part of the cost story).
    log_records_shipped: AtomicU64,
    /// Lock leases the active standby reclaimed.
    lease_reclaims: AtomicU64,
    /// Stale releases (from deposed holders) the standby absorbed.
    stale_releases: AtomicU64,
    /// Requests the standby served after takeover.
    standby_serves: AtomicU64,
    /// Virtual ns of the first post-takeover serve (0 = no takeover).
    takeover_ns: AtomicU64,
}

/// A running Samhita system.
pub struct Samhita {
    cfg: Arc<SamhitaConfig>,
    layout: AddressLayout,
    home_map: HomeMap,
    fabric: Arc<Fabric<Msg>>,
    placement: Placement,
    mgr_ep: EndpointId,
    /// The hot-standby manager's endpoint, when `cfg.manager_standby` is on.
    standby_ep: Option<EndpointId>,
    mem_eps: Vec<EndpointId>,
    local_sync: Option<Arc<LocalSync>>,
    ctl: Mutex<HostChannel>,
    mgr_handle: Option<JoinHandle<ManagerStats>>,
    standby_handle: Option<JoinHandle<ManagerStats>>,
    mem_handles: Vec<JoinHandle<ServerStats>>,
    /// Crash-recovery counter mirrors (see [`RecoveryMirror`]).
    recovery: Arc<RecoveryMirror>,
    tracer: Option<Arc<Tracer>>,
    // Live virtual-busy-time mirrors of the service loops, published after
    // each request is handled and before its response is sent. A thread
    // receiving the response therefore observes a busy value that already
    // includes its request; once every outstanding request has been answered
    // (threads drain their acks and prefetches before exiting), reading
    // these from the host is race-free and deterministic.
    mgr_busy: Arc<AtomicU64>,
    mem_busy: Vec<Arc<AtomicU64>>,
    // Queue-wait / queue-depth mirrors of the service loops (same publish
    // discipline as the busy mirrors) and endpoint backlog gauges, all
    // strictly observational: none of them is read on any timed path.
    mgr_queue: Arc<Mutex<QueueMirror>>,
    mem_queues: Vec<Arc<Mutex<QueueMirror>>>,
    mgr_gauge: Arc<DepthGauge>,
    mem_gauges: Vec<Arc<DepthGauge>>,
    // Deterministic runtime (RuntimeKind::Det): the scheduler serializing
    // every simulated thread, and the host's own task. The host holds the
    // baton whenever it is between runs; `run` suspends it while compute
    // tasks execute and resumes (draining all pending service work) before
    // reading any results.
    sched: Option<Arc<Scheduler>>,
    host_task: Option<TaskRef>,
}

impl Samhita {
    /// Bring up a system: memory servers, manager, control client.
    ///
    /// # Panics
    /// Panics on an invalid configuration (see [`SamhitaConfig::validate`]).
    pub fn new(cfg: SamhitaConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid SamhitaConfig: {e}");
        }
        let cfg = Arc::new(cfg);
        let layout = AddressLayout::new(&cfg);
        let topo = cfg.build_topology();
        let placement = Placement::new(&cfg, &topo);
        let fabric = Fabric::<Msg>::new(topo);
        let home_map = HomeMap::new(cfg.mem_servers, cfg.line_pages);

        // Event tracing is strictly observational: services push into shared
        // tracks after their virtual-time accounting is done, and the fabric
        // observer fires after the cost model has charged the send. Enabling
        // it cannot move any virtual clock.
        let tracer = cfg.tracing.then(|| Arc::new(Tracer::new(cfg.trace_capacity)));
        if let Some(t) = &tracer {
            let track = t.shared_track(TrackId::Fabric);
            fabric.set_observer(Some(Box::new(move |src, dst, now, bytes, class, fault| {
                track.push(
                    now,
                    EventKind::FabricSend {
                        src: src.0 as u64,
                        dst: dst.0 as u64,
                        class,
                        bytes: bytes as u64,
                    },
                );
                if let Some(kind) = fault {
                    track.push(
                        now,
                        EventKind::FaultInjected { src: src.0 as u64, dst: dst.0 as u64, kind },
                    );
                }
            })));
        }

        // Deterministic runtime: one scheduler per system, the host
        // registered as the task initially holding the baton. Every service
        // endpoint is bound to a (parked) scheduler task before its loop
        // spawns, so all receives follow the virtual-time-ordered discipline.
        let sched = (cfg.runtime == RuntimeKind::Det).then(|| Scheduler::new(cfg.sched_seed));
        let host_task = sched.as_ref().map(|s| s.register_running());

        // Host control endpoint, created first so the service loops know it:
        // the host control plane models the experimenter's out-of-band access
        // and is exempt from fault injection (replies to it go reliably).
        let ctl_endpoint = fabric.add_endpoint(placement.manager);
        if let Some(host) = &host_task {
            ctl_endpoint.bind_task(host);
        }
        let ctl_id = ctl_endpoint.id();
        let faults_active = cfg.faults.is_active();
        // Server-side replay protection. Duplicates reach the servers from
        // two sources: a fault plan (dup/drop-forced retransmission), and —
        // even in a fault-free run — the grant-liveness probe that a standby
        // configuration arms on every client (see `ThreadCtx::new`), which
        // re-sends a blocked request's token once per lease period. Replay
        // protection is a prerequisite of probing, so dedup is on whenever
        // either source exists; otherwise a probed-but-deferred acquire,
        // barrier wait, or cond wait would be applied twice.
        let dedup = faults_active || cfg.manager_standby;

        // Memory servers.
        let mut mem_eps = Vec::new();
        let mut mem_handles = Vec::new();
        let mut mem_busy = Vec::new();
        let mut mem_queues = Vec::new();
        let mut mem_gauges = Vec::new();
        for i in 0..cfg.mem_servers {
            let ep = fabric.add_endpoint(placement.mem_servers[i as usize]);
            mem_eps.push(ep.id());
            if let Some(s) = &sched {
                ep.bind_task(&s.register_parked());
            }
            let gauge = Arc::new(DepthGauge::new());
            ep.set_depth_gauge(Arc::clone(&gauge));
            mem_gauges.push(gauge);
            let server = MemoryServer::new(cfg.page_size, cfg.service);
            let track = tracer.as_ref().map(|t| t.shared_track(TrackId::MemServer(i)));
            let busy = Arc::new(AtomicU64::new(0));
            mem_busy.push(Arc::clone(&busy));
            let queue = Arc::new(Mutex::new(QueueMirror::default()));
            mem_queues.push(Arc::clone(&queue));
            mem_handles.push(std::thread::spawn(move || {
                mem_server_loop(ep, server, track, ctl_id, dedup, busy, queue)
            }));
        }

        // Manager and (optional) hot-standby endpoints, created before the
        // fault plan so a configured manager crash can name the primary's
        // endpoint. No protocol traffic flows until the host Register RPC
        // below, so the plan is still installed before any send it could
        // affect.
        let mgr_endpoint = fabric.add_endpoint(placement.manager);
        if let Some(s) = &sched {
            mgr_endpoint.bind_task(&s.register_parked());
        }
        let mgr_gauge = Arc::new(DepthGauge::new());
        mgr_endpoint.set_depth_gauge(Arc::clone(&mgr_gauge));
        let mgr_ep = mgr_endpoint.id();
        let standby_endpoint = cfg.manager_standby.then(|| {
            let ep = fabric.add_endpoint(placement.standby_node());
            if let Some(s) = &sched {
                ep.bind_task(&s.register_parked());
            }
            ep
        });
        let standby_ep = standby_endpoint.as_ref().map(|ep| ep.id());

        // Deterministic fault injection: structural faults (crash windows
        // need the crashed endpoint's id) are resolved here, then the plan
        // is installed before any protocol traffic flows. Installed only for
        // an actually-active plan — a fault-free standby run stays on the
        // unfaulted fabric path.
        if faults_active {
            let f = &cfg.faults;
            let mut plan = samhita_scl::FaultPlan::lossy(
                f.seed,
                f.drop_p,
                f.dup_p,
                f.delay_p,
                SimTime::from_ns(f.delay_ns),
            );
            for p in &f.partitions {
                plan.partitions.push(samhita_scl::Partition {
                    a: samhita_scl::NodeId(p.a),
                    b: samhita_scl::NodeId(p.b),
                    from: SimTime::from_ns(p.from_ns),
                    until: SimTime::from_ns(p.until_ns),
                });
            }
            if let Some((server, at_ns)) = f.crash {
                plan.crashed.push((mem_eps[server as usize], SimTime::from_ns(at_ns)));
            }
            if let Some(at_ns) = f.mgr_crash {
                plan.crashed.push((mgr_ep, SimTime::from_ns(at_ns)));
            }
            fabric.set_fault_plan(plan);
        }

        // Manager (and standby) service loops.
        let recovery = Arc::new(RecoveryMirror::default());
        let engine = ManagerEngine::new(&cfg);
        let mgr_track = tracer.as_ref().map(|t| t.shared_track(TrackId::Manager));
        let mgr_busy = Arc::new(AtomicU64::new(0));
        let mgr_busy_loop = Arc::clone(&mgr_busy);
        let mgr_queue = Arc::new(Mutex::new(QueueMirror::default()));
        let mgr_queue_loop = Arc::clone(&mgr_queue);
        let mgr_recovery = Arc::clone(&recovery);
        let mgr_died_at =
            faults_active.then(|| cfg.faults.mgr_crash.map(SimTime::from_ns)).flatten();
        let mgr_handle = Some(std::thread::spawn(move || {
            manager_loop(
                mgr_endpoint,
                engine,
                mgr_track,
                ctl_id,
                dedup,
                standby_ep,
                mgr_died_at,
                mgr_recovery,
                mgr_busy_loop,
                mgr_queue_loop,
            )
        }));
        let standby_handle = standby_endpoint.map(|ep| {
            // The standby folds the same records through the same engine as
            // the primary, starting from the same initial state — the whole
            // replication argument.
            let engine = ManagerEngine::new(&cfg);
            let track = tracer.as_ref().map(|t| t.shared_track(TrackId::MgrStandby));
            let rec = Arc::clone(&recovery);
            let det = cfg.runtime == RuntimeKind::Det;
            std::thread::spawn(move || standby_loop(ep, engine, track, ctl_id, det, rec))
        });

        // Host control client (registers like a thread, but never syncs).
        let mut ctl = HostChannel::new(ctl_endpoint, standby_ep);
        let resp = ctl.rpc_mgr(
            mgr_ep,
            HOST_TID,
            MgrRequest::Register { observer: true },
            MsgClass::Control,
        );
        assert!(matches!(resp, MgrResponse::Registered { .. }), "host registration failed");

        let local_sync =
            cfg.manager_bypass.then(|| Arc::new(LocalSync::new(cfg.costs.local_sync_ns)));

        Samhita {
            cfg,
            layout,
            home_map,
            fabric,
            placement,
            mgr_ep,
            standby_ep,
            mem_eps,
            local_sync,
            ctl: Mutex::new(ctl),
            mgr_handle,
            standby_handle,
            mem_handles,
            recovery,
            tracer,
            mgr_busy,
            mem_busy,
            mgr_queue,
            mem_queues,
            mgr_gauge,
            mem_gauges,
            sched,
            host_task,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SamhitaConfig {
        &self.cfg
    }

    /// The address-space layout.
    pub fn layout(&self) -> &AddressLayout {
        &self.layout
    }

    /// Cumulative fabric traffic since bring-up, by message class
    /// (per-run deltas are already included in each [`RunReport`]).
    pub fn fabric_stats(&self) -> samhita_scl::FabricStatsSnapshot {
        self.fabric.stats()
    }

    /// Create a mutual-exclusion variable usable from any thread.
    pub fn create_mutex(&self) -> u32 {
        let id = self.ctl_sync_id(MgrRequest::CreateLock);
        if let Some(ls) = &self.local_sync {
            let lid = ls.create_lock();
            assert_eq!(lid, id, "manager and local-sync lock id spaces diverged");
        }
        id
    }

    /// Create a barrier over `parties` threads.
    pub fn create_barrier(&self, parties: u32) -> u32 {
        let id = self.ctl_sync_id(MgrRequest::CreateBarrier { parties });
        if let Some(ls) = &self.local_sync {
            let bid = ls.create_barrier(parties);
            assert_eq!(bid, id, "manager and local-sync barrier id spaces diverged");
        }
        id
    }

    /// Create a condition variable.
    pub fn create_cond(&self) -> u32 {
        self.ctl_sync_id(MgrRequest::CreateCond)
    }

    fn ctl_sync_id(&self, req: MgrRequest) -> u32 {
        let mut ctl = self.ctl.lock();
        match ctl.rpc_mgr(self.mgr_ep, HOST_TID, req, MsgClass::Control) {
            MgrResponse::SyncId(id) => id,
            other => panic!("unexpected create response: {other:?}"),
        }
    }

    /// Allocate `size` bytes of global memory from the host (shared zone or
    /// striped region by the configured threshold; the host has no arena).
    pub fn alloc_global(&self, size: u64) -> u64 {
        let req = if size >= self.cfg.large_threshold {
            MgrRequest::AllocStriped { size }
        } else {
            MgrRequest::AllocShared { size, align: 8 }
        };
        let mut ctl = self.ctl.lock();
        match ctl.rpc_mgr(self.mgr_ep, HOST_TID, req, MsgClass::Control) {
            MgrResponse::Addr(a) => a,
            MgrResponse::Err(e) => panic!("host allocation failed: {e}"),
            other => panic!("unexpected allocation response: {other:?}"),
        }
    }

    /// Free a host allocation.
    pub fn free_global(&self, addr: u64) {
        let mut ctl = self.ctl.lock();
        match ctl.rpc_mgr(self.mgr_ep, HOST_TID, MgrRequest::Free { addr }, MsgClass::Control) {
            MgrResponse::Ok => {}
            MgrResponse::Err(e) => panic!("host free failed: {e}"),
            other => panic!("unexpected free response: {other:?}"),
        }
    }

    /// Initialize global memory from the host (outside timed runs). With
    /// replication configured, every write also goes through to the replica
    /// as a shadow copy, so replicas mirror the primaries from time zero.
    pub fn write_global(&self, addr: u64, data: &[u8]) {
        let ps = self.cfg.page_size as u64;
        let mut ctl = self.ctl.lock();
        let mut cursor = 0usize;
        while cursor < data.len() {
            let at = addr + cursor as u64;
            let page = at / ps;
            let offset = (at % ps) as u32;
            let take = ((ps - at % ps) as usize).min(data.len() - cursor);
            let server = self.home_map.home_of_page(PageId(page));
            let req = MemRequest::ApplyFine {
                page: PageId(page),
                offset,
                bytes: data[cursor..cursor + take].to_vec(),
            };
            if let Some(r) = self.home_map.replica_of_server(server, self.cfg.replica_offset) {
                let resp = ctl.rpc_mem(self.mem_eps[r as usize], true, req.clone());
                assert!(matches!(resp, MemResponse::Ack { .. }));
            }
            let resp = ctl.rpc_mem(self.mem_eps[server as usize], false, req);
            assert!(matches!(resp, MemResponse::Ack { .. }));
            cursor += take;
        }
    }

    /// The server the host reads a page's home data from: the primary,
    /// unless the fault plan crashes it — the crashed store misses every
    /// update sent after the crash instant, so the host reads the
    /// write-through replica instead (validation guarantees one exists).
    fn host_read_server(&self, home: u32) -> u32 {
        match self.cfg.faults.crash {
            Some((dead, _)) if dead == home => self
                .home_map
                .replica_of_server(home, self.cfg.replica_offset)
                .expect("a crashed server always has a replica (config validation)"),
            _ => home,
        }
    }

    /// Read global memory from the host (outside timed runs).
    pub fn read_global(&self, addr: u64, out: &mut [u8]) {
        let ps = self.cfg.page_size as u64;
        let mut ctl = self.ctl.lock();
        let mut cursor = 0usize;
        while cursor < out.len() {
            let at = addr + cursor as u64;
            let page = at / ps;
            let offset = (at % ps) as usize;
            let take = ((ps - at % ps) as usize).min(out.len() - cursor);
            let server = self.host_read_server(self.home_map.home_of_page(PageId(page)));
            let resp = ctl.rpc_mem(
                self.mem_eps[server as usize],
                false,
                MemRequest::FetchPage { page: PageId(page) },
            );
            match resp {
                MemResponse::Page { data, .. } => {
                    out[cursor..cursor + take].copy_from_slice(&data[offset..offset + take]);
                }
                other => panic!("unexpected page response: {other:?}"),
            }
            cursor += take;
        }
    }

    /// Convenience: write a slice of `f64`s.
    pub fn write_f64s(&self, addr: u64, values: &[f64]) {
        let mut bytes = Vec::with_capacity(values.len() * 8);
        for v in values {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.write_global(addr, &bytes);
    }

    /// Convenience: read a slice of `f64`s.
    pub fn read_f64s(&self, addr: u64, n: usize) -> Vec<f64> {
        let mut bytes = vec![0u8; n * 8];
        self.read_global(addr, &mut bytes);
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }

    /// Spawn `nthreads` compute threads running `body` and collect their
    /// statistics. Thread ids are `0..nthreads`; placement follows the
    /// configured topology (fill compute nodes core by core).
    pub fn run<F>(&self, nthreads: u32, body: F) -> RunReport
    where
        F: Fn(&mut ThreadCtx) + Send + Sync,
    {
        assert!(nthreads >= 1, "need at least one compute thread");
        assert!(
            nthreads <= self.cfg.max_threads,
            "nthreads {nthreads} exceeds provisioned max_threads {}",
            self.cfg.max_threads
        );
        // Host clock, read exactly twice (here and at return) and stored
        // only in the Debug-redacted `host_wall_ns`: wall time is reported,
        // never consulted, so it cannot perturb virtual execution.
        let host_start = std::time::Instant::now();
        let fabric_before = self.fabric.stats();
        let mgr_busy_before = self.mgr_busy.load(Ordering::Relaxed);
        let mem_busy_before: Vec<u64> =
            self.mem_busy.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        // Queue-accounting run-start snapshots. The host holds the baton (or,
        // under the OS runtime, the fabric is quiescent between runs), so the
        // mirrors are stable: counters are snapshotted for end-of-run deltas,
        // peaks and sample lists reset so they come out per-run exact.
        let mgr_queue_before = self.mgr_queue.lock().begin_run();
        let mem_queue_before: Vec<(u64, u64, u64)> =
            self.mem_queues.iter().map(|q| q.lock().begin_run()).collect();
        self.mgr_gauge.reset();
        for g in &self.mem_gauges {
            g.reset();
        }
        let sched_grants_before = self.sched.as_ref().map_or(0, |s| s.grants());
        let local_before = self.local_sync.as_ref().map(|ls| ls.stats()).unwrap_or_default();
        let recovery_before = (
            self.recovery.log_records_shipped.load(Ordering::Relaxed),
            self.recovery.lease_reclaims.load(Ordering::Relaxed),
            self.recovery.stale_releases.load(Ordering::Relaxed),
            self.recovery.standby_serves.load(Ordering::Relaxed),
        );
        let endpoints: Vec<Endpoint<Msg>> = (0..nthreads)
            .map(|t| self.fabric.add_endpoint(self.placement.compute_node(t)))
            .collect();
        // Deterministic runtime: one scheduler task per compute thread, all
        // ready at virtual time zero (the seeded tie-break orders their first
        // steps), each bound to its endpoint before any traffic can target
        // it. Registration happens host-side, in tid order, so task ids (the
        // final tie-break key) are reproducible.
        let det_tasks: Option<Vec<TaskRef>> = self.sched.as_ref().map(|sched| {
            endpoints
                .iter()
                .map(|ep| {
                    let task = sched.register_ready(0);
                    ep.bind_task(&task);
                    task
                })
                .collect()
        });
        let body = &body;
        let stats = std::thread::scope(|s| {
            let handles: Vec<_> = endpoints
                .into_iter()
                .enumerate()
                .map(|(t, ep)| {
                    let cfg = Arc::clone(&self.cfg);
                    let mem_eps = self.mem_eps.clone();
                    let local_sync = self.local_sync.clone();
                    let mgr_ep = self.mgr_ep;
                    let standby_ep = self.standby_ep;
                    let tracer = self.tracer.clone();
                    let task = det_tasks.as_ref().map(|ts| ts[t].clone());
                    s.spawn(move || {
                        if let Some(task) = &task {
                            task.start();
                        }
                        // Catch panics so a failing body still retires its
                        // scheduler task: otherwise sibling tasks blocked on
                        // the baton would hang forever instead of unwinding.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut ctx = ThreadCtx::new(
                                t as u32, nthreads, cfg, ep, mgr_ep, standby_ep, mem_eps,
                                local_sync,
                            );
                            if let Some(tr) = &tracer {
                                ctx.attach_trace(tr.buf(TrackId::Thread(t as u32)));
                            }
                            body(&mut ctx);
                            ctx.finish()
                        }));
                        if let Some(task) = &task {
                            task.exit();
                        }
                        match result {
                            Ok((stats, buf)) => {
                                if let (Some(tr), Some(buf)) = (&tracer, buf) {
                                    tr.submit(buf);
                                }
                                stats
                            }
                            Err(payload) => std::panic::resume_unwind(payload),
                        }
                    })
                })
                .collect();
            // Hand the baton to the compute tasks for the whole run; the
            // host does not touch the fabric until it resumes below.
            if let Some(host) = &self.host_task {
                host.suspend();
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(stats) => stats,
                    // Re-raise with the original payload so the caller sees
                    // the real panic message, not a generic join error.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect::<Vec<_>>()
        });
        // Re-acquire the baton, draining every pending service event (oneway
        // releases, late acks) so the busy mirrors below are final.
        if let Some(host) = &self.host_task {
            host.resume();
        }
        let mut report = RunReport::new(stats, self.fabric.stats().delta(&fabric_before));
        // Every thread settled its outstanding traffic before joining
        // (synchronous Exit RPC to the manager, ack/prefetch drains to the
        // servers), so the busy mirrors are final for this run.
        report.mgr_busy_ns = self.mgr_busy.load(Ordering::Relaxed) - mgr_busy_before;
        report.server_busy_ns = self
            .mem_busy
            .iter()
            .zip(&mem_busy_before)
            .map(|(b, &before)| b.load(Ordering::Relaxed) - before)
            .collect();
        // Queue accounting: same finality argument as the busy mirrors —
        // every request this run issued has been answered, and each answer
        // was preceded by a mirror publish.
        {
            let mut q = self.mgr_queue.lock();
            report.mgr_queue_wait_ns = q.wait_ns - mgr_queue_before.0;
            report.mgr_queue_depth_sum = q.depth_sum - mgr_queue_before.1;
            report.mgr_requests = q.requests - mgr_queue_before.2;
            report.mgr_peak_queue_depth = q.peak_depth;
            report.mgr_queue_samples = std::mem::take(&mut q.samples);
        }
        for (q, &(wait0, sum0, _req0)) in self.mem_queues.iter().zip(&mem_queue_before) {
            let mut q = q.lock();
            report.server_queue_wait_ns.push(q.wait_ns - wait0);
            report.server_queue_depth_sum.push(q.depth_sum - sum0);
            report.server_peak_queue_depth.push(q.peak_depth);
            report.server_queue_samples.push(std::mem::take(&mut q.samples));
        }
        report.mgr_endpoint_backlog_peak = self.mgr_gauge.peak();
        report.server_endpoint_backlog_peak = self.mem_gauges.iter().map(|g| g.peak()).collect();
        report.sched_grants = self.sched.as_ref().map_or(0, |s| s.grants()) - sched_grants_before;
        if let Some(ls) = &self.local_sync {
            let st = ls.stats();
            report.local_contended_acquires =
                st.contended_acquires - local_before.contended_acquires;
            report.local_handoff_wait_ns = st.handoff_wait_ns - local_before.handoff_wait_ns;
        }
        // Recovery counters: cumulative mirrors published under the same
        // before-the-response-leaves discipline as the busy mirrors, so the
        // deltas are final once every thread has settled its traffic.
        report.log_records_shipped =
            self.recovery.log_records_shipped.load(Ordering::Relaxed) - recovery_before.0;
        report.lease_reclaims =
            self.recovery.lease_reclaims.load(Ordering::Relaxed) - recovery_before.1;
        report.stale_releases =
            self.recovery.stale_releases.load(Ordering::Relaxed) - recovery_before.2;
        report.standby_serves =
            self.recovery.standby_serves.load(Ordering::Relaxed) - recovery_before.3;
        report.takeover_ns = self.recovery.takeover_ns.load(Ordering::Relaxed);
        report.layout = Some(self.layout);
        report.host_wall_ns = crate::stats::HostNanos::new(
            u64::try_from(host_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        report
    }

    /// Drain the event trace accumulated so far (threads that finished a
    /// run, plus manager / memory-server / fabric activity). Returns `None`
    /// unless the configuration enabled [`SamhitaConfig::tracing`]. Each
    /// call starts a fresh collection window.
    pub fn take_trace(&self) -> Option<RunTrace> {
        self.tracer.as_ref().map(|t| t.take())
    }

    /// Tear the system down and return server-side statistics.
    pub fn shutdown(mut self) -> SystemStats {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> SystemStats {
        let mut stats = SystemStats::default();
        // If a compute body panicked mid-run the host may still be
        // suspended; re-acquire the baton first (idempotent when already
        // running) so the shutdown sends happen from a Running task.
        if let Some(host) = &self.host_task {
            host.resume();
        }
        {
            // Reliable sends: a crashed (or partitioned) server must still
            // receive its shutdown message, or the join below would hang.
            let ctl = self.ctl.lock();
            for &ep in &self.mem_eps {
                ctl.send_shutdown(ep);
            }
            ctl.send_shutdown(self.mgr_ep);
            if let Some(sb) = self.standby_ep {
                ctl.send_shutdown(sb);
            }
        }
        // Hand the baton over so the service tasks can run their loops to
        // the shutdown message and retire; take it back once they joined.
        if let Some(host) = &self.host_task {
            host.suspend();
        }
        for h in self.mem_handles.drain(..) {
            stats.servers.push(h.join().expect("memory server panicked"));
        }
        if let Some(h) = self.mgr_handle.take() {
            stats.manager = h.join().expect("manager panicked");
        }
        if let Some(h) = self.standby_handle.take() {
            stats.standby = Some(h.join().expect("standby manager panicked"));
        }
        if let Some(host) = &self.host_task {
            host.resume();
        }
        stats
    }
}

impl Drop for Samhita {
    fn drop(&mut self) {
        if self.mgr_handle.is_some() {
            let _ = self.shutdown_inner();
        }
    }
}

/// Summarize a memory request as trace events (stamped later, at the
/// server's service-completion time). A batched update expands into one
/// event per component part, so byte-conservation checks over the server
/// track see exactly the same `ApplyDiff`/`ApplyFine` totals whether or not
/// the flushes travelled coalesced.
fn mem_events(req: &MemRequest) -> Vec<EventKind> {
    match req {
        MemRequest::FetchLine { first, pages } => {
            vec![EventKind::ServeFetch { page: first.0, pages: *pages }]
        }
        MemRequest::FetchPage { page } => vec![EventKind::ServeFetch { page: page.0, pages: 1 }],
        MemRequest::ApplyDiff { page, diff } => {
            vec![EventKind::ApplyDiff { page: page.0, bytes: diff.payload_bytes() as u64 }]
        }
        MemRequest::ApplyFine { page, bytes, .. } => {
            vec![EventKind::ApplyFine { page: page.0, bytes: bytes.len() as u64 }]
        }
        MemRequest::WritePage { page, .. } => vec![EventKind::ServeWrite { page: page.0 }],
        MemRequest::UpdateBatch { batch } => batch
            .parts()
            .map(|part| match part {
                UpdatePart::Diff { page, diff } => {
                    EventKind::ApplyDiff { page: *page, bytes: diff.payload_bytes() as u64 }
                }
                UpdatePart::Fine { page, bytes, .. } => {
                    EventKind::ApplyFine { page: *page, bytes: bytes.len() as u64 }
                }
            })
            .collect(),
    }
}

fn mem_resp_class(resp: &MemResponse) -> MsgClass {
    match resp {
        MemResponse::Line { .. } | MemResponse::Page { .. } => MsgClass::Data,
        MemResponse::Ack { .. } | MemResponse::BatchAck { .. } => MsgClass::Update,
    }
}

/// Requests kept in a server's idempotency cache. Retransmissions arrive
/// almost immediately after their original (the client blocks on the lost
/// copy's arrival), so a small window suffices; it only bounds memory.
const DEDUP_WINDOW: usize = 512;

fn mem_server_loop(
    ep: Endpoint<Msg>,
    mut server: MemoryServer,
    track: Option<SharedTrack>,
    ctl: EndpointId,
    dedup: bool,
    busy: Arc<AtomicU64>,
    queue: Arc<Mutex<QueueMirror>>,
) -> ServerStats {
    // Idempotency cache: (requester, token) → completed response. A replayed
    // request is re-acknowledged without re-applying, re-charging the service
    // resource, or re-tracing — exactly-once application under at-least-once
    // delivery.
    let mut seen: HashMap<(EndpointId, u64), (SimTime, MemResponse)> = HashMap::new();
    let mut order: VecDeque<(EndpointId, u64)> = VecDeque::new();
    while let Ok(env) = ep.recv() {
        match env.msg {
            Msg::MemReq { token, shadow, req } => {
                // A lost request never reached this server; discard it.
                if env.lost {
                    continue;
                }
                if let Some((done, resp)) = seen.get(&(env.src, token)) {
                    let at = (*done).max(env.deliver_at);
                    let wire = resp.wire_bytes();
                    let class = mem_resp_class(resp);
                    let msg = Msg::MemResp { token, resp: resp.clone() };
                    let _ = if env.src == ctl {
                        ep.send_reliable(env.src, at, wire, class, msg)
                    } else {
                        ep.send(env.src, at, wire, class, msg)
                    };
                    continue;
                }
                // Shadow (replica write-through) copies are applied and
                // counted, but kept off the event trace so replication does
                // not disturb the observable protocol timeline.
                let events = if shadow { None } else { track.as_ref().map(|_| mem_events(&req)) };
                let (resp, done) = server.handle(req, env.deliver_at);
                // Publish virtual busy time before the response leaves: the
                // requester's receipt then proves the new value is visible.
                // The queue mirror rides the same window, so it inherits the
                // same determinism argument.
                let st = server.stats();
                busy.store(st.busy_ns, Ordering::Relaxed);
                let (new_samples, _dropped) = server.take_queue_samples();
                queue.lock().publish(
                    st.queue_wait_ns,
                    st.queue_depth_sum,
                    st.requests,
                    new_samples,
                );
                if let (Some(track), Some(events)) = (&track, events) {
                    for event in events {
                        track.push(done, event);
                    }
                }
                if dedup {
                    seen.insert((env.src, token), (done, resp.clone()));
                    order.push_back((env.src, token));
                    if order.len() > DEDUP_WINDOW {
                        if let Some(old) = order.pop_front() {
                            seen.remove(&old);
                        }
                    }
                }
                let wire = resp.wire_bytes();
                let class = mem_resp_class(&resp);
                let msg = Msg::MemResp { token, resp };
                // A send failure means the requester is gone; nothing to do.
                let _ = if env.src == ctl {
                    ep.send_reliable(env.src, done, wire, class, msg)
                } else {
                    ep.send(env.src, done, wire, class, msg)
                };
            }
            Msg::Shutdown => break,
            other => panic!("memory server received unexpected message: {other:?}"),
        }
    }
    // Retire this loop's scheduler task (no-op on unbound endpoints) so the
    // deterministic scheduler never waits on a loop that has returned.
    ep.exit_task();
    server.stats()
}

#[allow(clippy::too_many_arguments)]
fn manager_loop(
    ep: Endpoint<Msg>,
    mut engine: ManagerEngine,
    track: Option<SharedTrack>,
    ctl: EndpointId,
    dedup: bool,
    standby: Option<EndpointId>,
    died_at: Option<SimTime>,
    recovery: Arc<RecoveryMirror>,
    busy: Arc<AtomicU64>,
    queue: Arc<Mutex<QueueMirror>>,
) -> ManagerStats {
    // Replies to the host control endpoint are normally fault-exempt (the
    // host models out-of-band experimenter access), but no amount of
    // out-of-band reliability revives a dead process: once a configured
    // manager crash has passed, ctl replies go through the faulted path so
    // the crash fate drops them like everything else — otherwise a host
    // setup RPC could be answered while its log record dies with the ship,
    // leaving the standby permanently ignorant of state the host observed.
    let ctl_reliable = |at: SimTime| died_at.is_none_or(|d| at < d);
    // Replay protection. Each client's tokens arrive monotonically (its
    // requests are serialized and the fabric preserves per-sender order), so
    // a high-water mark per source detects retransmissions, and the last
    // response issued *to* each endpoint answers a retransmission whose
    // reply was lost. A retransmission of a still-queued request (a blocked
    // acquire or condition wait) is simply ignored: the original will be
    // answered when granted.
    let mut hwm: HashMap<EndpointId, u64> = HashMap::new();
    let mut done: HashMap<EndpointId, (u64, SimTime, MgrResponse)> = HashMap::new();
    // Write-ahead log records the standby has not yet acknowledged. Every
    // serve ships the whole suffix, so a batch lost on the wire (or to the
    // crash itself) is repaired by the next serve's re-ship; the standby
    // deduplicates replays by sequence number.
    let mut unacked: Vec<MgrLogRecord> = Vec::new();
    let mut shipped: u64 = 0;
    while let Ok(env) = ep.recv() {
        match env.msg {
            Msg::MgrReq { token, tid, req } => {
                // A lost request never reached the manager; discard it.
                if env.lost {
                    continue;
                }
                if dedup {
                    let seen = hwm.get(&env.src).copied().unwrap_or(0);
                    if token < seen {
                        continue;
                    }
                    if token == seen {
                        if let Some((t, at, resp)) = done.get(&env.src) {
                            if *t == token {
                                let at = (*at).max(env.deliver_at);
                                let wire = resp.wire_bytes();
                                let msg = Msg::MgrResp { token, resp: resp.clone() };
                                let _ = if env.src == ctl && ctl_reliable(at) {
                                    ep.send_reliable(env.src, at, wire, MsgClass::Sync, msg)
                                } else {
                                    ep.send(env.src, at, wire, MsgClass::Sync, msg)
                                };
                            }
                        }
                        continue;
                    }
                    hwm.insert(env.src, token);
                }
                let op = track.as_ref().map(|_| req.label());
                let rec = engine.record(env.src, tid, token, req, env.deliver_at);
                if standby.is_some() {
                    unacked.push(rec.clone());
                }
                let outgoing = engine.apply(rec);
                // Publish virtual busy time before any response leaves (see
                // mem_server_loop for the visibility argument). The queue
                // mirror rides the same window.
                let st = engine.stats();
                busy.store(st.busy_ns, Ordering::Relaxed);
                let (new_samples, _dropped) = engine.take_queue_samples();
                queue.lock().publish(
                    st.queue_wait_ns,
                    st.queue_depth_sum,
                    st.requests,
                    new_samples,
                );
                for out in outgoing {
                    let wire = out.resp.wire_bytes();
                    if dedup {
                        done.insert(out.dst, (out.token, out.at, out.resp.clone()));
                    }
                    let msg = Msg::MgrResp { token: out.token, resp: out.resp };
                    let _ = if out.dst == ctl && ctl_reliable(out.at) {
                        ep.send_reliable(out.dst, out.at, wire, MsgClass::Sync, msg)
                    } else {
                        ep.send(out.dst, out.at, wire, MsgClass::Sync, msg)
                    };
                }
                if let (Some(track), Some(op)) = (&track, op) {
                    track.push(engine.last_done(), EventKind::MgrServe { op, tid });
                }
                if let Some(sb) = standby {
                    // Write-ahead shipping: responses and the log batch leave
                    // at the same virtual instant (`last_done`), and a
                    // manager crash is a structural fault keyed on that
                    // instant — so the crash can never deliver a response
                    // whose record it dropped. Only a *random* loss can
                    // separate them, and the next serve's re-ship repairs it
                    // (with lock leases covering the tail case of a crash
                    // right after).
                    shipped += unacked.len() as u64;
                    recovery.log_records_shipped.store(shipped, Ordering::Relaxed);
                    let msg = Msg::MgrLog { records: unacked.clone() };
                    let wire = msg.wire_bytes();
                    let _ = ep.send(sb, engine.last_done(), wire, MsgClass::Control, msg);
                }
            }
            Msg::MgrLogAck { upto } => {
                // A lost ack is simply ignored: the suffix stays unacked and
                // the next serve re-ships it.
                if !env.lost {
                    unacked.retain(|r| r.seq > upto);
                }
            }
            Msg::Shutdown => break,
            other => panic!("manager received unexpected message: {other:?}"),
        }
    }
    ep.exit_task();
    let mut stats = engine.stats();
    stats.log_records_shipped = shipped;
    stats
}

/// The hot-standby manager's event loop.
///
/// **Before takeover** it is a pure log sink: every non-lost [`Msg::MgrLog`]
/// batch is folded into its own engine (skipping already-applied sequence
/// numbers — batches always restart at the first unacknowledged record), the
/// primary's replay-protection state is reconstructed from the records'
/// `(src, token)` pairs and the fold's outputs, and an ack is returned.
/// Nothing is sent to clients and nothing is traced: replay is bookkeeping,
/// not service.
///
/// **Takeover** is the first non-lost client request: a client only re-homes
/// after exhausting its retry budget against the primary, so the primary is
/// dead. From then on the standby serves exactly like the primary — same
/// record→apply path, same replay-cache discipline (a request the primary
/// already answered is re-answered from the reconstructed cache, never
/// re-applied), traced as `MgrServe` on its own track. Between requests it
/// sleeps only until the earliest lock-lease expiry; waking at that virtual
/// deadline with no message, it folds a `ReclaimExpired` sweep into the log
/// so a lock whose holder (or whose release) died with the primary is handed
/// to the next waiter instead of blocking the run forever. The sweep is
/// deterministic-runtime only (`det`): leases expire in virtual time, and
/// only a scheduler-bound endpoint can observe "virtual time reached the
/// expiry" — see the `deadline` computation below.
fn standby_loop(
    ep: Endpoint<Msg>,
    mut engine: ManagerEngine,
    track: Option<SharedTrack>,
    ctl: EndpointId,
    det: bool,
    recovery: Arc<RecoveryMirror>,
) -> ManagerStats {
    let mut hwm: HashMap<EndpointId, u64> = HashMap::new();
    let mut done: HashMap<EndpointId, (u64, SimTime, MgrResponse)> = HashMap::new();
    let mut active = false;
    let mut serves: u64 = 0;
    loop {
        // An active standby sleeps only until the earliest lease expiry:
        // reaching the deadline with no message triggers a reclaim sweep.
        // Deterministic runtime only: on an unbound (OS-runtime) endpoint
        // `recv_deadline` degrades to a ~1ms wall-clock poll whose `Ok(None)`
        // means "nothing yet", not "virtual time reached the expiry" —
        // sweeping there would depose live holders on wall-clock cadence.
        // Mirrors the probe gating in `ThreadCtx::new`.
        let deadline = if active && det { engine.next_lease_expiry() } else { None };
        let env = match deadline {
            Some(at) => match ep.recv_deadline(at) {
                Ok(Some(env)) => env,
                Ok(None) => {
                    let outs = engine.apply(engine.record_reclaim(at));
                    let st = engine.stats();
                    recovery.lease_reclaims.store(st.lease_reclaims, Ordering::Relaxed);
                    recovery.stale_releases.store(st.stale_releases, Ordering::Relaxed);
                    if let Some(track) = &track {
                        for (lock, holder) in engine.take_reclaims() {
                            track.push(at, EventKind::LeaseReclaim { lock, holder });
                        }
                    }
                    // Reclaimed locks hand to their next queued waiter: the
                    // grants answer those waiters' original acquire tokens.
                    for out in outs {
                        done.insert(out.dst, (out.token, out.at, out.resp.clone()));
                        let wire = out.resp.wire_bytes();
                        let msg = Msg::MgrResp { token: out.token, resp: out.resp };
                        let _ = if out.dst == ctl {
                            ep.send_reliable(out.dst, out.at, wire, MsgClass::Sync, msg)
                        } else {
                            ep.send(out.dst, out.at, wire, MsgClass::Sync, msg)
                        };
                    }
                    continue;
                }
                Err(_) => break,
            },
            None => match ep.recv() {
                Ok(env) => env,
                Err(_) => break,
            },
        };
        match env.msg {
            Msg::MgrLog { records } => {
                // A lost batch never reached the standby; the primary's next
                // serve re-ships the suffix.
                if env.lost {
                    continue;
                }
                for rec in records {
                    if rec.seq <= engine.applied_seq() {
                        continue; // already folded (batches re-ship the suffix)
                    }
                    if let MgrLogOp::Request { src, token, .. } = &rec.op {
                        let seen = hwm.entry(*src).or_insert(0);
                        *seen = (*seen).max(*token);
                    }
                    // Replay: fold the record, filing its outputs in the
                    // reconstructed replay cache WITHOUT sending them — the
                    // primary already answered these requests.
                    for out in engine.apply(rec) {
                        done.insert(out.dst, (out.token, out.at, out.resp));
                    }
                }
                let ack = Msg::MgrLogAck { upto: engine.applied_seq() };
                let wire = ack.wire_bytes();
                let _ = ep.send(env.src, env.deliver_at, wire, MsgClass::Control, ack);
            }
            Msg::MgrReq { token, tid, req } => {
                // A lost request never reached the standby; discard it.
                if env.lost {
                    continue;
                }
                if !active {
                    active = true;
                    recovery.takeover_ns.store(env.deliver_at.as_ns(), Ordering::Relaxed);
                }
                // Replay protection, seeded by the log replay above: a
                // request the primary already served is re-answered from the
                // reconstructed cache, never re-applied.
                let seen = hwm.get(&env.src).copied().unwrap_or(0);
                if token < seen {
                    continue;
                }
                if token == seen {
                    if let Some((t, at, resp)) = done.get(&env.src) {
                        if *t == token {
                            let at = (*at).max(env.deliver_at);
                            let wire = resp.wire_bytes();
                            let msg = Msg::MgrResp { token, resp: resp.clone() };
                            let _ = if env.src == ctl {
                                ep.send_reliable(env.src, at, wire, MsgClass::Sync, msg)
                            } else {
                                ep.send(env.src, at, wire, MsgClass::Sync, msg)
                            };
                        }
                    }
                    continue;
                }
                hwm.insert(env.src, token);
                let op = track.as_ref().map(|_| req.label());
                let outgoing =
                    engine.apply(engine.record(env.src, tid, token, req, env.deliver_at));
                serves += 1;
                // Publish before any response leaves (the busy-mirror
                // visibility discipline, applied to the recovery counters).
                let st = engine.stats();
                recovery.standby_serves.store(serves, Ordering::Relaxed);
                recovery.lease_reclaims.store(st.lease_reclaims, Ordering::Relaxed);
                recovery.stale_releases.store(st.stale_releases, Ordering::Relaxed);
                for out in outgoing {
                    let wire = out.resp.wire_bytes();
                    done.insert(out.dst, (out.token, out.at, out.resp.clone()));
                    let msg = Msg::MgrResp { token: out.token, resp: out.resp };
                    let _ = if out.dst == ctl {
                        ep.send_reliable(out.dst, out.at, wire, MsgClass::Sync, msg)
                    } else {
                        ep.send(out.dst, out.at, wire, MsgClass::Sync, msg)
                    };
                }
                if let (Some(track), Some(op)) = (&track, op) {
                    track.push(engine.last_done(), EventKind::MgrServe { op, tid });
                }
            }
            Msg::Shutdown => break,
            other => panic!("standby manager received unexpected message: {other:?}"),
        }
    }
    ep.exit_task();
    engine.stats()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> Samhita {
        Samhita::new(SamhitaConfig::small_for_tests())
    }

    #[test]
    fn bring_up_and_shutdown() {
        let s = system();
        let stats = s.shutdown();
        assert_eq!(stats.servers.len(), 1);
    }

    #[test]
    fn host_memory_roundtrip() {
        let s = system();
        let addr = s.alloc_global(1024);
        let values: Vec<f64> = (0..128).map(|i| i as f64 * 0.5).collect();
        s.write_f64s(addr, &values);
        assert_eq!(s.read_f64s(addr, 128), values);
        s.free_global(addr);
    }

    #[test]
    fn host_write_spanning_pages() {
        let s = system(); // 256-byte pages
        let addr = s.alloc_global(4096);
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        s.write_global(addr + 100, &data);
        let mut back = vec![0u8; 1000];
        s.read_global(addr + 100, &mut back);
        assert_eq!(back, data);
    }

    #[test]
    fn single_thread_run_reads_its_own_writes() {
        let s = system();
        let addr = s.alloc_global(2048);
        let report = s.run(1, |ctx| {
            for i in 0..256 {
                ctx.write_f64(addr + i * 8, i as f64);
            }
            for i in 0..256 {
                assert_eq!(ctx.read_f64(addr + i * 8), i as f64);
            }
        });
        assert_eq!(report.threads.len(), 1);
        assert!(report.makespan > SimTime::ZERO);
        // The final flush must have landed at the home.
        let back = s.read_f64s(addr, 256);
        assert_eq!(back[255], 255.0);
    }

    #[test]
    fn fabric_stats_classify_traffic() {
        use samhita_scl::MsgClass;
        let s = system();
        let addr = s.alloc_global(2048);
        let lock = s.create_mutex();
        s.run(2, |ctx| {
            ctx.write_u64(addr + ctx.tid() as u64 * 8, 1);
            ctx.lock(lock);
            ctx.unlock(lock);
        });
        let snap = s.fabric_stats();
        assert!(snap.msgs(MsgClass::Data) > 0, "line fetches are data traffic");
        assert!(snap.msgs(MsgClass::Sync) > 0, "lock RPCs are sync traffic");
        assert!(snap.msgs(MsgClass::Update) > 0, "flushes are update traffic");
        assert!(snap.msgs(MsgClass::Control) > 0, "registration/alloc are control traffic");
        assert!(snap.total_bytes() > snap.bytes(MsgClass::Sync));
    }

    #[test]
    fn two_runs_on_one_system() {
        let s = system();
        let addr = s.alloc_global(64);
        s.run(1, |ctx| ctx.write_u64(addr, 41));
        s.run(2, |ctx| {
            if ctx.tid() == 0 {
                let v = ctx.read_u64(addr);
                assert_eq!(v, 41);
            }
        });
    }

    #[test]
    #[should_panic(expected = "exceeds provisioned max_threads")]
    fn run_rejects_too_many_threads() {
        let s = system();
        s.run(1000, |_| {});
    }

    #[test]
    fn utilization_accounting_is_deterministic() {
        // Single-threaded on purpose: P=1 is the configuration whose virtual
        // timeline is bit-reproducible (multi-thread lock arbitration depends
        // on OS-level arrival order), so it is where exact equality holds.
        let run = || {
            let s = system();
            let addr = s.alloc_global(2048);
            let lock = s.create_mutex();
            s.run(1, |ctx| {
                for i in 0..128u64 {
                    ctx.write_u64(addr + i * 8, i);
                }
                ctx.lock(lock);
                ctx.unlock(lock);
            })
        };
        let a = run();
        let b = run();
        assert!(a.mgr_busy_ns > 0, "locks and registration must occupy the manager");
        assert_eq!(a.server_busy_ns.len(), 1);
        assert!(a.server_busy_ns[0] > 0, "fetches and flushes must occupy the server");
        assert!(a.mgr_utilization() > 0.0);
        assert!(a.server_utilization().iter().all(|&u| u > 0.0));
        assert!(a.layout.is_some());
        // Busy accounting is part of the deterministic report, not a
        // wall-clock artifact: two fresh systems agree exactly.
        assert_eq!(a.mgr_busy_ns, b.mgr_busy_ns);
        assert_eq!(a.server_busy_ns, b.server_busy_ns);
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn report_hotspots_name_the_written_pages() {
        let s = system(); // 256-byte pages
        let addr = s.alloc_global(1024);
        let report = s.run(1, |ctx| {
            for i in 0..128u64 {
                ctx.write_u64(addr + i * 8, i);
            }
        });
        let hot = report.hotspots();
        assert!(!hot.is_empty());
        let first_page = addr / 256;
        // Every written page shows write-side churn (a twin) and flushed
        // bytes; the first line also shows the demand miss (later lines can
        // be store-allocated without a fetch).
        for p in first_page..first_page + 4 {
            let c = hot.page(p).unwrap_or_else(|| panic!("page {p} missing from hotspot map"));
            assert!(c.twins >= 1);
            assert!(c.diff_bytes + c.fine_bytes > 0);
        }
        assert!(hot.total_of(|c| c.misses) >= 1);
        // And the report can label where each page lives.
        for (page, _) in hot.iter() {
            assert_ne!(report.site_label(page), "?");
        }
    }
}
