//! Runtime configuration.
//!
//! [`SamhitaConfig`] gathers every tunable the paper discusses: paging and
//! cache-line geometry, prefetching, the eviction bias, the allocator
//! thresholds, the number of memory servers, the simulated machine and
//! fabric, the consistency variant, and the §V manager-bypass optimization.
//! Defaults reproduce the paper's evaluation platform: a six-node QDR
//! InfiniBand cluster with one manager node and one memory-server node.

use samhita_mem::ServiceModel;
use samhita_scl::{profiles, LinkModel, Topology};
use serde::{Deserialize, Serialize};

/// Which line the eviction policy prefers to push out.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// The paper's policy: bias eviction towards lines containing pages
    /// that have been written to (their diffs must travel anyway).
    DirtyFirst,
    /// Plain least-recently-used (ablation baseline).
    Lru,
}

/// How consistency-region stores propagate at release.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyVariant {
    /// The paper's RegC implementation: fine-grain (data-object level)
    /// updates for consistency regions, page-granularity diffs elsewhere.
    FineGrain,
    /// Ablation: treat consistency-region stores like ordinary stores
    /// (twin + whole-page diff at the next sync operation).
    WholePage,
}

/// The simulated machine shape.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Everything on one cache-coherent node (used with
    /// [`SamhitaConfig::manager_bypass`] for the §V single-node variant).
    SingleNode,
    /// `nodes` homogeneous cluster nodes behind one switch — the paper's
    /// actual evaluation platform.
    Cluster {
        /// Total cluster nodes (manager + memory servers + compute).
        nodes: u32,
    },
    /// One host plus coprocessor boards over a PCIe-class bus — the Xeon
    /// Phi scenario of Figure 1.
    HeteroNode {
        /// Number of coprocessor boards.
        coprocessors: u32,
        /// Compute cores per coprocessor.
        cores_per_cop: u32,
    },
}

/// Which link profile joins the nodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FabricProfile {
    /// Quad-data-rate InfiniBand through one switch (the paper's fabric).
    IbQdr,
    /// PCIe crossed via an InfiniBand verbs proxy (stock host↔Phi path).
    PcieVerbsProxy,
    /// PCIe driven directly through SCIF (the paper's §V proposal).
    Scif,
    /// 10-gigabit Ethernet with a sockets stack (ablations only).
    Ethernet10g,
}

impl FabricProfile {
    /// Resolve to a concrete link model.
    pub fn link(self) -> LinkModel {
        match self {
            FabricProfile::IbQdr => profiles::ib_qdr(),
            FabricProfile::PcieVerbsProxy => profiles::pcie_verbs_proxy(),
            FabricProfile::Scif => profiles::scif(),
            FabricProfile::Ethernet10g => profiles::ethernet_10g(),
        }
    }
}

/// Cost constants for compute-side virtual time.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Nanoseconds per floating-point operation charged by
    /// `ThreadCtx::compute` (≈ 2.8 GHz Penryn issuing ~1 flop/cycle on this
    /// scalar kernel mix).
    pub flop_ns: f64,
    /// Nanoseconds per 8-byte load/store through the software cache's hit
    /// path (address translation + state check + copy).
    pub mem_op_ns: f64,
    /// Cost to install one KiB of a fetched line into the local cache.
    pub cache_fill_per_kib_ns: u64,
    /// Manager service time per synchronization / allocation request.
    pub mgr_service_ns: u64,
    /// Extra cost charged when a barrier releases (manager fan-out).
    pub barrier_release_ns: u64,
    /// Cost of a lock/barrier operation under the single-node
    /// manager-bypass path (§V): a local atomic handoff.
    pub local_sync_ns: u64,
    /// Sender-side CPU cost per asynchronous message posted (descriptor
    /// build + doorbell); synchronous RPCs pay it implicitly by waiting.
    pub send_ns: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            flop_ns: 0.35,
            mem_op_ns: 1.0,
            cache_fill_per_kib_ns: 30,
            mgr_service_ns: 300,
            barrier_release_ns: 300,
            local_sync_ns: 150,
            send_ns: 60,
        }
    }
}

/// Full runtime configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SamhitaConfig {
    /// Page size in bytes (power of two).
    pub page_size: usize,
    /// Pages per cache line ("cache lines of multiple pages").
    pub line_pages: u32,
    /// Software-cache capacity, in lines, per compute thread.
    pub cache_capacity_lines: usize,
    /// Anticipatory paging: on a miss, also request the adjacent line.
    pub prefetch: bool,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Consistency-region update granularity.
    pub consistency: ConsistencyVariant,
    /// Number of memory servers (homes are striped across them).
    pub mem_servers: u32,
    /// Allocations of at most this many bytes come from the thread-local
    /// arena (strategy 1: no manager round-trip, no false sharing).
    pub small_threshold: u64,
    /// Allocations of at least this many bytes are striped across memory
    /// servers (strategy 3: hot-spot avoidance). Sizes in between come from
    /// the manager's shared zone (strategy 2).
    pub large_threshold: u64,
    /// Arena bytes reserved per thread in the address-space layout.
    pub arena_bytes_per_thread: u64,
    /// Shared-zone bytes reserved in the address-space layout.
    pub shared_zone_bytes: u64,
    /// Maximum compute threads the layout provisions arenas for.
    pub max_threads: u32,
    /// The simulated machine.
    pub topology: TopologyKind,
    /// The interconnect between its nodes.
    pub fabric: FabricProfile,
    /// §V optimization: on a single node, synchronize through a local
    /// handoff instead of manager RPCs (consistency flushes still happen).
    pub manager_bypass: bool,
    /// Compute-side cost constants.
    pub costs: CostParams,
    /// Memory-server service model.
    pub service: ServiceModel,
    /// Record protocol events into per-track trace buffers. Observational
    /// only: virtual clocks are bit-identical with tracing on or off.
    pub tracing: bool,
    /// Per-track event-buffer capacity; past it the oldest events are
    /// dropped (and counted, which makes the invariant checker refuse the
    /// truncated trace).
    pub trace_capacity: usize,
}

impl Default for SamhitaConfig {
    /// The paper's evaluation platform: six cluster nodes on QDR InfiniBand,
    /// one manager node, one memory-server node, compute on the rest.
    fn default() -> Self {
        SamhitaConfig {
            page_size: 4096,
            line_pages: 4,
            cache_capacity_lines: 4096, // 64 MiB per thread at the defaults
            prefetch: true,
            eviction: EvictionPolicy::DirtyFirst,
            consistency: ConsistencyVariant::FineGrain,
            mem_servers: 1,
            small_threshold: 64 * 1024,
            large_threshold: 1 << 20,
            arena_bytes_per_thread: 16 << 20,
            shared_zone_bytes: 1 << 30,
            max_threads: 64,
            topology: TopologyKind::Cluster { nodes: 6 },
            fabric: FabricProfile::IbQdr,
            manager_bypass: false,
            costs: CostParams::default(),
            service: ServiceModel::default(),
            tracing: false,
            trace_capacity: 1 << 20,
        }
    }
}

impl SamhitaConfig {
    /// Bytes per cache line.
    pub fn line_bytes(&self) -> usize {
        self.page_size * self.line_pages as usize
    }

    /// A small single-node configuration convenient for unit tests:
    /// tiny pages and caches so paths like eviction are easy to exercise.
    pub fn small_for_tests() -> Self {
        SamhitaConfig {
            page_size: 256,
            line_pages: 2,
            cache_capacity_lines: 64,
            arena_bytes_per_thread: 1 << 20,
            shared_zone_bytes: 8 << 20,
            max_threads: 16,
            topology: TopologyKind::SingleNode,
            ..SamhitaConfig::default()
        }
    }

    /// Build the [`Topology`] this configuration describes.
    pub fn build_topology(&self) -> Topology {
        let link = self.fabric.link();
        match self.topology {
            TopologyKind::SingleNode => Topology::single_node(64),
            TopologyKind::Cluster { nodes } => Topology::cluster(nodes, link),
            TopologyKind::HeteroNode { coprocessors, cores_per_cop } => {
                Topology::hetero_node(coprocessors, cores_per_cop, link)
            }
        }
    }

    /// Validate internal consistency; called by the system constructor.
    ///
    /// # Panics
    /// Panics with a descriptive message on an inconsistent configuration.
    pub fn validate(&self) {
        assert!(self.page_size.is_power_of_two() && self.page_size >= 64, "bad page size");
        assert!(self.line_pages >= 1, "lines need at least one page");
        assert!(self.cache_capacity_lines >= 2, "cache must hold at least two lines");
        assert!(self.mem_servers >= 1, "need at least one memory server");
        assert!(self.small_threshold <= self.large_threshold, "allocator thresholds inverted");
        assert!(
            self.arena_bytes_per_thread >= self.small_threshold,
            "arena smaller than the largest arena-eligible allocation"
        );
        assert!(self.max_threads >= 1, "max_threads must be positive");
        assert!(
            !self.tracing || self.trace_capacity >= 1,
            "tracing enabled with a zero-capacity buffer"
        );
        if self.manager_bypass {
            assert!(
                matches!(self.topology, TopologyKind::SingleNode),
                "manager bypass is the single-node optimization (§V)"
            );
        }
        match self.topology {
            TopologyKind::Cluster { nodes } => {
                assert!(
                    nodes >= 2 + self.mem_servers,
                    "cluster too small for manager + memory servers + compute"
                )
            }
            TopologyKind::HeteroNode { coprocessors, cores_per_cop } => {
                assert!(coprocessors >= 1 && cores_per_cop >= 1, "empty coprocessor config")
            }
            TopologyKind::SingleNode => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let c = SamhitaConfig::default();
        c.validate();
        assert_eq!(c.topology, TopologyKind::Cluster { nodes: 6 });
        assert_eq!(c.mem_servers, 1);
        assert_eq!(c.line_bytes(), 16384);
    }

    #[test]
    fn test_config_is_valid() {
        SamhitaConfig::small_for_tests().validate();
    }

    #[test]
    fn topology_building_matches_kind() {
        let mut c = SamhitaConfig::default();
        assert_eq!(c.build_topology().len(), 6);
        c.topology = TopologyKind::HeteroNode { coprocessors: 2, cores_per_cop: 57 };
        assert_eq!(c.build_topology().len(), 3);
        c.topology = TopologyKind::SingleNode;
        assert_eq!(c.build_topology().len(), 1);
    }

    #[test]
    #[should_panic(expected = "single-node optimization")]
    fn bypass_requires_single_node() {
        let c = SamhitaConfig { manager_bypass: true, ..SamhitaConfig::default() };
        c.validate();
    }

    #[test]
    #[should_panic(expected = "thresholds inverted")]
    fn inverted_thresholds_rejected() {
        let c = SamhitaConfig {
            small_threshold: 2 << 20,
            large_threshold: 1 << 20,
            ..SamhitaConfig::default()
        };
        c.validate();
    }

    #[test]
    fn fabric_profiles_resolve() {
        assert_eq!(FabricProfile::IbQdr.link(), profiles::ib_qdr());
        assert_eq!(FabricProfile::Scif.link(), profiles::scif());
        assert_eq!(FabricProfile::PcieVerbsProxy.link(), profiles::pcie_verbs_proxy());
        assert_eq!(FabricProfile::Ethernet10g.link(), profiles::ethernet_10g());
    }
}
