//! Runtime configuration.
//!
//! [`SamhitaConfig`] gathers every tunable the paper discusses: paging and
//! cache-line geometry, prefetching, the eviction bias, the allocator
//! thresholds, the number of memory servers, the simulated machine and
//! fabric, the consistency variant, and the §V manager-bypass optimization.
//! Defaults reproduce the paper's evaluation platform: a six-node QDR
//! InfiniBand cluster with one manager node and one memory-server node.

use std::fmt;

use samhita_mem::ServiceModel;
use samhita_scl::{profiles, LinkModel, Topology};
use serde::{Deserialize, Serialize};

/// How simulated threads are interleaved.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RuntimeKind {
    /// Free-running OS threads with per-thread virtual clocks: maximal host
    /// parallelism, but at P>1 virtual times are only *stable*, not
    /// bit-reproducible (server queueing depends on host scheduling).
    Os,
    /// The deterministic virtual-time scheduler (`samhita-sched`): all
    /// simulated threads are cooperatively interleaved by ascending
    /// `(virtual_time, seeded tie-break)`, making every clock, trace, and
    /// report bit-identical run-to-run at any thread count.
    Det,
}

/// Which line the eviction policy prefers to push out.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// The paper's policy: bias eviction towards lines containing pages
    /// that have been written to (their diffs must travel anyway).
    DirtyFirst,
    /// Plain least-recently-used (ablation baseline).
    Lru,
}

/// How consistency-region stores propagate at release.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConsistencyVariant {
    /// The paper's RegC implementation: fine-grain (data-object level)
    /// updates for consistency regions, page-granularity diffs elsewhere.
    FineGrain,
    /// Ablation: treat consistency-region stores like ordinary stores
    /// (twin + whole-page diff at the next sync operation).
    WholePage,
}

/// The simulated machine shape.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TopologyKind {
    /// Everything on one cache-coherent node (used with
    /// [`SamhitaConfig::manager_bypass`] for the §V single-node variant).
    SingleNode,
    /// `nodes` homogeneous cluster nodes behind one switch — the paper's
    /// actual evaluation platform.
    Cluster {
        /// Total cluster nodes (manager + memory servers + compute).
        nodes: u32,
    },
    /// One host plus coprocessor boards over a PCIe-class bus — the Xeon
    /// Phi scenario of Figure 1.
    HeteroNode {
        /// Number of coprocessor boards.
        coprocessors: u32,
        /// Compute cores per coprocessor.
        cores_per_cop: u32,
    },
}

/// Which link profile joins the nodes.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FabricProfile {
    /// Quad-data-rate InfiniBand through one switch (the paper's fabric).
    IbQdr,
    /// PCIe crossed via an InfiniBand verbs proxy (stock host↔Phi path).
    PcieVerbsProxy,
    /// PCIe driven directly through SCIF (the paper's §V proposal).
    Scif,
    /// 10-gigabit Ethernet with a sockets stack (ablations only).
    Ethernet10g,
}

impl FabricProfile {
    /// Resolve to a concrete link model.
    pub fn link(self) -> LinkModel {
        match self {
            FabricProfile::IbQdr => profiles::ib_qdr(),
            FabricProfile::PcieVerbsProxy => profiles::pcie_verbs_proxy(),
            FabricProfile::Scif => profiles::scif(),
            FabricProfile::Ethernet10g => profiles::ethernet_10g(),
        }
    }
}

/// Cost constants for compute-side virtual time.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostParams {
    /// Nanoseconds per floating-point operation charged by
    /// `ThreadCtx::compute` (≈ 2.8 GHz Penryn issuing ~1 flop/cycle on this
    /// scalar kernel mix).
    pub flop_ns: f64,
    /// Nanoseconds per 8-byte load/store through the software cache's hit
    /// path (address translation + state check + copy).
    pub mem_op_ns: f64,
    /// Cost to install one KiB of a fetched line into the local cache.
    pub cache_fill_per_kib_ns: u64,
    /// Manager service time per synchronization / allocation request.
    pub mgr_service_ns: u64,
    /// Extra cost charged when a barrier releases (manager fan-out).
    pub barrier_release_ns: u64,
    /// Cost of a lock/barrier operation under the single-node
    /// manager-bypass path (§V): a local atomic handoff.
    pub local_sync_ns: u64,
    /// Sender-side CPU cost per asynchronous message posted (descriptor
    /// build + doorbell); synchronous RPCs pay it implicitly by waiting.
    pub send_ns: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            flop_ns: 0.35,
            mem_op_ns: 1.0,
            cache_fill_per_kib_ns: 30,
            mgr_service_ns: 300,
            barrier_release_ns: 300,
            local_sync_ns: 150,
            send_ns: 60,
        }
    }
}

/// A timed symmetric link partition between two topology nodes, expressed
/// in config-friendly plain integers (node indices, nanoseconds).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionSpec {
    /// One side of the severed link (topology node index).
    pub a: u32,
    /// The other side (topology node index).
    pub b: u32,
    /// First virtual nanosecond at which sends are lost (inclusive).
    pub from_ns: u64,
    /// Virtual nanosecond at which the link heals (exclusive).
    pub until_ns: u64,
}

/// Deterministic fault schedule for a run. The default injects nothing and
/// leaves every virtual clock bit-identical to a fault-free build.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the per-message fate hash and retry jitter.
    pub seed: u64,
    /// Probability a fabric message is dropped.
    pub drop_p: f64,
    /// Probability a fabric message is duplicated.
    pub dup_p: f64,
    /// Probability a fabric message suffers a latency spike.
    pub delay_p: f64,
    /// The latency spike added to delayed messages, ns.
    pub delay_ns: u64,
    /// Timed symmetric link partitions.
    pub partitions: Vec<PartitionSpec>,
    /// Crash one memory server (by index) at a virtual instant: from then
    /// on every message to or from it is lost and clients must fail over
    /// to the replica (requires `replica_offset > 0`).
    pub crash: Option<(u32, u64)>,
    /// Crash the manager at a virtual instant: from then on every message
    /// to or from the manager endpoint is lost and clients must fail over
    /// to the hot standby (requires
    /// [`SamhitaConfig::manager_standby`]).
    pub mgr_crash: Option<u64>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            drop_p: 0.0,
            dup_p: 0.0,
            delay_p: 0.0,
            delay_ns: 0,
            partitions: Vec::new(),
            crash: None,
            mgr_crash: None,
        }
    }
}

impl FaultConfig {
    /// A lossy-fabric schedule: drop/duplicate/delay with one seed.
    pub fn lossy(seed: u64, drop_p: f64, dup_p: f64, delay_p: f64, delay_ns: u64) -> Self {
        FaultConfig { seed, drop_p, dup_p, delay_p, delay_ns, ..FaultConfig::default() }
    }

    /// True if this schedule can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.delay_p > 0.0
            || !self.partitions.is_empty()
            || self.crash.is_some()
            || self.mgr_crash.is_some()
    }
}

/// Retry/timeout/backoff parameters for protocol RPCs, in virtual time.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryConfig {
    /// First-retry delay (and jitter modulus), ns.
    pub base_ns: u64,
    /// Upper bound on any single backoff delay, ns.
    pub cap_ns: u64,
    /// Attempts before a peer is declared unreachable.
    pub max_attempts: u32,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { base_ns: 20_000, cap_ns: 500_000, max_attempts: 8 }
    }
}

/// Typed rejection from [`SamhitaConfig::validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // each variant's Display text is the documentation
pub enum ConfigError {
    BadPageSize,
    ZeroLinePages,
    CacheTooSmall,
    NoMemServers,
    ThresholdsInverted,
    ArenaTooSmall,
    ZeroMaxThreads,
    ZeroTraceCapacity,
    BypassNeedsSingleNode,
    ClusterTooSmall,
    EmptyCoprocessors,
    ReplicaOffsetOutOfRange,
    BadFaultProbabilities,
    CrashedServerOutOfRange,
    CrashWithoutReplica,
    MgrCrashWithoutStandby,
    ZeroRetryAttempts,
    ZeroLease,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            ConfigError::BadPageSize => "bad page size",
            ConfigError::ZeroLinePages => "lines need at least one page",
            ConfigError::CacheTooSmall => "cache must hold at least two lines",
            ConfigError::NoMemServers => "need at least one memory server",
            ConfigError::ThresholdsInverted => "allocator thresholds inverted",
            ConfigError::ArenaTooSmall => {
                "arena smaller than the largest arena-eligible allocation"
            }
            ConfigError::ZeroMaxThreads => "max_threads must be positive",
            ConfigError::ZeroTraceCapacity => "tracing enabled with a zero-capacity buffer",
            ConfigError::BypassNeedsSingleNode => {
                "manager bypass is the single-node optimization (§V)"
            }
            ConfigError::ClusterTooSmall => {
                "cluster too small for manager + memory servers + compute"
            }
            ConfigError::EmptyCoprocessors => "empty coprocessor config",
            ConfigError::ReplicaOffsetOutOfRange => {
                "replica offset out of range (need 1 <= offset < mem_servers)"
            }
            ConfigError::BadFaultProbabilities => {
                "fault probabilities must lie in [0, 1] and sum to at most 1"
            }
            ConfigError::CrashedServerOutOfRange => "crashed server index out of range",
            ConfigError::CrashWithoutReplica => {
                "a server crash without a replica configured cannot be survived"
            }
            ConfigError::MgrCrashWithoutStandby => {
                "a manager crash without a hot standby configured cannot be survived"
            }
            ConfigError::ZeroRetryAttempts => "retry policy needs at least one attempt",
            ConfigError::ZeroLease => "lock leases need a positive expiry",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ConfigError {}

/// Full runtime configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SamhitaConfig {
    /// Page size in bytes (power of two).
    pub page_size: usize,
    /// Pages per cache line ("cache lines of multiple pages").
    pub line_pages: u32,
    /// Software-cache capacity, in lines, per compute thread.
    pub cache_capacity_lines: usize,
    /// Anticipatory paging: on a miss, also request the adjacent line.
    pub prefetch: bool,
    /// Eviction policy.
    pub eviction: EvictionPolicy,
    /// Consistency-region update granularity.
    pub consistency: ConsistencyVariant,
    /// Number of memory servers (homes are striped across them).
    pub mem_servers: u32,
    /// Allocations of at most this many bytes come from the thread-local
    /// arena (strategy 1: no manager round-trip, no false sharing).
    pub small_threshold: u64,
    /// Allocations of at least this many bytes are striped across memory
    /// servers (strategy 3: hot-spot avoidance). Sizes in between come from
    /// the manager's shared zone (strategy 2).
    pub large_threshold: u64,
    /// Arena bytes reserved per thread in the address-space layout.
    pub arena_bytes_per_thread: u64,
    /// Shared-zone bytes reserved in the address-space layout.
    pub shared_zone_bytes: u64,
    /// Maximum compute threads the layout provisions arenas for.
    pub max_threads: u32,
    /// The simulated machine.
    pub topology: TopologyKind,
    /// The interconnect between its nodes.
    pub fabric: FabricProfile,
    /// §V optimization: on a single node, synchronize through a local
    /// handoff instead of manager RPCs (consistency flushes still happen).
    pub manager_bypass: bool,
    /// Compute-side cost constants.
    pub costs: CostParams,
    /// Memory-server service model.
    pub service: ServiceModel,
    /// Record protocol events into per-track trace buffers. Observational
    /// only: virtual clocks are bit-identical with tracing on or off.
    pub tracing: bool,
    /// Per-track event-buffer capacity; past it the oldest events are
    /// dropped (and counted, which makes the invariant checker refuse the
    /// truncated trace).
    pub trace_capacity: usize,
    /// Deterministic fault-injection schedule (default: inject nothing).
    pub faults: FaultConfig,
    /// Retry/timeout/backoff parameters for protocol RPCs.
    pub retry: RetryConfig,
    /// Write-through replication: data homed on server `s` is mirrored to
    /// server `(s + replica_offset) % mem_servers`, and clients fail over
    /// to that replica when the primary stops responding. `0` disables
    /// replication (the paper's baseline).
    pub replica_offset: u32,
    /// Provision a hot-standby manager on another node: the primary ships
    /// every state-machine log record to it (write-ahead, batched), lock
    /// releases become acknowledged RPCs so no release can vanish in a
    /// crash window, and clients whose retries exhaust against the primary
    /// fail over to the standby. `false` (the default) compiles the
    /// recovery machinery out of the message flow entirely, keeping the
    /// baseline virtual timeline byte-identical.
    pub manager_standby: bool,
    /// Lock-lease length in virtual nanoseconds: a grant made at `t`
    /// expires at `t + mgr_lease_ns`, after which a *standby* that has
    /// taken over may reclaim the lock from a holder that never released
    /// (its release died with the primary). Reclamation happens in virtual
    /// time, so recovery stays bit-deterministic. The generous default
    /// means ordinary failovers never reclaim — holders retry their
    /// release against the standby first.
    pub mgr_lease_ns: u64,
    /// Thread interleaving model. The default is [`RuntimeKind::Det`]: P>1
    /// runs are bit-reproducible and everything (chaos suite, invariant
    /// checker, bench gates) gates at multi-core.
    pub runtime: RuntimeKind,
    /// Seed for the deterministic scheduler's tie-break (ignored under
    /// [`RuntimeKind::Os`]). Different seeds explore different legal
    /// interleavings of virtual-time ties.
    pub sched_seed: u64,
}

impl Default for SamhitaConfig {
    /// The paper's evaluation platform: six cluster nodes on QDR InfiniBand,
    /// one manager node, one memory-server node, compute on the rest.
    fn default() -> Self {
        SamhitaConfig {
            page_size: 4096,
            line_pages: 4,
            cache_capacity_lines: 4096, // 64 MiB per thread at the defaults
            prefetch: true,
            eviction: EvictionPolicy::DirtyFirst,
            consistency: ConsistencyVariant::FineGrain,
            mem_servers: 1,
            small_threshold: 64 * 1024,
            large_threshold: 1 << 20,
            arena_bytes_per_thread: 16 << 20,
            shared_zone_bytes: 1 << 30,
            max_threads: 64,
            topology: TopologyKind::Cluster { nodes: 6 },
            fabric: FabricProfile::IbQdr,
            manager_bypass: false,
            costs: CostParams::default(),
            service: ServiceModel::default(),
            tracing: false,
            trace_capacity: 1 << 20,
            faults: FaultConfig::default(),
            retry: RetryConfig::default(),
            replica_offset: 0,
            manager_standby: false,
            mgr_lease_ns: 10_000_000,
            runtime: RuntimeKind::Det,
            sched_seed: 0,
        }
    }
}

impl SamhitaConfig {
    /// Bytes per cache line.
    pub fn line_bytes(&self) -> usize {
        self.page_size * self.line_pages as usize
    }

    /// A small single-node configuration convenient for unit tests:
    /// tiny pages and caches so paths like eviction are easy to exercise.
    pub fn small_for_tests() -> Self {
        SamhitaConfig {
            page_size: 256,
            line_pages: 2,
            cache_capacity_lines: 64,
            arena_bytes_per_thread: 1 << 20,
            shared_zone_bytes: 8 << 20,
            max_threads: 16,
            topology: TopologyKind::SingleNode,
            ..SamhitaConfig::default()
        }
    }

    /// The deterministic service-cost parameters, packaged for the trace
    /// crate's [`samhita_trace::MetricsTimeline`] so busy-time
    /// reconstruction from serve events can never drift from the
    /// simulation's own cost model.
    pub fn service_costs(&self) -> samhita_trace::ServiceCosts {
        samhita_trace::ServiceCosts {
            mgr_service_ns: self.costs.mgr_service_ns,
            fetch_base_ns: self.service.base_ns,
            apply_base_ns: self.service.apply_base_ns,
            per_kib_ns: self.service.per_kib_ns,
            page_size: self.page_size as u64,
        }
    }

    /// Build the [`Topology`] this configuration describes.
    pub fn build_topology(&self) -> Topology {
        let link = self.fabric.link();
        match self.topology {
            TopologyKind::SingleNode => Topology::single_node(64),
            TopologyKind::Cluster { nodes } => Topology::cluster(nodes, link),
            TopologyKind::HeteroNode { coprocessors, cores_per_cop } => {
                Topology::hetero_node(coprocessors, cores_per_cop, link)
            }
        }
    }

    /// Validate internal consistency; called by the system constructor
    /// (which refuses to build from an invalid configuration).
    ///
    /// # Errors
    /// Returns the first [`ConfigError`] found, checked in declaration
    /// order of the fields.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if !self.page_size.is_power_of_two() || self.page_size < 64 {
            return Err(ConfigError::BadPageSize);
        }
        if self.line_pages < 1 {
            return Err(ConfigError::ZeroLinePages);
        }
        if self.cache_capacity_lines < 2 {
            return Err(ConfigError::CacheTooSmall);
        }
        if self.mem_servers < 1 {
            return Err(ConfigError::NoMemServers);
        }
        if self.small_threshold > self.large_threshold {
            return Err(ConfigError::ThresholdsInverted);
        }
        if self.arena_bytes_per_thread < self.small_threshold {
            return Err(ConfigError::ArenaTooSmall);
        }
        if self.max_threads < 1 {
            return Err(ConfigError::ZeroMaxThreads);
        }
        if self.tracing && self.trace_capacity < 1 {
            return Err(ConfigError::ZeroTraceCapacity);
        }
        if self.manager_bypass && !matches!(self.topology, TopologyKind::SingleNode) {
            return Err(ConfigError::BypassNeedsSingleNode);
        }
        match self.topology {
            TopologyKind::Cluster { nodes } => {
                if nodes < 2 + self.mem_servers {
                    return Err(ConfigError::ClusterTooSmall);
                }
            }
            TopologyKind::HeteroNode { coprocessors, cores_per_cop } => {
                if coprocessors < 1 || cores_per_cop < 1 {
                    return Err(ConfigError::EmptyCoprocessors);
                }
            }
            TopologyKind::SingleNode => {}
        }
        if self.replica_offset >= self.mem_servers && self.replica_offset != 0 {
            return Err(ConfigError::ReplicaOffsetOutOfRange);
        }
        let f = &self.faults;
        let ps = [f.drop_p, f.dup_p, f.delay_p];
        if ps.iter().any(|p| !(0.0..=1.0).contains(p)) || ps.iter().sum::<f64>() > 1.0 {
            return Err(ConfigError::BadFaultProbabilities);
        }
        if let Some((server, _)) = f.crash {
            if server >= self.mem_servers {
                return Err(ConfigError::CrashedServerOutOfRange);
            }
            if self.replica_offset == 0 {
                return Err(ConfigError::CrashWithoutReplica);
            }
        }
        if f.mgr_crash.is_some() && !self.manager_standby {
            return Err(ConfigError::MgrCrashWithoutStandby);
        }
        if self.retry.max_attempts < 1 {
            return Err(ConfigError::ZeroRetryAttempts);
        }
        if self.manager_standby && self.mgr_lease_ns == 0 {
            return Err(ConfigError::ZeroLease);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid_and_paper_shaped() {
        let c = SamhitaConfig::default();
        c.validate().expect("default config must validate");
        assert_eq!(c.topology, TopologyKind::Cluster { nodes: 6 });
        assert_eq!(c.mem_servers, 1);
        assert_eq!(c.line_bytes(), 16384);
        assert_eq!(c.replica_offset, 0, "the paper's baseline has no replication");
        assert!(!c.faults.is_active(), "the default fault schedule injects nothing");
    }

    #[test]
    fn test_config_is_valid() {
        SamhitaConfig::small_for_tests().validate().expect("test config must validate");
    }

    #[test]
    fn topology_building_matches_kind() {
        let mut c = SamhitaConfig::default();
        assert_eq!(c.build_topology().len(), 6);
        c.topology = TopologyKind::HeteroNode { coprocessors: 2, cores_per_cop: 57 };
        assert_eq!(c.build_topology().len(), 3);
        c.topology = TopologyKind::SingleNode;
        assert_eq!(c.build_topology().len(), 1);
    }

    #[test]
    fn bypass_requires_single_node() {
        let c = SamhitaConfig { manager_bypass: true, ..SamhitaConfig::default() };
        assert_eq!(c.validate().unwrap_err(), ConfigError::BypassNeedsSingleNode);
        assert!(c.validate().unwrap_err().to_string().contains("single-node optimization"));
    }

    #[test]
    fn inverted_thresholds_rejected() {
        let c = SamhitaConfig {
            small_threshold: 2 << 20,
            large_threshold: 1 << 20,
            ..SamhitaConfig::default()
        };
        assert_eq!(c.validate().unwrap_err(), ConfigError::ThresholdsInverted);
        assert!(c.validate().unwrap_err().to_string().contains("thresholds inverted"));
    }

    #[test]
    fn zero_cache_capacity_rejected() {
        let c = SamhitaConfig { cache_capacity_lines: 0, ..SamhitaConfig::default() };
        assert_eq!(c.validate().unwrap_err(), ConfigError::CacheTooSmall);
    }

    #[test]
    fn zero_line_pages_rejected() {
        let c = SamhitaConfig { line_pages: 0, ..SamhitaConfig::default() };
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroLinePages);
    }

    #[test]
    fn replica_offset_must_name_a_distinct_server() {
        let mut c = SamhitaConfig { mem_servers: 2, ..SamhitaConfig::default() };
        c.topology = TopologyKind::Cluster { nodes: 6 };
        c.replica_offset = 1;
        c.validate().expect("offset 1 of 2 servers is valid");
        c.replica_offset = 2;
        assert_eq!(c.validate().unwrap_err(), ConfigError::ReplicaOffsetOutOfRange);
        c.mem_servers = 1;
        c.replica_offset = 1;
        assert_eq!(c.validate().unwrap_err(), ConfigError::ReplicaOffsetOutOfRange);
    }

    #[test]
    fn fault_probabilities_are_bounded() {
        let mut c =
            SamhitaConfig { faults: FaultConfig::lossy(1, 0.6, 0.3, 0.3, 0), ..Default::default() };
        assert_eq!(c.validate().unwrap_err(), ConfigError::BadFaultProbabilities);
        c.faults = FaultConfig::lossy(1, -0.1, 0.0, 0.0, 0);
        assert_eq!(c.validate().unwrap_err(), ConfigError::BadFaultProbabilities);
        c.faults = FaultConfig::lossy(1, 0.1, 0.05, 0.05, 3_000);
        c.validate().expect("modest probabilities are valid");
    }

    #[test]
    fn crash_needs_a_valid_server_and_a_replica() {
        let mut c = SamhitaConfig { mem_servers: 2, ..SamhitaConfig::default() };
        c.faults.crash = Some((5, 1_000));
        assert_eq!(c.validate().unwrap_err(), ConfigError::CrashedServerOutOfRange);
        c.faults.crash = Some((0, 1_000));
        assert_eq!(c.validate().unwrap_err(), ConfigError::CrashWithoutReplica);
        c.replica_offset = 1;
        c.validate().expect("a crash with a replica configured is survivable");
    }

    #[test]
    fn manager_crash_needs_a_standby() {
        let mut c = SamhitaConfig::default();
        c.faults.mgr_crash = Some(50_000);
        assert_eq!(c.validate().unwrap_err(), ConfigError::MgrCrashWithoutStandby);
        assert!(c.faults.is_active(), "a pending manager crash is an active fault schedule");
        c.manager_standby = true;
        c.validate().expect("a manager crash with a standby configured is survivable");
        c.mgr_lease_ns = 0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroLease);
    }

    #[test]
    fn zero_retry_attempts_rejected() {
        let mut c = SamhitaConfig::default();
        c.retry.max_attempts = 0;
        assert_eq!(c.validate().unwrap_err(), ConfigError::ZeroRetryAttempts);
    }

    #[test]
    fn service_costs_mirror_the_simulation_model() {
        use samhita_scl::SimTime;
        let c = SamhitaConfig::default();
        let sc = c.service_costs();
        assert_eq!(sc.mgr_service_ns, c.costs.mgr_service_ns);
        assert_eq!(sc.page_size, c.page_size as u64);
        for bytes in [0usize, 100, 1024, 4096, 16384] {
            assert_eq!(SimTime::from_ns(sc.fetch_ns(bytes as u64)), c.service.service_ns(bytes));
            assert_eq!(SimTime::from_ns(sc.apply_ns(bytes as u64)), c.service.apply_ns(bytes));
        }
    }

    #[test]
    fn fabric_profiles_resolve() {
        assert_eq!(FabricProfile::IbQdr.link(), profiles::ib_qdr());
        assert_eq!(FabricProfile::Scif.link(), profiles::scif());
        assert_eq!(FabricProfile::PcieVerbsProxy.link(), profiles::pcie_verbs_proxy());
        assert_eq!(FabricProfile::Ethernet10g.link(), profiles::ethernet_10g());
    }
}
