//! The wire protocol between compute threads, the manager, and the memory
//! servers.
//!
//! All messages share one enum so a single SCL fabric carries them. Tokens
//! correlate requests with responses: each compute thread issues tokens from
//! a private counter, so responses can arrive out of order (prefetches,
//! eviction acks) and still be matched.

use std::fmt;

use samhita_mem::{MemRequest, MemResponse};
use samhita_regc::{FineUpdate, WriteNotice};
use samhita_scl::{EndpointId, SimTime};

use crate::layout::Region;

/// Everything that travels on the fabric.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // payloads are described on each variant
pub enum Msg {
    /// Compute thread → memory server. `shadow` marks write-through replica
    /// copies: the server applies and acknowledges them like any update but
    /// keeps them out of the event trace, so replication does not perturb
    /// the observable protocol timeline.
    MemReq { token: u64, shadow: bool, req: MemRequest },
    /// Memory server → compute thread.
    MemResp { token: u64, resp: MemResponse },
    /// Compute thread (or host control client) → manager.
    MgrReq { token: u64, tid: u32, req: MgrRequest },
    /// Manager → compute thread (or host control client).
    MgrResp { token: u64, resp: MgrResponse },
    /// Primary manager → hot standby: the unacknowledged suffix of the
    /// write-ahead log. Shipped after each serve; a batch always restarts
    /// at the first unacknowledged record, so a lost batch is repaired by
    /// the next one and the standby deduplicates by sequence number.
    MgrLog { records: Vec<MgrLogRecord> },
    /// Hot standby → primary manager: all records with `seq <= upto` have
    /// been applied and need not be shipped again.
    MgrLogAck { upto: u64 },
    /// System teardown.
    Shutdown,
}

/// One mutation of the manager state machine. Manager state is a pure fold
/// of [`ManagerEngine::apply`](crate::manager::ManagerEngine) over the
/// sequence of these records, which is what makes the hot standby's replica
/// bit-identical: it folds the same records through the same function.
#[derive(Clone, Debug)]
pub struct MgrLogRecord {
    /// Position in the log (1-based, dense). `apply` refuses gaps.
    pub seq: u64,
    /// The mutation itself.
    pub op: MgrLogOp,
}

/// The mutation payload of a [`MgrLogRecord`].
#[derive(Clone, Debug)]
pub enum MgrLogOp {
    /// A client request served by the manager: the full request tuple,
    /// including its virtual arrival time, so replay reproduces service
    /// timing exactly.
    Request {
        /// Requester's endpoint (where responses go).
        src: EndpointId,
        /// Requesting thread.
        tid: u32,
        /// Idempotency token of the request.
        token: u64,
        /// The request.
        req: MgrRequest,
        /// Virtual delivery time at the manager.
        arrival: SimTime,
    },
    /// A standby-side lease sweep at virtual time `now`: every lock whose
    /// lease expired before `now` is reclaimed from its holder and handed
    /// to the next queued waiter. Only an *active* (post-takeover) standby
    /// generates these.
    ReclaimExpired {
        /// Virtual time of the sweep.
        now: SimTime,
    },
}

impl MgrLogRecord {
    /// Approximate wire payload for the cost model: a 16-byte record
    /// header (seq + op discriminant) plus the embedded request.
    pub fn wire_bytes(&self) -> usize {
        16 + match &self.op {
            MgrLogOp::Request { req, .. } => 16 + req.wire_bytes(),
            MgrLogOp::ReclaimExpired { .. } => 8,
        }
    }
}

/// Requests the manager services: allocation, synchronization, membership.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // payloads are described on each variant
pub enum MgrRequest {
    /// Announce a thread to the manager. `observer` marks clients that
    /// never participate in synchronization (the host control client):
    /// they are excluded from write-notice retention accounting.
    Register { observer: bool },
    /// Strategy-2 allocation from the shared zone.
    AllocShared { size: u64, align: u64 },
    /// Strategy-3 allocation, striped across memory servers.
    AllocStriped { size: u64 },
    /// Free a manager-mediated allocation.
    Free { addr: u64 },
    /// Create a mutual-exclusion variable.
    CreateLock,
    /// Create a barrier over `parties` threads.
    CreateBarrier { parties: u32 },
    /// Create a condition variable.
    CreateCond,
    /// Acquire a lock. `pages` are the write notices to publish for the
    /// flush performed before this acquire; `last_seen` is the caller's
    /// notice watermark.
    Acquire { lock: u32, pages: Vec<u64>, updates: Vec<FineUpdate>, last_seen: u64 },
    /// Release a lock after flushing; publishes `pages` and the fine-grain
    /// `updates` of the consistency region just exited.
    Release { lock: u32, pages: Vec<u64>, updates: Vec<FineUpdate>, last_seen: u64 },
    /// Enter a barrier after flushing; publishes `pages` and `updates`.
    BarrierWait { barrier: u32, pages: Vec<u64>, updates: Vec<FineUpdate>, last_seen: u64 },
    /// Atomically release `lock` and wait on `cond`; publishes `pages` and
    /// `updates`. The response (a lock re-grant) arrives after a signal.
    CondWait { cond: u32, lock: u32, pages: Vec<u64>, updates: Vec<FineUpdate>, last_seen: u64 },
    /// Wake one waiter of `cond`.
    CondSignal { cond: u32 },
    /// Wake all waiters of `cond`.
    CondBroadcast { cond: u32 },
    /// Thread departure; publishes the final flush.
    Exit { pages: Vec<u64>, updates: Vec<FineUpdate> },
}

/// Manager responses.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // payloads are described on each variant
pub enum MgrResponse {
    /// Registration accepted; carries the current notice watermark, which
    /// becomes the registrant's `last_seen` floor (notices older than this
    /// may be garbage-collected at any time).
    Registered { watermark: u64 },
    /// Allocation result.
    Addr(u64),
    /// Generic acknowledgement (free, signal, exit, release).
    Ok,
    /// New synchronization object id.
    SyncId(u32),
    /// Lock granted (also used for condvar wake-ups, which re-grant the
    /// lock): unseen write notices plus the new watermark.
    Granted { notices: Vec<WriteNotice>, watermark: u64 },
    /// Barrier released: unseen write notices plus the new watermark.
    BarrierReleased { notices: Vec<WriteNotice>, watermark: u64 },
    /// Request failed.
    Err(MgrError),
}

/// Typed manager-side failures. Fixed-size and `Copy`, so the happy path
/// never allocates a diagnostic string; `Display` renders the full
/// diagnostic only when someone actually reports the error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MgrError {
    /// The shared zone could not satisfy an allocation of `size` bytes.
    SharedExhausted {
        /// Requested allocation size.
        size: u64,
    },
    /// The striped region could not satisfy an allocation of `size` bytes.
    StripedExhausted {
        /// Requested allocation size.
        size: u64,
    },
    /// `addr` does not name a live manager-mediated allocation.
    BadFree {
        /// The freed address.
        addr: u64,
        /// The address-space region `addr` falls in.
        region: Region,
    },
    /// A request named a lock id that was never created.
    UnknownLock {
        /// The offending lock id.
        lock: u32,
    },
    /// A request named a barrier id that was never created.
    UnknownBarrier {
        /// The offending barrier id.
        barrier: u32,
    },
    /// A request named a condition variable that was never created.
    UnknownCond {
        /// The offending condition-variable id.
        cond: u32,
    },
    /// A release of a lock the releasing thread does not hold (and that
    /// was not lease-reclaimed from it — a reclaimed holder's late release
    /// is absorbed silently).
    NotHolder {
        /// The lock id.
        lock: u32,
        /// The releasing thread.
        tid: u32,
    },
    /// A request from a thread the manager has no registration for.
    Unregistered {
        /// The unknown thread.
        tid: u32,
    },
}

impl fmt::Display for MgrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MgrError::SharedExhausted { size } => {
                write!(f, "shared zone exhausted ({size} bytes)")
            }
            MgrError::StripedExhausted { size } => {
                write!(f, "striped region exhausted ({size} bytes)")
            }
            MgrError::BadFree { addr, region } => {
                write!(f, "free of {addr:#x} in {region:?}: not a live manager allocation")
            }
            MgrError::UnknownLock { lock } => write!(f, "unknown lock id {lock}"),
            MgrError::UnknownBarrier { barrier } => write!(f, "unknown barrier id {barrier}"),
            MgrError::UnknownCond { cond } => write!(f, "unknown condition variable id {cond}"),
            MgrError::NotHolder { lock, tid } => {
                write!(f, "release of lock {lock} not held by thread {tid}")
            }
            MgrError::Unregistered { tid } => write!(f, "thread {tid} is not registered"),
        }
    }
}

impl std::error::Error for MgrError {}

impl MgrRequest {
    /// Short operation label, for trace events.
    pub fn label(&self) -> &'static str {
        match self {
            MgrRequest::Register { .. } => "register",
            MgrRequest::AllocShared { .. } => "alloc-shared",
            MgrRequest::AllocStriped { .. } => "alloc-striped",
            MgrRequest::Free { .. } => "free",
            MgrRequest::CreateLock => "create-lock",
            MgrRequest::CreateBarrier { .. } => "create-barrier",
            MgrRequest::CreateCond => "create-cond",
            MgrRequest::Acquire { .. } => "acquire",
            MgrRequest::Release { .. } => "release",
            MgrRequest::BarrierWait { .. } => "barrier-wait",
            MgrRequest::CondWait { .. } => "cond-wait",
            MgrRequest::CondSignal { .. } => "cond-signal",
            MgrRequest::CondBroadcast { .. } => "cond-broadcast",
            MgrRequest::Exit { .. } => "exit",
        }
    }

    /// Approximate wire payload for the cost model.
    pub fn wire_bytes(&self) -> usize {
        match self {
            MgrRequest::Register { .. }
            | MgrRequest::CreateLock
            | MgrRequest::CreateBarrier { .. }
            | MgrRequest::CreateCond
            | MgrRequest::CondSignal { .. }
            | MgrRequest::CondBroadcast { .. }
            | MgrRequest::Free { .. } => 16,
            MgrRequest::AllocShared { .. } | MgrRequest::AllocStriped { .. } => 24,
            MgrRequest::Acquire { pages, updates, .. }
            | MgrRequest::Release { pages, updates, .. }
            | MgrRequest::BarrierWait { pages, updates, .. }
            | MgrRequest::Exit { pages, updates } => {
                24 + pages.len() * 8 + updates.iter().map(FineUpdate::wire_bytes).sum::<usize>()
            }
            MgrRequest::CondWait { pages, updates, .. } => {
                32 + pages.len() * 8 + updates.iter().map(FineUpdate::wire_bytes).sum::<usize>()
            }
        }
    }
}

impl MgrResponse {
    /// Approximate wire payload for the cost model.
    pub fn wire_bytes(&self) -> usize {
        match self {
            MgrResponse::Registered { .. } | MgrResponse::Ok | MgrResponse::SyncId(_) => 16,
            MgrResponse::Addr(_) => 16,
            MgrResponse::Granted { notices, watermark: _ }
            | MgrResponse::BarrierReleased { notices, watermark: _ } => {
                16 + notices.iter().map(WriteNotice::wire_bytes).sum::<usize>()
            }
            MgrResponse::Err(_) => 16,
        }
    }
}

impl Msg {
    /// Approximate wire payload for the cost model.
    pub fn wire_bytes(&self) -> usize {
        match self {
            Msg::MemReq { req, .. } => req.wire_bytes(),
            Msg::MemResp { resp, .. } => resp.wire_bytes(),
            Msg::MgrReq { req, .. } => req.wire_bytes(),
            Msg::MgrResp { resp, .. } => resp.wire_bytes(),
            Msg::MgrLog { records } => {
                16 + records.iter().map(MgrLogRecord::wire_bytes).sum::<usize>()
            }
            Msg::MgrLogAck { .. } => 16,
            Msg::Shutdown => 8,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sync_requests_charge_for_page_lists() {
        let small = MgrRequest::Acquire { lock: 0, pages: vec![], updates: vec![], last_seen: 0 };
        let big =
            MgrRequest::Acquire { lock: 0, pages: vec![0; 100], updates: vec![], last_seen: 0 };
        assert_eq!(big.wire_bytes() - small.wire_bytes(), 800);
    }

    #[test]
    fn responses_charge_for_notices() {
        let empty = MgrResponse::Granted { notices: vec![], watermark: 0 };
        let loaded = MgrResponse::Granted {
            notices: vec![WriteNotice { seq: 1, writer: 0, pages: vec![1, 2, 3], updates: vec![] }],
            watermark: 1,
        };
        assert_eq!(loaded.wire_bytes() - empty.wire_bytes(), 16 + 24);
    }

    #[test]
    fn mgr_errors_are_fixed_size_with_full_diagnostics() {
        // The error payload is a fixed-size Copy value on the wire…
        let e = MgrError::SharedExhausted { size: 4096 };
        assert_eq!(MgrResponse::Err(e).wire_bytes(), 16);
        // …but still renders the complete diagnostic on demand.
        assert_eq!(e.to_string(), "shared zone exhausted (4096 bytes)");
        assert_eq!(
            MgrError::StripedExhausted { size: 99 }.to_string(),
            "striped region exhausted (99 bytes)"
        );
        let bad = MgrError::BadFree { addr: 0x1000, region: Region::Reserved };
        assert_eq!(bad.to_string(), "free of 0x1000 in Reserved: not a live manager allocation");
    }

    #[test]
    fn log_records_charge_for_embedded_requests() {
        let req =
            MgrRequest::Acquire { lock: 0, pages: vec![0; 10], updates: vec![], last_seen: 0 };
        let req_wire = req.wire_bytes();
        let rec = MgrLogRecord {
            seq: 1,
            op: MgrLogOp::Request {
                src: EndpointId(3),
                tid: 0,
                token: 7,
                req,
                arrival: SimTime::ZERO,
            },
        };
        assert_eq!(rec.wire_bytes(), 32 + req_wire);
        let sweep = MgrLogRecord { seq: 2, op: MgrLogOp::ReclaimExpired { now: SimTime::ZERO } };
        assert_eq!(sweep.wire_bytes(), 24);
        let batch_wire = Msg::MgrLog { records: vec![rec, sweep] }.wire_bytes();
        assert_eq!(batch_wire, 16 + 32 + req_wire + 24);
        assert_eq!(Msg::MgrLogAck { upto: 9 }.wire_bytes(), 16);
    }

    #[test]
    fn new_mgr_errors_are_fixed_size_with_full_diagnostics() {
        for (e, text) in [
            (MgrError::UnknownLock { lock: 3 }, "unknown lock id 3"),
            (MgrError::UnknownBarrier { barrier: 4 }, "unknown barrier id 4"),
            (MgrError::UnknownCond { cond: 5 }, "unknown condition variable id 5"),
            (MgrError::NotHolder { lock: 1, tid: 2 }, "release of lock 1 not held by thread 2"),
            (MgrError::Unregistered { tid: 9 }, "thread 9 is not registered"),
        ] {
            assert_eq!(MgrResponse::Err(e).wire_bytes(), 16);
            assert_eq!(e.to_string(), text);
        }
    }

    #[test]
    fn msg_delegates_to_payload() {
        let req = MgrRequest::Register { observer: false };
        let wire = req.wire_bytes();
        assert_eq!(Msg::MgrReq { token: 1, tid: 2, req }.wire_bytes(), wire);
        let mreq = MemRequest::FetchPage { page: samhita_mem::PageId(0) };
        let mwire = mreq.wire_bytes();
        assert_eq!(Msg::MemReq { token: 1, shadow: true, req: mreq }.wire_bytes(), mwire);
        assert_eq!(Msg::Shutdown.wire_bytes(), 8);
    }
}
