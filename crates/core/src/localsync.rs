//! Single-node manager bypass (§V of the paper).
//!
//! "Samhita on a single node system can avoid contacting the manager for
//! synchronization and reduce the overhead associated with contacting the
//! manager during synchronization." When every compute thread shares one
//! cache-coherent node, lock and barrier handoffs can be a local atomic
//! operation instead of two fabric crossings plus manager service time.
//!
//! This module implements that optimization: a process-local synchronization
//! core shared by all compute threads of one system. The *consistency* side
//! of RegC is unchanged — flushes still travel to the memory servers, write
//! notices are still published and delivered — only the synchronization
//! *transport* is replaced, with [`crate::config::CostParams::local_sync_ns`]
//! charged per operation. Condition variables keep using the manager (they
//! are not on any benchmark's critical path).
//!
//! Virtual clocks combine exactly as the manager would combine them: a lock
//! grant never precedes the previous holder's release, and a barrier
//! releases at the maximum arrival clock.

use parking_lot::{Condvar, Mutex};
use samhita_regc::{FineUpdate, IntervalLog, WriteNotice};
use samhita_sched::{Scheduler, TaskRef};
use samhita_scl::SimTime;

struct LocalLock {
    held: bool,
    free_at: SimTime,
    /// Deterministic-scheduler tasks blocked on this lock. The releaser
    /// wakes all of them at `free_at`; the scheduler's seeded virtual-time
    /// tie-break then decides the (reproducible) grant order.
    det_waiters: Vec<TaskRef>,
}

struct LocalBarrier {
    parties: u32,
    arrived: u32,
    epoch: u64,
    max_clock: SimTime,
    release_at: SimTime,
    /// Deterministic-scheduler tasks blocked on this episode; the last
    /// arrival wakes all of them at the release time.
    det_waiters: Vec<TaskRef>,
}

struct Inner {
    intervals: IntervalLog,
    locks: Vec<LocalLock>,
    barriers: Vec<LocalBarrier>,
    stats: LocalSyncStats,
}

/// Handoff accounting for the local synchronization core — the bypass-mode
/// analogue of the manager's queue-wait counters. Purely observational:
/// reading or resetting it never moves a virtual clock.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct LocalSyncStats {
    /// Lock grants handed out.
    pub acquires: u64,
    /// Grants that had to wait for the previous holder (`free_at > now`).
    pub contended_acquires: u64,
    /// Σ virtual time grants waited behind the previous holder's release
    /// (`free_at − now` over contended grants) — the local-sync equivalent
    /// of manager queue wait.
    pub handoff_wait_ns: u64,
}

/// Process-local synchronization core (one per system when
/// `manager_bypass` is enabled).
pub struct LocalSync {
    cost: SimTime,
    inner: Mutex<Inner>,
    cv: Condvar,
}

impl LocalSync {
    /// A core charging `cost_ns` per synchronization operation.
    pub fn new(cost_ns: u64) -> Self {
        LocalSync {
            cost: SimTime::from_ns(cost_ns),
            inner: Mutex::new(Inner {
                intervals: IntervalLog::new(),
                locks: Vec::new(),
                barriers: Vec::new(),
                stats: LocalSyncStats::default(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Create a lock, returning its id. Ids are shared with the manager's
    /// id space by construction: the system creates every sync object in
    /// both places so handles stay interchangeable.
    pub fn create_lock(&self) -> u32 {
        let mut g = self.inner.lock();
        g.locks.push(LocalLock { held: false, free_at: SimTime::ZERO, det_waiters: Vec::new() });
        (g.locks.len() - 1) as u32
    }

    /// Create a barrier over `parties` threads, returning its id.
    pub fn create_barrier(&self, parties: u32) -> u32 {
        assert!(parties >= 1, "barrier over zero parties");
        let mut g = self.inner.lock();
        g.barriers.push(LocalBarrier {
            parties,
            arrived: 0,
            epoch: 0,
            max_clock: SimTime::ZERO,
            release_at: SimTime::ZERO,
            det_waiters: Vec::new(),
        });
        (g.barriers.len() - 1) as u32
    }

    /// Acquire `lock`, publishing `pages` as this thread's flush interval.
    /// Blocks (physically) until the lock is free. Returns the virtual grant
    /// time plus unseen write notices.
    pub fn acquire(
        &self,
        lock: u32,
        tid: u32,
        now: SimTime,
        pages: Vec<u64>,
        updates: Vec<FineUpdate>,
        last_seen: u64,
    ) -> (SimTime, Vec<WriteNotice>, u64) {
        let mut g = self.inner.lock();
        g.intervals.publish(tid, pages, updates);
        if let Some(task) = Scheduler::current() {
            // Deterministic path: park instead of condvar-waiting; the
            // releaser wakes every waiter at its free_at, and the seeded
            // virtual-time tie-break decides who re-acquires first. Losers
            // (and barging fresh arrivals that run earlier in virtual time)
            // simply re-register and park again.
            while g.locks[lock as usize].held {
                g.locks[lock as usize].det_waiters.push(task.clone());
                drop(g);
                task.park();
                g = self.inner.lock();
            }
        } else {
            while g.locks[lock as usize].held {
                self.cv.wait(&mut g);
            }
        }
        let l = &mut g.locks[lock as usize];
        l.held = true;
        let at = now.max(l.free_at) + self.cost;
        let free_at = l.free_at;
        g.stats.acquires += 1;
        if free_at > now {
            g.stats.contended_acquires += 1;
            g.stats.handoff_wait_ns += (free_at - now).as_ns();
        }
        let notices = g.intervals.since(last_seen);
        let watermark = g.intervals.watermark();
        (at, notices, watermark)
    }

    /// Handoff accounting so far.
    pub fn stats(&self) -> LocalSyncStats {
        self.inner.lock().stats
    }

    /// Reset the handoff accounting between runs.
    pub fn reset_stats(&self) {
        self.inner.lock().stats = LocalSyncStats::default();
    }

    /// Release `lock` at virtual time `now`, publishing `pages`.
    pub fn release(
        &self,
        lock: u32,
        tid: u32,
        now: SimTime,
        pages: Vec<u64>,
        updates: Vec<FineUpdate>,
    ) {
        let mut g = self.inner.lock();
        g.intervals.publish(tid, pages, updates);
        let l = &mut g.locks[lock as usize];
        assert!(l.held, "release of an unheld lock");
        l.held = false;
        l.free_at = now + self.cost;
        let free_at = l.free_at;
        let waiters = std::mem::take(&mut l.det_waiters);
        drop(g);
        for w in waiters {
            w.wake_at(free_at.as_ns());
        }
        self.cv.notify_all();
    }

    /// Publish a final flush interval without any synchronization (thread
    /// departure).
    pub fn publish_final(&self, tid: u32, pages: Vec<u64>, updates: Vec<FineUpdate>) {
        self.inner.lock().intervals.publish(tid, pages, updates);
    }

    /// Enter `barrier` at virtual time `now`, publishing `pages`. Blocks
    /// until all parties arrive. Returns the virtual release time plus
    /// unseen write notices.
    pub fn barrier_wait(
        &self,
        barrier: u32,
        tid: u32,
        now: SimTime,
        pages: Vec<u64>,
        updates: Vec<FineUpdate>,
        last_seen: u64,
    ) -> (SimTime, Vec<WriteNotice>, u64) {
        let mut g = self.inner.lock();
        g.intervals.publish(tid, pages, updates);
        let idx = barrier as usize;
        let my_epoch = g.barriers[idx].epoch;
        let mut released = Vec::new();
        {
            let b = &mut g.barriers[idx];
            b.max_clock = b.max_clock.max(now);
            b.arrived += 1;
            if b.arrived == b.parties {
                b.release_at = b.max_clock + self.cost;
                b.epoch += 1;
                b.arrived = 0;
                b.max_clock = SimTime::ZERO;
                released = std::mem::take(&mut b.det_waiters);
            }
        }
        if g.barriers[idx].epoch == my_epoch {
            // Not released yet: wait for the epoch to advance.
            if let Some(task) = Scheduler::current() {
                // The epoch re-check absorbs spurious wake-ups (a fabric
                // delivery targeting this task while it waits here).
                while g.barriers[idx].epoch == my_epoch {
                    g.barriers[idx].det_waiters.push(task.clone());
                    drop(g);
                    task.park();
                    g = self.inner.lock();
                }
            } else {
                while g.barriers[idx].epoch == my_epoch {
                    self.cv.wait(&mut g);
                }
            }
        } else {
            // Last arrival: release everyone and continue without yielding
            // (its own return time is the release time anyway).
            let release_ns = g.barriers[idx].release_at.as_ns();
            drop(g);
            for w in released {
                w.wake_at(release_ns);
            }
            self.cv.notify_all();
            g = self.inner.lock();
        }
        let at = g.barriers[idx].release_at;
        let notices = g.intervals.since(last_seen);
        let watermark = g.intervals.watermark();
        (at, notices, watermark)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_grant_never_precedes_previous_release() {
        let s = LocalSync::new(100);
        let l = s.create_lock();
        let (at1, _, _) = s.acquire(l, 0, SimTime::from_ns(1000), vec![], vec![], 0);
        assert_eq!(at1, SimTime::from_ns(1100));
        s.release(l, 0, SimTime::from_ns(5000), vec![1], vec![]);
        // A thread whose clock is behind the release still sees a grant
        // after the release.
        let (at2, notices, wm) = s.acquire(l, 1, SimTime::from_ns(2000), vec![], vec![], 0);
        assert_eq!(at2, SimTime::from_ns(5100 + 100));
        assert_eq!(notices.len(), 1);
        assert_eq!(notices[0].pages, vec![1]);
        assert_eq!(wm, 1);
    }

    #[test]
    fn barrier_releases_at_max_clock_across_threads() {
        let s = Arc::new(LocalSync::new(50));
        let b = s.create_barrier(4);
        let handles: Vec<_> = (0..4u32)
            .map(|tid| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let now = SimTime::from_ns(1000 * (tid as u64 + 1));
                    let (at, _, _) = s.barrier_wait(b, tid, now, vec![tid as u64], vec![], 0);
                    at
                })
            })
            .collect();
        let times: Vec<SimTime> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(times.iter().all(|&t| t == SimTime::from_ns(4050)), "{times:?}");
    }

    #[test]
    fn barrier_delivers_all_notices_once_per_episode() {
        let s = Arc::new(LocalSync::new(50));
        let b = s.create_barrier(2);
        let s2 = Arc::clone(&s);
        let h = std::thread::spawn(move || {
            s2.barrier_wait(b, 1, SimTime::ZERO, vec![10, 11], vec![], 0)
        });
        let (_, notices, wm) = s.barrier_wait(b, 0, SimTime::ZERO, vec![20], vec![], 0);
        let (_, notices2, wm2) = h.join().unwrap();
        assert_eq!(notices.len(), 2);
        assert_eq!(notices2.len(), 2);
        assert_eq!(wm, 2);
        assert_eq!(wm2, 2);
        // Second episode: carrying the watermark forward yields only new
        // notices.
        let s2 = Arc::clone(&s);
        let h =
            std::thread::spawn(move || s2.barrier_wait(b, 1, SimTime::ZERO, vec![], vec![], wm));
        let (_, notices, _) = s.barrier_wait(b, 0, SimTime::ZERO, vec![30], vec![], wm);
        let (_, notices2, _) = h.join().unwrap();
        assert_eq!(notices.len(), 1);
        assert_eq!(notices2.len(), 1);
        assert_eq!(notices[0].pages, vec![30]);
    }

    #[test]
    fn mutual_exclusion_holds_physically() {
        let s = Arc::new(LocalSync::new(10));
        let l = s.create_lock();
        let counter = Arc::new(parking_lot::Mutex::new((0u64, false)));
        let handles: Vec<_> = (0..8u32)
            .map(|tid| {
                let s = Arc::clone(&s);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        let (at, _, _) = s.acquire(l, tid, SimTime::from_ns(i), vec![], vec![], 0);
                        {
                            let mut g = counter.lock();
                            assert!(!g.1, "two threads inside the critical section");
                            g.1 = true;
                            g.0 += 1;
                            g.1 = false;
                        }
                        s.release(l, tid, at + SimTime::from_ns(5), vec![], vec![]);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.lock().0, 800);
    }

    #[test]
    #[should_panic(expected = "unheld lock")]
    fn release_unheld_panics() {
        let s = LocalSync::new(10);
        let l = s.create_lock();
        s.release(l, 0, SimTime::ZERO, vec![], vec![]);
    }
}
