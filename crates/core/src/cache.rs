//! The per-thread software cache.
//!
//! Each compute thread accesses the shared global address space exclusively
//! through this cache. Geometry follows the paper: the unit of *fetch* is a
//! cache line of multiple pages (amortizing fabric latency for spatially
//! local applications), while the unit of *consistency* — twins, diffs,
//! invalidation — is the page.
//!
//! The cache owns the RegC page protocol: [`SoftCache::write_page`] applies
//! [`samhita_regc::protocol`] transitions (twin creation, fine-grain
//! logging decisions, twin write-through), and [`SoftCache::flush_page`]
//! produces the diff to ship home at synchronization operations.
//!
//! Eviction implements the paper's "biased towards pages that have been
//! written to" policy ([`EvictionPolicy::DirtyFirst`]) with plain LRU as the
//! ablation baseline.

use std::collections::HashMap;

use samhita_regc::{protocol, Diff, PageState, RegionKind};

use crate::config::EvictionPolicy;

/// Per-page bookkeeping within a resident line.
#[derive(Clone, Debug)]
pub struct PageSlot {
    /// Protocol state.
    pub state: PageState,
    /// Pristine copy made on the first ordinary-region write.
    pub twin: Option<Vec<u8>>,
    /// Home version at fetch time (diagnostics / staleness checks).
    pub version: u64,
}

/// One resident cache line: `line_pages` consecutive pages.
#[derive(Clone, Debug)]
pub struct CacheLine {
    /// Global page number of the first page in the line.
    pub first_page: u64,
    /// LRU stamp.
    last_use: u64,
    slots: Vec<PageSlot>,
    data: Vec<u8>,
}

impl CacheLine {
    /// Slot and data of page index `idx` within the line, split-borrowed.
    fn page_parts_mut(&mut self, idx: usize, page_size: usize) -> (&mut PageSlot, &mut [u8]) {
        let data = &mut self.data[idx * page_size..(idx + 1) * page_size];
        (&mut self.slots[idx], data)
    }

    /// Data of page index `idx`.
    fn page_data(&self, idx: usize, page_size: usize) -> &[u8] {
        &self.data[idx * page_size..(idx + 1) * page_size]
    }

    /// True when any page of the line is dirty.
    pub fn has_dirty(&self) -> bool {
        self.slots.iter().any(|s| s.state == PageState::Dirty)
    }

    /// Pages of this line in a given state.
    pub fn pages_in_state(&self, state: PageState) -> impl Iterator<Item = u64> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(move |(_, s)| s.state == state)
            .map(move |(i, _)| self.first_page + i as u64)
    }
}

/// What a write did, as reported to the thread context.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WriteOutcome {
    /// The store must be recorded in the fine-grain write set.
    pub log_fine_grain: bool,
    /// A twin was created by this write (statistics).
    pub twin_created: bool,
}

/// The software cache of one compute thread.
#[derive(Debug)]
pub struct SoftCache {
    page_size: usize,
    line_pages: usize,
    capacity_lines: usize,
    policy: EvictionPolicy,
    lines: HashMap<u64, CacheLine>,
    tick: u64,
}

impl SoftCache {
    /// An empty cache.
    ///
    /// # Panics
    /// Panics on degenerate geometry (see [`crate::config::SamhitaConfig::validate`]).
    pub fn new(
        page_size: usize,
        line_pages: usize,
        capacity_lines: usize,
        policy: EvictionPolicy,
    ) -> Self {
        assert!(page_size.is_power_of_two() && page_size >= 64);
        assert!(line_pages >= 1);
        assert!(capacity_lines >= 2);
        SoftCache { page_size, line_pages, capacity_lines, policy, lines: HashMap::new(), tick: 0 }
    }

    /// The line a page belongs to.
    #[inline]
    pub fn line_of(&self, page: u64) -> u64 {
        page / self.line_pages as u64
    }

    /// Pages per line.
    pub fn line_pages(&self) -> usize {
        self.line_pages
    }

    /// Bytes per line.
    pub fn line_bytes(&self) -> usize {
        self.line_pages * self.page_size
    }

    /// Is this line resident?
    pub fn contains_line(&self, line: u64) -> bool {
        self.lines.contains_key(&line)
    }

    /// Protocol state of a page; `None` when its line is not resident.
    pub fn page_state(&self, page: u64) -> Option<PageState> {
        let line = self.lines.get(&self.line_of(page))?;
        let idx = (page - line.first_page) as usize;
        Some(line.slots[idx].state)
    }

    /// Number of resident lines.
    pub fn resident_lines(&self) -> usize {
        self.lines.len()
    }

    /// True when a new line cannot be installed without eviction.
    pub fn is_full(&self) -> bool {
        self.lines.len() >= self.capacity_lines
    }

    /// Bump the LRU stamp of a line (called on every access).
    pub fn touch_line(&mut self, line: u64) {
        self.tick += 1;
        if let Some(l) = self.lines.get_mut(&line) {
            l.last_use = self.tick;
        }
    }

    /// Install a freshly fetched line. All pages enter `Clean`.
    ///
    /// # Panics
    /// Panics if the line is already resident, the cache is full (evict
    /// first), or the payload has the wrong size.
    pub fn install_line(&mut self, line: u64, data: Vec<u8>, versions: Vec<u64>) {
        assert!(!self.contains_line(line), "line {line} already resident");
        assert!(!self.is_full(), "install into a full cache: evict first");
        assert_eq!(data.len(), self.line_bytes(), "line payload size mismatch");
        assert_eq!(versions.len(), self.line_pages, "line version count mismatch");
        self.tick += 1;
        let slots = versions
            .into_iter()
            .map(|version| PageSlot { state: PageState::Clean, twin: None, version })
            .collect();
        self.lines.insert(
            line,
            CacheLine {
                first_page: line * self.line_pages as u64,
                last_use: self.tick,
                slots,
                data,
            },
        );
    }

    /// Re-validate a single page of a resident line with fresh home data
    /// (after an invalidation notice).
    ///
    /// # Panics
    /// Panics if the line is absent, the page is `Dirty`, or the payload has
    /// the wrong size.
    pub fn install_page(&mut self, page: u64, data: &[u8], version: u64) {
        assert_eq!(data.len(), self.page_size, "page payload size mismatch");
        let ps = self.page_size;
        let line_id = self.line_of(page);
        let line = self.lines.get_mut(&line_id).expect("install_page into absent line");
        let idx = (page - line.first_page) as usize;
        let (slot, dst) = line.page_parts_mut(idx, ps);
        assert_ne!(slot.state, PageState::Dirty, "refetch would clobber dirty page");
        dst.copy_from_slice(data);
        slot.state = PageState::Clean;
        slot.twin = None;
        slot.version = version;
    }

    /// Read bytes from a resident, valid page.
    ///
    /// # Panics
    /// Panics if the page is absent or `Invalid` (the fault handler must run
    /// first) or the range overruns the page.
    pub fn read_page(&self, page: u64, offset: usize, out: &mut [u8]) {
        let line = self.lines.get(&self.line_of(page)).expect("read of non-resident page");
        let idx = (page - line.first_page) as usize;
        assert_ne!(line.slots[idx].state, PageState::Invalid, "read of invalid page");
        let data = line.page_data(idx, self.page_size);
        out.copy_from_slice(&data[offset..offset + out.len()]);
    }

    /// Borrow the bytes of a resident, valid page (zero-copy read path).
    ///
    /// # Panics
    /// As [`SoftCache::read_page`].
    pub fn page_bytes(&self, page: u64) -> &[u8] {
        let line = self.lines.get(&self.line_of(page)).expect("read of non-resident page");
        let idx = (page - line.first_page) as usize;
        assert_ne!(line.slots[idx].state, PageState::Invalid, "read of invalid page");
        line.page_data(idx, self.page_size)
    }

    /// Write bytes to a resident, valid page, applying the RegC protocol for
    /// the current region kind. Returns what the caller must do (fine-grain
    /// logging) and what happened (twin creation).
    ///
    /// # Panics
    /// Panics if the page is absent or `Invalid`, or the range overruns the
    /// page.
    pub fn write_page(
        &mut self,
        page: u64,
        offset: usize,
        bytes: &[u8],
        region: RegionKind,
    ) -> WriteOutcome {
        let ps = self.page_size;
        let line_id = self.line_of(page);
        let line = self.lines.get_mut(&line_id).expect("write to non-resident page");
        let idx = (page - line.first_page) as usize;
        let (slot, data) = line.page_parts_mut(idx, ps);
        let effect = protocol::on_write(slot.state, region);
        let mut twin_created = false;
        if effect.make_twin {
            debug_assert!(slot.twin.is_none());
            slot.twin = Some(data.to_vec());
            twin_created = true;
        }
        data[offset..offset + bytes.len()].copy_from_slice(bytes);
        if effect.write_through_twin {
            let twin = slot.twin.as_mut().expect("write-through without twin");
            twin[offset..offset + bytes.len()].copy_from_slice(bytes);
        }
        slot.state = effect.next;
        WriteOutcome { log_fine_grain: effect.log_fine_grain, twin_created }
    }

    /// All currently dirty pages, in unspecified order.
    pub fn dirty_pages(&self) -> Vec<u64> {
        let mut pages: Vec<u64> = self
            .lines
            .values()
            .flat_map(|l| l.pages_in_state(PageState::Dirty).collect::<Vec<_>>())
            .collect();
        pages.sort_unstable();
        pages
    }

    /// Flush one page at a synchronization operation: diff against the twin,
    /// drop the twin, mark the page clean. Returns `None` for clean/invalid
    /// pages and `Some(diff)` (possibly empty) for dirty ones.
    pub fn flush_page(&mut self, page: u64) -> Option<Diff> {
        let ps = self.page_size;
        let line_id = self.line_of(page);
        let line = self.lines.get_mut(&line_id)?;
        let idx = (page - line.first_page) as usize;
        let (slot, data) = line.page_parts_mut(idx, ps);
        if slot.state != PageState::Dirty {
            return None;
        }
        let twin = slot.twin.take().expect("dirty page without twin");
        let diff = Diff::compute(&twin, data);
        slot.state = protocol::after_flush(PageState::Dirty);
        Some(diff)
    }

    /// Take a full copy of a dirty page's bytes and clean it without
    /// diffing (whole-page consistency ablation). Returns `None` for
    /// clean/invalid pages.
    pub fn flush_page_whole(&mut self, page: u64) -> Option<Vec<u8>> {
        let ps = self.page_size;
        let line_id = self.line_of(page);
        let line = self.lines.get_mut(&line_id)?;
        let idx = (page - line.first_page) as usize;
        let (slot, data) = line.page_parts_mut(idx, ps);
        if slot.state != PageState::Dirty {
            return None;
        }
        slot.twin = None;
        slot.state = protocol::after_flush(PageState::Dirty);
        Some(data.to_vec())
    }

    /// Number of `Invalid` pages in a resident line (0 if the line is
    /// absent). Drives batched revalidation: when several pages of one line
    /// were invalidated, one line fetch beats per-page refetches.
    pub fn invalid_pages_in_line(&self, line: u64) -> usize {
        match self.lines.get(&line) {
            Some(l) => l.slots.iter().filter(|s| s.state == PageState::Invalid).count(),
            None => 0,
        }
    }

    /// Refresh a resident line with fresh home data: `Invalid` and `Clean`
    /// pages take the new bytes (home is at least as recent), `Dirty` pages
    /// keep local modifications.
    ///
    /// # Panics
    /// Panics if the line is absent or payload sizes mismatch.
    pub fn refresh_line(&mut self, line: u64, data: &[u8], versions: &[u64]) {
        assert_eq!(data.len(), self.line_bytes(), "line payload size mismatch");
        assert_eq!(versions.len(), self.line_pages, "line version count mismatch");
        let ps = self.page_size;
        let cl = self.lines.get_mut(&line).expect("refresh of absent line");
        for idx in 0..versions.len() {
            let (slot, dst) = cl.page_parts_mut(idx, ps);
            match slot.state {
                PageState::Dirty => {} // keep local writes
                PageState::Invalid | PageState::Clean => {
                    dst.copy_from_slice(&data[idx * ps..(idx + 1) * ps]);
                    slot.state = PageState::Clean;
                    slot.twin = None;
                    slot.version = versions[idx];
                }
            }
        }
    }

    /// Apply a fine-grain update carried by another thread's write notice
    /// to a resident page. Returns `true` when the bytes were applied
    /// (invalid or absent pages are left for demand fetch).
    ///
    /// # Panics
    /// Panics if the page is dirty: updates are only applied at
    /// synchronization points, after the local flush.
    pub fn apply_update(&mut self, page: u64, offset: usize, bytes: &[u8]) -> bool {
        let ps = self.page_size;
        let line_id = self.line_of(page);
        let Some(line) = self.lines.get_mut(&line_id) else {
            return false;
        };
        let idx = (page - line.first_page) as usize;
        let (slot, data) = line.page_parts_mut(idx, ps);
        match slot.state {
            PageState::Invalid => false,
            PageState::Dirty => panic!("fine update applied to an unflushed dirty page"),
            PageState::Clean => {
                data[offset..offset + bytes.len()].copy_from_slice(bytes);
                true
            }
        }
    }

    /// Apply a write notice: invalidate the page if resident. Returns `true`
    /// when something was invalidated.
    ///
    /// # Panics
    /// Panics if the page is still dirty (callers must flush before applying
    /// notices; see [`protocol::on_invalidate`]).
    pub fn invalidate_page(&mut self, page: u64) -> bool {
        let line_id = self.line_of(page);
        let Some(line) = self.lines.get_mut(&line_id) else {
            return false;
        };
        let idx = (page - line.first_page) as usize;
        let slot = &mut line.slots[idx];
        if slot.state == PageState::Invalid {
            return false;
        }
        slot.state = protocol::on_invalidate(slot.state);
        slot.twin = None;
        true
    }

    /// Choose and remove an eviction victim per the configured policy.
    /// Returns `None` when the cache is empty.
    pub fn pop_victim(&mut self) -> Option<(u64, CacheLine)> {
        if self.lines.is_empty() {
            return None;
        }
        let victim = match self.policy {
            EvictionPolicy::Lru => *self
                .lines
                .iter()
                .min_by_key(|(_, l)| l.last_use)
                .map(|(id, _)| id)
                .expect("nonempty"),
            EvictionPolicy::DirtyFirst => {
                // Paper's bias: prefer evicting written-to lines (their
                // updates must be flushed home anyway); LRU among those,
                // falling back to global LRU.
                let dirty_lru = self
                    .lines
                    .iter()
                    .filter(|(_, l)| l.has_dirty())
                    .min_by_key(|(_, l)| l.last_use)
                    .map(|(id, _)| *id);
                dirty_lru.unwrap_or_else(|| {
                    *self
                        .lines
                        .iter()
                        .min_by_key(|(_, l)| l.last_use)
                        .map(|(id, _)| id)
                        .expect("nonempty")
                })
            }
        };
        let line = self.lines.remove(&victim).expect("victim vanished");
        Some((victim, line))
    }

    /// Drain every resident line (used at thread exit after the final
    /// flush, and by tests).
    pub fn drain_lines(&mut self) -> Vec<(u64, CacheLine)> {
        let mut all: Vec<_> = self.lines.drain().collect();
        all.sort_by_key(|&(id, _)| id);
        all
    }

    /// Compute the diffs for all dirty pages of an evicted line. Consumes
    /// the line.
    pub fn diffs_of_evicted(&self, line: CacheLine) -> Vec<(u64, Diff)> {
        let mut out = Vec::new();
        let mut line = line;
        for idx in 0..self.line_pages {
            let page = line.first_page + idx as u64;
            let ps = self.page_size;
            let (slot, data) = line.page_parts_mut(idx, ps);
            if slot.state == PageState::Dirty {
                let twin = slot.twin.take().expect("dirty page without twin");
                let diff = Diff::compute(&twin, data);
                if !diff.is_empty() {
                    out.push((page, diff));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 256;

    fn cache(capacity: usize) -> SoftCache {
        SoftCache::new(PS, 2, capacity, EvictionPolicy::DirtyFirst)
    }

    fn install(c: &mut SoftCache, line: u64) {
        c.install_line(line, vec![0u8; c.line_bytes()], vec![0; c.line_pages()]);
    }

    #[test]
    fn install_and_read() {
        let mut c = cache(4);
        install(&mut c, 0);
        assert!(c.contains_line(0));
        assert_eq!(c.page_state(0), Some(PageState::Clean));
        assert_eq!(c.page_state(1), Some(PageState::Clean));
        assert_eq!(c.page_state(2), None);
        let mut buf = [1u8; 8];
        c.read_page(0, 0, &mut buf);
        assert_eq!(buf, [0u8; 8]);
    }

    #[test]
    fn ordinary_write_creates_twin_and_diff() {
        let mut c = cache(4);
        install(&mut c, 0);
        let out = c.write_page(1, 16, &[7; 8], RegionKind::Ordinary);
        assert!(out.twin_created);
        assert!(!out.log_fine_grain);
        assert_eq!(c.page_state(1), Some(PageState::Dirty));
        assert_eq!(c.dirty_pages(), vec![1]);
        let diff = c.flush_page(1).unwrap();
        assert_eq!(diff.payload_bytes(), 8);
        assert_eq!(c.page_state(1), Some(PageState::Clean));
        assert!(c.flush_page(1).is_none(), "second flush is a no-op");
    }

    #[test]
    fn consistency_write_requests_logging_not_twin() {
        let mut c = cache(4);
        install(&mut c, 0);
        let out = c.write_page(0, 0, &[9; 8], RegionKind::Consistency);
        assert!(out.log_fine_grain);
        assert!(!out.twin_created);
        assert_eq!(c.page_state(0), Some(PageState::Clean));
        assert!(c.dirty_pages().is_empty());
    }

    #[test]
    fn mixed_writes_write_through_twin() {
        let mut c = cache(4);
        install(&mut c, 0);
        c.write_page(0, 0, &[1; 8], RegionKind::Ordinary); // twin created
        let out = c.write_page(0, 64, &[2; 8], RegionKind::Consistency);
        assert!(out.log_fine_grain);
        // The consistency bytes went through the twin, so the flush diff
        // contains only the ordinary write.
        let diff = c.flush_page(0).unwrap();
        assert_eq!(diff.payload_bytes(), 8);
        let mut probe = vec![0u8; PS];
        diff.apply(&mut probe);
        assert_eq!(&probe[0..8], &[1; 8]);
        assert_eq!(&probe[64..72], &[0; 8], "consistency bytes must not be in the diff");
    }

    #[test]
    fn invalidate_and_revalidate() {
        let mut c = cache(4);
        install(&mut c, 0);
        assert!(c.invalidate_page(1));
        assert_eq!(c.page_state(1), Some(PageState::Invalid));
        assert!(!c.invalidate_page(1), "already invalid");
        assert!(!c.invalidate_page(100), "absent pages are a no-op");
        c.install_page(1, &[5u8; PS], 3);
        assert_eq!(c.page_state(1), Some(PageState::Clean));
        let mut b = [0u8; 1];
        c.read_page(1, 10, &mut b);
        assert_eq!(b[0], 5);
    }

    #[test]
    #[should_panic(expected = "loses writes")]
    fn invalidating_dirty_page_panics() {
        let mut c = cache(4);
        install(&mut c, 0);
        c.write_page(0, 0, &[1], RegionKind::Ordinary);
        c.invalidate_page(0);
    }

    #[test]
    fn dirty_first_eviction_prefers_written_lines() {
        let mut c = cache(3);
        install(&mut c, 0);
        install(&mut c, 1);
        install(&mut c, 2);
        // Line 1 is dirty; line 0 is older. DirtyFirst must pick line 1.
        c.write_page(2, 0, &[1], RegionKind::Ordinary); // page 2 = line 1
        c.touch_line(0);
        let (victim, line) = c.pop_victim().unwrap();
        assert_eq!(victim, 1);
        let diffs = c.diffs_of_evicted(line);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].0, 2);
    }

    #[test]
    fn lru_eviction_ignores_dirtiness() {
        let mut c = SoftCache::new(PS, 2, 3, EvictionPolicy::Lru);
        install(&mut c, 0);
        install(&mut c, 1);
        install(&mut c, 2);
        c.write_page(2, 0, &[1], RegionKind::Ordinary);
        c.touch_line(1);
        c.touch_line(2);
        let (victim, _) = c.pop_victim().unwrap();
        assert_eq!(victim, 0, "LRU evicts the oldest line regardless of dirtiness");
    }

    #[test]
    fn capacity_enforced() {
        let mut c = cache(2);
        install(&mut c, 0);
        install(&mut c, 1);
        assert!(c.is_full());
        let (_, line) = c.pop_victim().unwrap();
        assert!(c.diffs_of_evicted(line).is_empty(), "clean eviction ships nothing");
        assert!(!c.is_full());
        install(&mut c, 5);
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_install_panics() {
        let mut c = cache(4);
        install(&mut c, 0);
        install(&mut c, 0);
    }

    #[test]
    #[should_panic(expected = "evict first")]
    fn install_into_full_cache_panics() {
        let mut c = cache(2);
        install(&mut c, 0);
        install(&mut c, 1);
        install(&mut c, 2);
    }

    #[test]
    #[should_panic(expected = "read of invalid page")]
    fn read_of_invalidated_page_panics() {
        let mut c = cache(4);
        install(&mut c, 0);
        c.invalidate_page(0);
        let mut b = [0u8; 1];
        c.read_page(0, 0, &mut b);
    }

    #[test]
    fn drain_returns_everything_sorted() {
        let mut c = cache(4);
        install(&mut c, 3);
        install(&mut c, 1);
        let drained = c.drain_lines();
        assert_eq!(drained.iter().map(|&(id, _)| id).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(c.resident_lines(), 0);
        assert!(c.pop_victim().is_none());
    }

    #[test]
    fn page_bytes_zero_copy_view() {
        let mut c = cache(4);
        install(&mut c, 0);
        c.write_page(0, 4, &[42], RegionKind::Ordinary);
        assert_eq!(c.page_bytes(0)[4], 42);
    }

    #[test]
    fn refresh_line_preserves_dirty_pages() {
        let mut c = cache(4);
        install(&mut c, 0);
        c.invalidate_page(0);
        c.write_page(1, 0, &[9; 8], RegionKind::Ordinary); // dirty
        let fresh = vec![5u8; c.line_bytes()];
        c.refresh_line(0, &fresh, &[7, 7]);
        // Invalid page took the new bytes; dirty page kept local writes.
        assert_eq!(c.page_state(0), Some(PageState::Clean));
        assert_eq!(c.page_bytes(0)[0], 5);
        assert_eq!(c.page_state(1), Some(PageState::Dirty));
        let mut b = [0u8; 8];
        c.read_page(1, 0, &mut b);
        assert_eq!(b, [9; 8]);
    }

    #[test]
    fn apply_update_only_touches_clean_pages() {
        let mut c = cache(4);
        install(&mut c, 0);
        assert!(c.apply_update(0, 16, &[3; 8]));
        assert_eq!(c.page_bytes(0)[16], 3);
        c.invalidate_page(0);
        assert!(!c.apply_update(0, 16, &[4; 8]), "invalid pages wait for demand fetch");
        assert!(!c.apply_update(99, 0, &[1]), "absent pages are a no-op");
    }

    #[test]
    fn invalid_page_counting() {
        let mut c = cache(4);
        install(&mut c, 0);
        assert_eq!(c.invalid_pages_in_line(0), 0);
        c.invalidate_page(0);
        assert_eq!(c.invalid_pages_in_line(0), 1);
        c.invalidate_page(1);
        assert_eq!(c.invalid_pages_in_line(0), 2);
        assert_eq!(c.invalid_pages_in_line(5), 0, "absent line");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const PS: usize = 256;
    const LINE_PAGES: usize = 2;
    const PAGES: u64 = 16;

    #[derive(Clone, Debug)]
    enum Op {
        Write { page: u64, offset: usize, bytes: Vec<u8> },
        Flush,
        Evict,
        Read { page: u64, offset: usize, len: usize },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0..PAGES, 0usize..(PS - 16), proptest::collection::vec(any::<u8>(), 1..16))
                .prop_map(|(page, offset, bytes)| Op::Write { page, offset, bytes }),
            Just(Op::Flush),
            Just(Op::Evict),
            (0..PAGES, 0usize..(PS - 16), 1usize..16).prop_map(|(page, offset, len)| Op::Read {
                page,
                offset,
                len
            }),
        ]
    }

    proptest! {
        /// Single-threaded coherence: a random sequence of writes, flushes,
        /// evictions, and reads through the cache + a simulated "home" must
        /// always read back exactly what a flat reference array holds.
        #[test]
        fn cache_plus_home_equals_flat_memory(
            ops in proptest::collection::vec(op_strategy(), 1..120)
        ) {
            let mut cache = SoftCache::new(PS, LINE_PAGES, 3, EvictionPolicy::DirtyFirst);
            let mut home = vec![vec![0u8; PS]; PAGES as usize];
            let mut reference = vec![0u8; PS * PAGES as usize];

            let ensure = |cache: &mut SoftCache, home: &mut Vec<Vec<u8>>, page: u64| {
                let line = cache.line_of(page);
                if !cache.contains_line(line) {
                    while cache.is_full() {
                        let (_, victim) = cache.pop_victim().expect("full cache");
                        for (p, diff) in cache.diffs_of_evicted(victim) {
                            diff.apply(&mut home[p as usize]);
                        }
                    }
                    let mut data = Vec::with_capacity(PS * LINE_PAGES);
                    let first = line * LINE_PAGES as u64;
                    for i in 0..LINE_PAGES as u64 {
                        data.extend_from_slice(&home[(first + i) as usize]);
                    }
                    cache.install_line(line, data, vec![0; LINE_PAGES]);
                }
                cache.touch_line(line);
            };

            for op in ops {
                match op {
                    Op::Write { page, offset, bytes } => {
                        ensure(&mut cache, &mut home, page);
                        cache.write_page(page, offset, &bytes, RegionKind::Ordinary);
                        let base = page as usize * PS + offset;
                        reference[base..base + bytes.len()].copy_from_slice(&bytes);
                    }
                    Op::Flush => {
                        for page in cache.dirty_pages() {
                            if let Some(diff) = cache.flush_page(page) {
                                diff.apply(&mut home[page as usize]);
                            }
                        }
                    }
                    Op::Evict => {
                        if let Some((_, victim)) = cache.pop_victim() {
                            for (p, diff) in cache.diffs_of_evicted(victim) {
                                diff.apply(&mut home[p as usize]);
                            }
                        }
                    }
                    Op::Read { page, offset, len } => {
                        ensure(&mut cache, &mut home, page);
                        let mut buf = vec![0u8; len];
                        cache.read_page(page, offset, &mut buf);
                        let base = page as usize * PS + offset;
                        prop_assert_eq!(
                            &buf[..],
                            &reference[base..base + len],
                            "page {} offset {} diverged from reference",
                            page,
                            offset
                        );
                    }
                }
            }

            // Final drain: everything must land at the home exactly.
            for page in cache.dirty_pages() {
                if let Some(diff) = cache.flush_page(page) {
                    diff.apply(&mut home[page as usize]);
                }
            }
            for p in 0..PAGES as usize {
                prop_assert_eq!(&home[p][..], &reference[p * PS..(p + 1) * PS], "home page {} diverged", p);
            }
        }
    }
}
