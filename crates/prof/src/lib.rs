//! Host-side self-profiling for the simulator.
//!
//! Everything else in this workspace measures *virtual* time; this crate
//! measures what the simulator itself costs on the host: phase-scoped
//! wall-clock timers, an optional counting global allocator that attributes
//! allocations to the active phase, and a peak-RSS readout. It is the only
//! place host clocks are read on purpose, and it is structurally invisible
//! to virtual time: no simulator code branches on anything recorded here.
//!
//! # Invisibility contract
//!
//! - Profiling is off by default. Disabled, every instrumentation point is a
//!   single relaxed atomic load — no `Instant::now()`, no TLS write.
//! - Nothing in this crate feeds back into the simulation: the counters are
//!   write-only from the simulator's perspective and are read only by the
//!   reporting layer after a run completes.
//! - Enabling or disabling profiling must never change a virtual-time
//!   result, a trace checksum, or a serialized `BenchReport` (minus its
//!   `host` section). `tests/prof.rs` asserts this at P ∈ {1, 8, 64}.
//!
//! # Usage
//!
//! ```
//! samhita_prof::enable(true);
//! {
//!     let _g = samhita_prof::enter(samhita_prof::Phase::RegcDiff);
//!     // ... hot-path work ...
//! }
//! let report = samhita_prof::snapshot();
//! assert!(report.phase(samhita_prof::Phase::RegcDiff).calls >= 1);
//! samhita_prof::enable(false);
//! ```
//!
//! Phase timers are *inclusive*: if phase B runs inside phase A's guard, the
//! span counts toward both. The instrumented phases are chosen not to nest
//! in practice (scheduler step, diffing, batch apply, channel send/recv,
//! trace emit, span-graph build), so the per-phase table reads as a flat
//! breakdown.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering::Relaxed};
use std::time::Instant;

/// A profiled hot-path phase. Discriminants are slot indices into the
/// global counter table; slot 0 is reserved for "no active phase" so that
/// allocator attribution can fall through to an `other` bucket.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// One scheduler grant decision (`Scheduler::pick`).
    SchedStep = 1,
    /// Word-granularity twin/current diffing (`Diff::compute`).
    RegcDiff = 2,
    /// Applying an `UpdateBatch` at a memory server.
    BatchApply = 3,
    /// Fabric message send (delay model + delivery).
    ChannelSend = 4,
    /// Deterministic endpoint receive (drain + heap ordering).
    ChannelRecv = 5,
    /// Trace-event construction and ring-buffer push.
    TraceEvent = 6,
    /// Span-graph and critical-path construction from a finished trace.
    SpanGraph = 7,
}

/// Number of counter slots: one per phase plus the `other` bucket at 0.
const NUM_SLOTS: usize = 8;

impl Phase {
    /// All phases, in slot order.
    pub const ALL: [Phase; 7] = [
        Phase::SchedStep,
        Phase::RegcDiff,
        Phase::BatchApply,
        Phase::ChannelSend,
        Phase::ChannelRecv,
        Phase::TraceEvent,
        Phase::SpanGraph,
    ];

    /// Stable snake_case label, used in JSON and summary tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::SchedStep => "sched_step",
            Phase::RegcDiff => "regc_diff",
            Phase::BatchApply => "batch_apply",
            Phase::ChannelSend => "channel_send",
            Phase::ChannelRecv => "channel_recv",
            Phase::TraceEvent => "trace_event",
            Phase::SpanGraph => "span_graph",
        }
    }

    /// The phase with `label`, if any.
    pub fn from_label(label: &str) -> Option<Phase> {
        Phase::ALL.into_iter().find(|p| p.label() == label)
    }
}

struct Slot {
    wall_ns: AtomicU64,
    calls: AtomicU64,
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // const used only as array-repeat initializer
const ZERO_SLOT: Slot = Slot {
    wall_ns: AtomicU64::new(0),
    calls: AtomicU64::new(0),
    allocs: AtomicU64::new(0),
    alloc_bytes: AtomicU64::new(0),
};

static SLOTS: [Slot; NUM_SLOTS] = [ZERO_SLOT; NUM_SLOTS];
static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    // Const-initialized so reading it never allocates — the counting
    // allocator consults this from inside `GlobalAlloc::alloc`.
    static CURRENT: std::cell::Cell<u8> = const { std::cell::Cell::new(0) };
}

/// Turn profiling on or off. Off is the default; while off, every
/// instrumentation point costs one relaxed atomic load.
pub fn enable(on: bool) {
    ENABLED.store(on, Relaxed);
}

/// Whether profiling is currently enabled.
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Zero all counters. Call between runs while no [`PhaseGuard`] is live;
/// a guard dropped after a reset adds its full span to the fresh counters.
pub fn reset() {
    for slot in &SLOTS {
        slot.wall_ns.store(0, Relaxed);
        slot.calls.store(0, Relaxed);
        slot.allocs.store(0, Relaxed);
        slot.alloc_bytes.store(0, Relaxed);
    }
}

/// Enter `phase`; the returned guard attributes wall time (and, with the
/// `alloc-count` feature, allocations) to it until dropped. When profiling
/// is disabled this is one relaxed load and the guard is inert.
#[inline]
pub fn enter(phase: Phase) -> PhaseGuard {
    if !ENABLED.load(Relaxed) {
        return PhaseGuard { start: None, slot: 0, prev: 0 };
    }
    let slot = phase as u8;
    let prev = CURRENT.with(|c| c.replace(slot));
    PhaseGuard { start: Some(Instant::now()), slot, prev }
}

/// RAII scope for one phase; see [`enter`].
#[must_use = "a PhaseGuard records its span when dropped"]
pub struct PhaseGuard {
    start: Option<Instant>,
    slot: u8,
    prev: u8,
}

impl Drop for PhaseGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            CURRENT.with(|c| c.set(self.prev));
            let slot = &SLOTS[self.slot as usize];
            slot.wall_ns.fetch_add(ns, Relaxed);
            slot.calls.fetch_add(1, Relaxed);
        }
    }
}

/// Counter totals for one phase (or the `other` bucket).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Wall-clock nanoseconds spent inside the phase's guards.
    pub wall_ns: u64,
    /// Guard entries (phase invocations).
    pub calls: u64,
    /// Heap allocations attributed to the phase (`alloc-count` builds only).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl PhaseStat {
    /// Mean wall nanoseconds per call; 0 when never called.
    pub fn ns_per_call(&self) -> f64 {
        if self.calls == 0 {
            0.0
        } else {
            self.wall_ns as f64 / self.calls as f64
        }
    }
}

/// A point-in-time copy of all profiling counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HostReport {
    /// Per-phase totals, in [`Phase::ALL`] order.
    pub phases: Vec<(Phase, PhaseStat)>,
    /// Allocations made while no phase guard was active.
    pub other: PhaseStat,
}

impl HostReport {
    /// The totals for `phase`.
    pub fn phase(&self, phase: Phase) -> PhaseStat {
        self.phases.iter().find(|(p, _)| *p == phase).map(|(_, s)| *s).unwrap_or_default()
    }

    /// Total allocations across all phases plus the `other` bucket.
    pub fn total_allocs(&self) -> u64 {
        self.other.allocs + self.phases.iter().map(|(_, s)| s.allocs).sum::<u64>()
    }

    /// Total wall nanoseconds attributed to tracked phases.
    pub fn tracked_wall_ns(&self) -> u64 {
        self.phases.iter().map(|(_, s)| s.wall_ns).sum()
    }
}

fn read_slot(i: usize) -> PhaseStat {
    let slot = &SLOTS[i];
    PhaseStat {
        wall_ns: slot.wall_ns.load(Relaxed),
        calls: slot.calls.load(Relaxed),
        allocs: slot.allocs.load(Relaxed),
        alloc_bytes: slot.alloc_bytes.load(Relaxed),
    }
}

/// Copy the current counter totals.
pub fn snapshot() -> HostReport {
    HostReport {
        phases: Phase::ALL.into_iter().map(|p| (p, read_slot(p as usize))).collect(),
        other: read_slot(0),
    }
}

/// Peak resident set size of this process in bytes, from `VmHWM` in
/// `/proc/self/status`; 0 where that interface is unavailable.
pub fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

#[cfg(feature = "alloc-count")]
mod counting_alloc {
    use super::{Relaxed, ENABLED, SLOTS};
    use std::alloc::{GlobalAlloc, Layout, System};

    /// System-allocator wrapper that attributes allocations to the active
    /// profiling phase. Installed as the global allocator by this crate's
    /// `alloc-count` feature.
    pub struct CountingAlloc;

    #[inline]
    fn record(size: usize) {
        if !ENABLED.load(Relaxed) {
            return;
        }
        // try_with: the TLS slot may already be torn down during thread
        // exit; attribute those stragglers to the `other` bucket.
        let slot = super::CURRENT.try_with(|c| c.get()).unwrap_or(0);
        let slot = &SLOTS[slot as usize];
        slot.allocs.fetch_add(1, Relaxed);
        slot.alloc_bytes.fetch_add(size as u64, Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            record(layout.size());
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            record(new_size);
            System.realloc(ptr, layout, new_size)
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;
}

#[cfg(feature = "alloc-count")]
pub use counting_alloc::CountingAlloc;

#[cfg(test)]
mod tests {
    use super::*;

    // Counter state is process-global, so the tests that depend on it run
    // under one lock to keep `cargo test`'s default parallelism honest.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn disabled_guard_records_nothing() {
        let _l = LOCK.lock().unwrap();
        enable(false);
        reset();
        {
            let _g = enter(Phase::RegcDiff);
            std::hint::black_box(42);
        }
        assert_eq!(snapshot().phase(Phase::RegcDiff), PhaseStat::default());
    }

    #[test]
    fn enabled_guard_accumulates_wall_time_and_calls() {
        let _l = LOCK.lock().unwrap();
        enable(true);
        reset();
        for _ in 0..3 {
            let _g = enter(Phase::BatchApply);
            std::hint::black_box(vec![0u8; 64]);
        }
        let stat = snapshot().phase(Phase::BatchApply);
        enable(false);
        assert_eq!(stat.calls, 3);
        // Instant is monotone; three guard spans cannot sum to zero only on
        // clocks coarser than the guard body, which Linux does not have.
        assert!(stat.wall_ns > 0, "expected nonzero wall time, got {stat:?}");
    }

    #[test]
    fn nested_guards_restore_the_outer_phase() {
        let _l = LOCK.lock().unwrap();
        enable(true);
        reset();
        {
            let _outer = enter(Phase::ChannelSend);
            {
                let _inner = enter(Phase::TraceEvent);
                CURRENT.with(|c| assert_eq!(c.get(), Phase::TraceEvent as u8));
            }
            CURRENT.with(|c| assert_eq!(c.get(), Phase::ChannelSend as u8));
        }
        CURRENT.with(|c| assert_eq!(c.get(), 0));
        let snap = snapshot();
        enable(false);
        assert_eq!(snap.phase(Phase::ChannelSend).calls, 1);
        assert_eq!(snap.phase(Phase::TraceEvent).calls, 1);
    }

    #[test]
    fn reset_zeroes_every_slot() {
        let _l = LOCK.lock().unwrap();
        enable(true);
        {
            let _g = enter(Phase::SchedStep);
        }
        reset();
        enable(false);
        let snap = snapshot();
        for (_, stat) in &snap.phases {
            assert_eq!(*stat, PhaseStat::default());
        }
        assert_eq!(snap.other, PhaseStat::default());
    }

    #[test]
    fn labels_round_trip() {
        for p in Phase::ALL {
            assert_eq!(Phase::from_label(p.label()), Some(p));
        }
        assert_eq!(Phase::from_label("nonsense"), None);
    }

    #[test]
    fn peak_rss_reads_proc_on_linux() {
        let rss = peak_rss_bytes();
        if cfg!(target_os = "linux") {
            assert!(rss > 0, "VmHWM should be readable on Linux");
        }
    }

    #[cfg(feature = "alloc-count")]
    #[test]
    fn allocations_are_attributed_to_the_active_phase() {
        let _l = LOCK.lock().unwrap();
        enable(true);
        reset();
        {
            let _g = enter(Phase::RegcDiff);
            std::hint::black_box(vec![0u8; 4096]);
        }
        let stat = snapshot().phase(Phase::RegcDiff);
        enable(false);
        assert!(stat.allocs >= 1, "expected attributed allocations, got {stat:?}");
        assert!(stat.alloc_bytes >= 4096);
    }
}
