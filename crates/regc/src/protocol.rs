//! The per-page RegC state machine, as pure transition functions.
//!
//! The software cache in `samhita-core` drives real pages through exactly
//! these transitions; keeping the rules here, free of I/O, lets us test the
//! protocol exhaustively and document the subtle cases:
//!
//! * An **ordinary write** to a clean page must create a twin before the
//!   store lands (so the sync-time diff captures exactly the local
//!   modifications).
//! * A **consistency write** is logged in the fine-grain write set and also
//!   applied to the twin *if one exists*: otherwise a later ordinary diff of
//!   the same page would re-send (and possibly resurrect stale values of)
//!   bytes that were already flushed at lock release — the double-propagation
//!   hazard described in `DESIGN.md §7`.
//! * A **flush** (sync operation) diffs dirty pages against their twins,
//!   drops the twins, and leaves the local copy valid-clean.
//! * An **invalidation** (write notice from another thread) marks the page
//!   invalid; the next access demand-fetches the merged copy from home.

use serde::{Deserialize, Serialize};

use crate::region::RegionKind;

/// Cache-resident page states.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Not resident (or invalidated): an access must fetch from home.
    Invalid,
    /// Resident and identical to the home copy as of the fetch.
    Clean,
    /// Resident with local ordinary-region modifications (twin exists).
    Dirty,
}

/// What the cache must do to honor a write, as decided by the protocol.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WriteEffect {
    /// Create a twin (pristine copy) before applying the store.
    pub make_twin: bool,
    /// Record the store in the fine-grain write set.
    pub log_fine_grain: bool,
    /// Mirror the store into the existing twin (consistency-region store to
    /// an already-dirty page; see module docs).
    pub write_through_twin: bool,
    /// State after the write.
    pub next: PageState,
}

/// Decide the effect of a store to a page in state `state` while the thread
/// executes in region `region`. The page must be resident (`Clean` or
/// `Dirty`) — the cache fetches before writing.
///
/// # Panics
/// Panics on a write to an `Invalid` page: the fault handler must run first.
pub fn on_write(state: PageState, region: RegionKind) -> WriteEffect {
    match (state, region) {
        (PageState::Invalid, _) => {
            panic!("write to non-resident page: fault handler must run first")
        }
        (PageState::Clean, RegionKind::Ordinary) => WriteEffect {
            make_twin: true,
            log_fine_grain: false,
            write_through_twin: false,
            next: PageState::Dirty,
        },
        (PageState::Dirty, RegionKind::Ordinary) => WriteEffect {
            make_twin: false,
            log_fine_grain: false,
            write_through_twin: false,
            next: PageState::Dirty,
        },
        (PageState::Clean, RegionKind::Consistency) => WriteEffect {
            // No twin: the write set alone carries the update. The page
            // stays Clean from the ordinary protocol's point of view.
            make_twin: false,
            log_fine_grain: true,
            write_through_twin: false,
            next: PageState::Clean,
        },
        (PageState::Dirty, RegionKind::Consistency) => WriteEffect {
            make_twin: false,
            log_fine_grain: true,
            write_through_twin: true,
            next: PageState::Dirty,
        },
    }
}

/// State after a flush of this page at a synchronization operation. Only
/// dirty pages ship diffs; every resident page stays resident and clean.
pub fn after_flush(state: PageState) -> PageState {
    match state {
        PageState::Invalid => PageState::Invalid,
        PageState::Clean | PageState::Dirty => PageState::Clean,
    }
}

/// State after receiving a write notice from another thread for this page.
///
/// A `Dirty` page receiving a remote notice means concurrent writers shared
/// the page (false sharing): our diff was (or will be) flushed by the same
/// sync operation that delivered the notice, and we must refetch the merged
/// copy before the next access. The caller is responsible for flushing dirty
/// pages *before* applying notices — [`on_invalidate`] panics otherwise.
///
/// # Panics
/// Panics if the page is still `Dirty` (unflushed local writes would be
/// lost).
pub fn on_invalidate(state: PageState) -> PageState {
    match state {
        PageState::Dirty => panic!("invalidation of an unflushed dirty page loses writes"),
        PageState::Invalid | PageState::Clean => PageState::Invalid,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordinary_write_to_clean_page_twins() {
        let e = on_write(PageState::Clean, RegionKind::Ordinary);
        assert!(e.make_twin);
        assert!(!e.log_fine_grain);
        assert_eq!(e.next, PageState::Dirty);
    }

    #[test]
    fn ordinary_write_to_dirty_page_reuses_twin() {
        let e = on_write(PageState::Dirty, RegionKind::Ordinary);
        assert!(!e.make_twin);
        assert_eq!(e.next, PageState::Dirty);
    }

    #[test]
    fn consistency_write_to_clean_page_only_logs() {
        let e = on_write(PageState::Clean, RegionKind::Consistency);
        assert!(!e.make_twin);
        assert!(e.log_fine_grain);
        assert!(!e.write_through_twin);
        assert_eq!(
            e.next,
            PageState::Clean,
            "page must not become dirty: the write set carries the update"
        );
    }

    #[test]
    fn consistency_write_to_dirty_page_writes_through_twin() {
        // The double-propagation hazard: without write-through, the later
        // ordinary diff (current vs twin) would include the consistency
        // store a second time.
        let e = on_write(PageState::Dirty, RegionKind::Consistency);
        assert!(e.log_fine_grain);
        assert!(e.write_through_twin);
        assert_eq!(e.next, PageState::Dirty);
    }

    #[test]
    #[should_panic(expected = "fault handler")]
    fn write_to_invalid_page_panics() {
        on_write(PageState::Invalid, RegionKind::Ordinary);
    }

    #[test]
    fn flush_cleans_resident_pages() {
        assert_eq!(after_flush(PageState::Dirty), PageState::Clean);
        assert_eq!(after_flush(PageState::Clean), PageState::Clean);
        assert_eq!(after_flush(PageState::Invalid), PageState::Invalid);
    }

    #[test]
    fn invalidate_clean_and_invalid() {
        assert_eq!(on_invalidate(PageState::Clean), PageState::Invalid);
        assert_eq!(on_invalidate(PageState::Invalid), PageState::Invalid);
    }

    #[test]
    #[should_panic(expected = "loses writes")]
    fn invalidate_dirty_panics() {
        on_invalidate(PageState::Dirty);
    }

    /// End-to-end check of the double-propagation rule using real byte
    /// buffers: ordinary + consistency writes to one page, flushed in the
    /// paper's order (fine-grain at release, diff at barrier), must leave the
    /// home holding exactly the final values — and the barrier diff must not
    /// contain the consistency-region bytes.
    #[test]
    fn mixed_region_writes_do_not_double_propagate() {
        use crate::diff::Diff;
        use crate::writeset::WriteSet;

        let page_size = 256usize;
        let mut home = vec![0u8; page_size];
        let mut local = home.clone();
        let mut ws = WriteSet::new();

        // Ordinary write: word 0 := 1.
        let e = on_write(PageState::Clean, RegionKind::Ordinary);
        assert!(e.make_twin);
        let mut twin: Option<Vec<u8>> = Some(local.clone());
        local[0] = 1;

        // Consistency write (lock held): word 8 := 2, on the now-dirty page.
        let e = on_write(PageState::Dirty, RegionKind::Consistency);
        assert!(e.log_fine_grain && e.write_through_twin);
        local[8] = 2;
        ws.record(8, &[2]);
        if let Some(t) = twin.as_mut() {
            t[8] = 2;
        }

        // Release: flush fine grain.
        for (_, off, bytes) in ws.drain_per_page(page_size as u64) {
            home[off as usize..off as usize + bytes.len()].copy_from_slice(&bytes);
        }
        // Meanwhile another thread updates word 8 := 9 under the same lock
        // (it acquired after our release; its fine-grain flush lands later).
        home[8] = 9;

        // Barrier: flush the ordinary diff.
        let diff = Diff::compute(twin.as_ref().unwrap(), &local);
        diff.apply(&mut home);

        assert_eq!(home[0], 1, "ordinary write propagated");
        assert_eq!(home[8], 9, "diff must not clobber the later lock-protected update");
    }
}
