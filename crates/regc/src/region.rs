//! Per-thread region tracking.
//!
//! RegC's defining feature: the runtime always knows whether the current
//! thread executes inside a *consistency region* (at least one mutual
//! exclusion variable held) or an *ordinary region*. The paper's LLVM pass
//! determines this statically; here the lock/unlock operations maintain it
//! dynamically, with nesting support.

use serde::{Deserialize, Serialize};

/// The kind of region the thread is currently executing in.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RegionKind {
    /// No mutual-exclusion variable held: page-granularity tracking.
    Ordinary,
    /// Inside a critical section: fine-grain store tracking.
    Consistency,
}

/// Tracks consistency-region nesting for one thread.
#[derive(Clone, Debug, Default)]
pub struct RegionState {
    depth: u32,
    entries: u64,
    max_depth: u32,
}

impl RegionState {
    /// A fresh thread state (ordinary region).
    pub fn new() -> Self {
        Self::default()
    }

    /// The current region kind.
    #[inline]
    pub fn kind(&self) -> RegionKind {
        if self.depth > 0 {
            RegionKind::Consistency
        } else {
            RegionKind::Ordinary
        }
    }

    /// True while inside a consistency region.
    #[inline]
    pub fn in_consistency_region(&self) -> bool {
        self.depth > 0
    }

    /// Enter a consistency region (lock acquired). Nesting is allowed; only
    /// the outermost exit returns the thread to an ordinary region.
    pub fn enter(&mut self) {
        self.depth += 1;
        self.entries += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }

    /// Exit a consistency region (lock released). Returns `true` when this
    /// was the outermost exit — the moment the fine-grain write set must be
    /// flushed.
    ///
    /// # Panics
    /// Panics on exit without a matching enter (an unlock of an unheld
    /// lock, which the manager would also reject).
    pub fn exit(&mut self) -> bool {
        assert!(self.depth > 0, "consistency-region exit without enter");
        self.depth -= 1;
        self.depth == 0
    }

    /// Current nesting depth.
    pub fn depth(&self) -> u32 {
        self.depth
    }

    /// Number of region entries over the thread's lifetime (statistics).
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// Deepest nesting observed (statistics).
    pub fn max_depth(&self) -> u32 {
        self.max_depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_ordinary() {
        let r = RegionState::new();
        assert_eq!(r.kind(), RegionKind::Ordinary);
        assert!(!r.in_consistency_region());
        assert_eq!(r.depth(), 0);
    }

    #[test]
    fn enter_exit_cycle() {
        let mut r = RegionState::new();
        r.enter();
        assert_eq!(r.kind(), RegionKind::Consistency);
        assert!(r.exit());
        assert_eq!(r.kind(), RegionKind::Ordinary);
    }

    #[test]
    fn nesting_only_outermost_exit_flushes() {
        let mut r = RegionState::new();
        r.enter();
        r.enter();
        assert_eq!(r.depth(), 2);
        assert!(!r.exit(), "inner exit must not flush");
        assert_eq!(r.kind(), RegionKind::Consistency);
        assert!(r.exit(), "outermost exit flushes");
        assert_eq!(r.max_depth(), 2);
        assert_eq!(r.entries(), 2);
    }

    #[test]
    #[should_panic(expected = "exit without enter")]
    fn unbalanced_exit_panics() {
        RegionState::new().exit();
    }
}
