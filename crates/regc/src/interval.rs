//! Write-notice intervals.
//!
//! Every flush (lock release, barrier entry, condition wait) closes an
//! *interval* for the flushing thread and publishes a [`WriteNotice`] naming
//! the pages it modified. The manager stores these in a global
//! [`IntervalLog`]; at each acquire/barrier a thread receives all notices it
//! has not yet seen and invalidates its cached copies of pages written by
//! *other* threads. Per-thread high-water marks allow the log to be
//! truncated once every registered thread has seen a prefix.

use serde::{Deserialize, Serialize};

/// A fine-grain (consistency-region) update carried inside a write notice.
///
/// Because consistency-region stores are tracked at data-object granularity,
/// their *data* can travel with the notice: receivers apply the bytes to
/// their cached copy instead of invalidating and refetching the page. This
/// is how "Samhita's synchronization operations move only the minimum
/// amount of data required".
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FineUpdate {
    /// Global page number.
    pub page: u64,
    /// Byte offset within the page.
    pub offset: u32,
    /// The new bytes.
    pub bytes: Vec<u8>,
}

impl FineUpdate {
    /// Wire size estimate (payload + header).
    pub fn wire_bytes(&self) -> usize {
        16 + self.bytes.len()
    }
}

/// One published interval: "thread `writer` modified `pages`" (page
/// granularity ⇒ receivers invalidate) plus carried fine-grain `updates`
/// (object granularity ⇒ receivers apply in place).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WriteNotice {
    /// Global sequence number (monotonically increasing, starting at 1).
    pub seq: u64,
    /// The writing thread.
    pub writer: u32,
    /// Global page numbers modified in ordinary regions.
    pub pages: Vec<u64>,
    /// Fine-grain updates from consistency regions.
    pub updates: Vec<FineUpdate>,
}

impl WriteNotice {
    /// Wire size estimate.
    pub fn wire_bytes(&self) -> usize {
        16 + self.pages.len() * 8 + self.updates.iter().map(FineUpdate::wire_bytes).sum::<usize>()
    }
}

/// The manager's global log of write notices.
#[derive(Clone, Debug, Default)]
pub struct IntervalLog {
    records: Vec<WriteNotice>,
    /// Sequence number of the first retained record minus one (records with
    /// `seq <= base_seq` have been truncated).
    base_seq: u64,
    next_seq: u64,
}

impl IntervalLog {
    /// An empty log; the first published interval gets `seq == 1`.
    pub fn new() -> Self {
        IntervalLog { records: Vec::new(), base_seq: 0, next_seq: 1 }
    }

    /// Publish an interval for `writer`. Empty intervals are skipped (no
    /// notice needed) and return the current sequence watermark.
    pub fn publish(&mut self, writer: u32, pages: Vec<u64>, updates: Vec<FineUpdate>) -> u64 {
        if pages.is_empty() && updates.is_empty() {
            return self.next_seq - 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.records.push(WriteNotice { seq, writer, pages, updates });
        seq
    }

    /// All notices with `seq > last_seen`, in publication order.
    ///
    /// # Panics
    /// Panics if `last_seen` falls before the truncation point — the caller
    /// would silently miss notices, which is a protocol bug.
    pub fn since(&self, last_seen: u64) -> Vec<WriteNotice> {
        assert!(
            last_seen >= self.base_seq,
            "notices before seq {} were truncated (asked for > {})",
            self.base_seq,
            last_seen
        );
        let skip = (last_seen - self.base_seq) as usize;
        self.records[skip.min(self.records.len())..].to_vec()
    }

    /// The highest sequence number published so far.
    pub fn watermark(&self) -> u64 {
        self.next_seq - 1
    }

    /// Drop records already seen by every thread (callers pass the minimum
    /// of all per-thread `last_seen` values).
    pub fn truncate_seen(&mut self, min_last_seen: u64) {
        if min_last_seen <= self.base_seq {
            return;
        }
        let drop = (min_last_seen - self.base_seq) as usize;
        let drop = drop.min(self.records.len());
        self.records.drain(..drop);
        self.base_seq = min_last_seen;
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_assigns_increasing_seqs() {
        let mut log = IntervalLog::new();
        assert_eq!(log.publish(0, vec![1], vec![]), 1);
        assert_eq!(log.publish(1, vec![2], vec![]), 2);
        assert_eq!(log.watermark(), 2);
    }

    #[test]
    fn empty_page_list_publishes_nothing() {
        let mut log = IntervalLog::new();
        assert_eq!(log.publish(0, vec![], vec![]), 0);
        assert!(log.is_empty());
        assert_eq!(log.watermark(), 0);
    }

    #[test]
    fn since_returns_unseen_suffix() {
        let mut log = IntervalLog::new();
        log.publish(0, vec![10], vec![]);
        log.publish(1, vec![20], vec![]);
        log.publish(2, vec![30], vec![]);
        let unseen = log.since(1);
        assert_eq!(unseen.len(), 2);
        assert_eq!(unseen[0].pages, vec![20]);
        assert_eq!(unseen[1].pages, vec![30]);
        assert!(log.since(3).is_empty());
    }

    #[test]
    fn truncation_preserves_since_semantics() {
        let mut log = IntervalLog::new();
        for i in 0..10u64 {
            log.publish(0, vec![i], vec![]);
        }
        log.truncate_seen(4);
        assert_eq!(log.len(), 6);
        let unseen = log.since(4);
        assert_eq!(unseen.len(), 6);
        assert_eq!(unseen[0].seq, 5);
        // Idempotent / non-regressing truncation.
        log.truncate_seen(2);
        assert_eq!(log.len(), 6);
        log.truncate_seen(10);
        assert!(log.is_empty());
        assert_eq!(log.watermark(), 10);
    }

    #[test]
    #[should_panic(expected = "truncated")]
    fn asking_for_truncated_history_panics() {
        let mut log = IntervalLog::new();
        for i in 0..5u64 {
            log.publish(0, vec![i], vec![]);
        }
        log.truncate_seen(3);
        let _ = log.since(1);
    }

    #[test]
    fn writers_recorded() {
        let mut log = IntervalLog::new();
        log.publish(7, vec![1, 2, 3], vec![]);
        let n = &log.since(0)[0];
        assert_eq!(n.writer, 7);
        assert_eq!(n.pages, vec![1, 2, 3]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Under any interleaving of publishes, reads, and truncations at
        /// read watermarks, a reader that tracks its watermark never misses
        /// a notice and never sees one twice.
        #[test]
        fn readers_see_every_notice_exactly_once(
            ops in proptest::collection::vec((0u8..3, 0u32..4, 0u64..64), 1..120)
        ) {
            let mut log = IntervalLog::new();
            let mut last_seen = [0u64; 4];
            let mut seen_counts = [0u64; 4];
            let mut published = 0u64;
            for (kind, who, page) in ops {
                let who = who as usize;
                match kind {
                    0 => {
                        log.publish(who as u32, vec![page], vec![]);
                        published += 1;
                    }
                    1 => {
                        let unseen = log.since(last_seen[who]);
                        for pair in unseen.windows(2) {
                            prop_assert!(pair[0].seq < pair[1].seq, "out of order");
                        }
                        if let Some(first) = unseen.first() {
                            prop_assert_eq!(first.seq, last_seen[who] + 1, "gap in delivery");
                        }
                        seen_counts[who] += unseen.len() as u64;
                        last_seen[who] = log.watermark();
                    }
                    _ => {
                        // Truncate up to the slowest reader: always safe.
                        let floor = *last_seen.iter().min().expect("readers");
                        log.truncate_seen(floor);
                    }
                }
            }
            // Final drain: everyone catches up and has seen exactly
            // `published` notices.
            for who in 0..4 {
                seen_counts[who] += log.since(last_seen[who]).len() as u64;
                prop_assert_eq!(seen_counts[who], published, "reader {} missed notices", who);
            }
        }
    }
}
