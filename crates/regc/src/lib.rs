#![warn(missing_docs)]

//! # Regional consistency (RegC) machinery
//!
//! The paper's memory model divides an application's accesses into
//! **consistency regions** (code executed while holding a mutual-exclusion
//! variable) and **ordinary regions** (everything else), and lets the
//! implementation propagate the two kinds of modification differently:
//!
//! * ordinary-region stores are handled at **page granularity** — the first
//!   store to a clean page makes a *twin* (pristine copy); at the next
//!   synchronization operation the page is compared against its twin and the
//!   resulting [`Diff`] is shipped to the page's home;
//! * consistency-region stores are tracked at **fine (data-object)
//!   granularity** in a [`WriteSet`] — the paper instruments every store in a
//!   consistency region with an LLVM pass; in this reproduction the runtime's
//!   store API plays the role of that instrumentation — and flushed as small
//!   object-level updates at lock release.
//!
//! Multiple concurrent writers to one page are supported (the
//! multiple-writer protocol): each writer's diff covers only the words *it*
//! changed, and the home merges them.
//!
//! Invalidations are driven by **write notices** ([`interval`]): every flush
//! publishes `(interval seq, writer, pages)` records through the manager, and
//! at each acquire/barrier a thread receives all records it has not yet seen
//! and invalidates the named pages it caches (except its own).
//!
//! The [`protocol`] module captures the per-page state machine these rules
//! induce, in a pure, exhaustively-testable form.

pub mod batch;
pub mod diff;
pub mod interval;
pub mod protocol;
pub mod region;
pub mod writeset;

pub use batch::{UpdateBatch, UpdatePart};
pub use diff::Diff;
pub use interval::{FineUpdate, IntervalLog, WriteNotice};
pub use protocol::{PageState, WriteEffect};
pub use region::{RegionKind, RegionState};
pub use writeset::WriteSet;
