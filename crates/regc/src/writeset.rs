//! Fine-grain store logs for consistency regions.
//!
//! Every store executed inside a consistency region is recorded here as
//! `(global address, bytes)`. Overlapping and adjacent records coalesce, so
//! a loop updating one `f64` a thousand times still flushes eight bytes.
//! At lock release the set is drained per page and shipped to the homes as
//! object-level updates — the "fine grain (data object level) updates" of
//! the paper.

use std::collections::BTreeMap;

/// A coalescing log of fine-grain stores, keyed by global byte address.
#[derive(Clone, Debug, Default)]
pub struct WriteSet {
    /// start address -> bytes (ranges are disjoint and non-adjacent).
    ranges: BTreeMap<u64, Vec<u8>>,
}

impl WriteSet {
    /// An empty write set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a store of `data` at global byte address `addr`, merging with
    /// any overlapping or adjacent existing ranges. Later stores win on
    /// overlap (program order within one thread).
    pub fn record(&mut self, addr: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        let mut start = addr;
        let mut buf = data.to_vec();

        // Absorb a predecessor that overlaps or touches [addr, addr+len).
        if let Some((&pstart, pbytes)) = self.ranges.range(..=addr).next_back() {
            let pend = pstart + pbytes.len() as u64;
            if pend >= addr {
                let pbytes = self.ranges.remove(&pstart).expect("range vanished");
                let mut merged = pbytes;
                let overlap_at = (addr - pstart) as usize;
                if overlap_at + buf.len() >= merged.len() {
                    merged.truncate(overlap_at);
                    merged.extend_from_slice(&buf);
                } else {
                    merged[overlap_at..overlap_at + buf.len()].copy_from_slice(&buf);
                }
                start = pstart;
                buf = merged;
            }
        }

        // Absorb successors that start within or adjacent to the new range.
        let mut end = start + buf.len() as u64;
        while let Some((&next, _)) = self.ranges.range(start..=end).next() {
            let nbytes = self.ranges.remove(&next).expect("range vanished");
            let nend = next + nbytes.len() as u64;
            if nend > end {
                let keep_from = (end - next) as usize;
                buf.extend_from_slice(&nbytes[keep_from..]);
                end = nend;
            }
            // Else the successor is fully covered by the new data: dropped.
        }

        self.ranges.insert(start, buf);
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of disjoint ranges.
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// Total payload bytes recorded.
    pub fn payload_bytes(&self) -> usize {
        self.ranges.values().map(Vec::len).sum()
    }

    /// Iterate over `(addr, bytes)` ranges in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[u8])> {
        self.ranges.iter().map(|(&a, b)| (a, b.as_slice()))
    }

    /// The set of pages (given `page_size`) touched by the recorded stores.
    pub fn touched_pages(&self, page_size: u64) -> Vec<u64> {
        let mut pages: Vec<u64> = Vec::new();
        for (addr, bytes) in self.iter() {
            let first = addr / page_size;
            let last = (addr + bytes.len() as u64 - 1) / page_size;
            for p in first..=last {
                if pages.last() != Some(&p) {
                    pages.push(p);
                }
            }
        }
        pages.dedup();
        pages
    }

    /// Drain the set into per-page `(page, page_offset, bytes)` updates,
    /// splitting ranges that cross page boundaries.
    pub fn drain_per_page(&mut self, page_size: u64) -> Vec<(u64, u32, Vec<u8>)> {
        let ranges = std::mem::take(&mut self.ranges);
        let mut out = Vec::new();
        for (addr, bytes) in ranges {
            let mut cursor = 0usize;
            while cursor < bytes.len() {
                let at = addr + cursor as u64;
                let page = at / page_size;
                let off = (at % page_size) as u32;
                let room = (page_size - at % page_size) as usize;
                let take = room.min(bytes.len() - cursor);
                out.push((page, off, bytes[cursor..cursor + take].to_vec()));
                cursor += take;
            }
        }
        out
    }

    /// Discard everything.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_record_and_query() {
        let mut ws = WriteSet::new();
        assert!(ws.is_empty());
        ws.record(100, &[1, 2, 3, 4]);
        assert!(!ws.is_empty());
        assert_eq!(ws.range_count(), 1);
        assert_eq!(ws.payload_bytes(), 4);
    }

    #[test]
    fn repeated_store_coalesces_to_one_range() {
        let mut ws = WriteSet::new();
        for _ in 0..1000 {
            ws.record(64, &7.5f64.to_le_bytes());
        }
        assert_eq!(ws.range_count(), 1);
        assert_eq!(ws.payload_bytes(), 8);
    }

    #[test]
    fn adjacent_ranges_merge() {
        let mut ws = WriteSet::new();
        ws.record(0, &[1; 8]);
        ws.record(8, &[2; 8]);
        assert_eq!(ws.range_count(), 1);
        assert_eq!(ws.payload_bytes(), 16);
        let (addr, bytes) = ws.iter().next().unwrap();
        assert_eq!(addr, 0);
        assert_eq!(&bytes[0..8], &[1; 8]);
        assert_eq!(&bytes[8..16], &[2; 8]);
    }

    #[test]
    fn later_store_wins_on_overlap() {
        let mut ws = WriteSet::new();
        ws.record(0, &[1; 16]);
        ws.record(4, &[2; 4]);
        assert_eq!(ws.range_count(), 1);
        let (_, bytes) = ws.iter().next().unwrap();
        assert_eq!(bytes, &[1, 1, 1, 1, 2, 2, 2, 2, 1, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn new_range_swallows_covered_successors() {
        let mut ws = WriteSet::new();
        ws.record(10, &[1; 4]);
        ws.record(20, &[2; 4]);
        ws.record(0, &[9; 40]);
        assert_eq!(ws.range_count(), 1);
        let (addr, bytes) = ws.iter().next().unwrap();
        assert_eq!(addr, 0);
        assert_eq!(bytes.len(), 40);
        assert!(bytes.iter().all(|&b| b == 9));
    }

    #[test]
    fn partial_overlap_with_successor_keeps_tail() {
        let mut ws = WriteSet::new();
        ws.record(10, &[1; 10]); // [10, 20)
        ws.record(5, &[2; 8]); // [5, 13) — overwrites 10..13, keeps 13..20
        assert_eq!(ws.range_count(), 1);
        let (addr, bytes) = ws.iter().next().unwrap();
        assert_eq!(addr, 5);
        assert_eq!(bytes.len(), 15);
        assert!(bytes[0..8].iter().all(|&b| b == 2));
        assert!(bytes[8..].iter().all(|&b| b == 1));
    }

    #[test]
    fn touched_pages_spans_boundaries() {
        let mut ws = WriteSet::new();
        ws.record(4090, &[1; 12]); // crosses page 0 -> 1 (page size 4096)
        ws.record(9000, &[2; 4]); // page 2
        assert_eq!(ws.touched_pages(4096), vec![0, 1, 2]);
    }

    #[test]
    fn drain_per_page_splits_ranges() {
        let mut ws = WriteSet::new();
        ws.record(4090, &[7; 12]);
        let parts = ws.drain_per_page(4096);
        assert!(ws.is_empty());
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], (0, 4090, vec![7; 6]));
        assert_eq!(parts[1], (1, 0, vec![7; 6]));
    }

    #[test]
    fn clear_empties() {
        let mut ws = WriteSet::new();
        ws.record(0, &[1]);
        ws.clear();
        assert!(ws.is_empty());
        assert_eq!(ws.touched_pages(4096), Vec::<u64>::new());
    }

    #[test]
    fn empty_store_is_a_no_op() {
        let mut ws = WriteSet::new();
        ws.record(42, &[]);
        assert!(ws.is_empty());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Reference model: apply stores to a flat byte array, then compare the
    /// write set's reconstruction against the reference for every recorded
    /// address.
    fn reference_apply(stores: &[(u64, Vec<u8>)], size: usize) -> (Vec<u8>, Vec<bool>) {
        let mut mem = vec![0u8; size];
        let mut written = vec![false; size];
        for (addr, bytes) in stores {
            for (i, &b) in bytes.iter().enumerate() {
                let at = *addr as usize + i;
                mem[at] = b;
                written[at] = true;
            }
        }
        (mem, written)
    }

    proptest! {
        #[test]
        fn writeset_replay_matches_reference(
            stores in proptest::collection::vec(
                (0u64..2000, proptest::collection::vec(any::<u8>(), 1..64)),
                1..64,
            )
        ) {
            const SIZE: usize = 2100;
            let (reference, written) = reference_apply(&stores, SIZE);

            let mut ws = WriteSet::new();
            for (addr, bytes) in &stores {
                ws.record(*addr, bytes);
            }

            // Replay the write set onto a fresh buffer.
            let mut replay = vec![0u8; SIZE];
            let mut covered = vec![false; SIZE];
            for (addr, bytes) in ws.iter() {
                for (i, &b) in bytes.iter().enumerate() {
                    replay[addr as usize + i] = b;
                    covered[addr as usize + i] = true;
                }
            }

            // Every byte the program wrote must be reproduced exactly.
            for at in 0..SIZE {
                if written[at] {
                    prop_assert!(covered[at], "written byte {} not covered", at);
                    prop_assert_eq!(replay[at], reference[at], "byte {} differs", at);
                }
            }
        }

        #[test]
        fn ranges_stay_disjoint_and_sorted(
            stores in proptest::collection::vec(
                (0u64..5000, proptest::collection::vec(any::<u8>(), 1..32)),
                1..80,
            )
        ) {
            let mut ws = WriteSet::new();
            for (addr, bytes) in &stores {
                ws.record(*addr, bytes);
            }
            let ranges: Vec<(u64, usize)> = ws.iter().map(|(a, b)| (a, b.len())).collect();
            for pair in ranges.windows(2) {
                let (a0, l0) = pair[0];
                let (a1, _) = pair[1];
                // Strictly disjoint AND non-adjacent (else they would merge).
                prop_assert!(a0 + (l0 as u64) < a1, "ranges touch: {:?}", pair);
            }
        }

        #[test]
        fn drain_per_page_preserves_bytes(
            stores in proptest::collection::vec(
                (0u64..10000, proptest::collection::vec(any::<u8>(), 1..48)),
                1..40,
            ),
            page_size in prop_oneof![Just(256u64), Just(1024u64), Just(4096u64)],
        ) {
            const SIZE: usize = 10100;
            let (reference, written) = reference_apply(&stores, SIZE);
            let mut ws = WriteSet::new();
            for (addr, bytes) in &stores {
                ws.record(*addr, bytes);
            }
            let mut replay = vec![0u8; SIZE];
            let mut covered = vec![false; SIZE];
            for (page, off, bytes) in ws.drain_per_page(page_size) {
                let base = (page * page_size) as usize + off as usize;
                // No range may cross a page boundary after draining.
                prop_assert!(off as u64 + bytes.len() as u64 <= page_size);
                for (i, &b) in bytes.iter().enumerate() {
                    replay[base + i] = b;
                    covered[base + i] = true;
                }
            }
            for at in 0..SIZE {
                if written[at] {
                    prop_assert!(covered[at]);
                    prop_assert_eq!(replay[at], reference[at]);
                }
            }
        }
    }
}
