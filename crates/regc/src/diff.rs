//! Word-granularity page diffs (the multiple-writer protocol's currency).
//!
//! A [`Diff`] records the byte runs of a page that changed relative to its
//! twin, coalescing adjacent changed words into runs. Diffs from different
//! writers of the same page commute as long as their modified words are
//! disjoint — which RegC guarantees for correctly synchronized programs
//! (conflicting unsynchronized stores to the *same word* are a data race in
//! the source program; like the original system, last-writer-wins applies).

use serde::{Deserialize, Serialize};

/// Comparison granularity in bytes. Diffing whole 8-byte words matches the
/// `f64`/`u64`-dominated workloads of the paper and keeps run tables small.
pub const WORD: usize = 8;

/// One contiguous run of modified bytes within a page.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffRun {
    /// Byte offset of the run within the page.
    pub offset: u32,
    /// The new bytes.
    pub bytes: Vec<u8>,
}

/// The set of modified runs of one page, relative to its twin.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diff {
    runs: Vec<DiffRun>,
}

impl Diff {
    /// Compare `current` against the pristine `twin` and collect changed
    /// words into coalesced runs.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn compute(twin: &[u8], current: &[u8]) -> Diff {
        let _prof = samhita_prof::enter(samhita_prof::Phase::RegcDiff);
        assert_eq!(twin.len(), current.len(), "twin/page size mismatch");
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut open: Option<DiffRun> = None;

        let push_word =
            |runs: &mut Vec<DiffRun>, open: &mut Option<DiffRun>, at: usize, bytes: &[u8]| {
                match open {
                    Some(run) if run.offset as usize + run.bytes.len() == at => {
                        run.bytes.extend_from_slice(bytes);
                    }
                    _ => {
                        if let Some(run) = open.take() {
                            runs.push(run);
                        }
                        *open = Some(DiffRun { offset: at as u32, bytes: bytes.to_vec() });
                    }
                }
            };

        let mut at = 0;
        while at + WORD <= twin.len() {
            if twin[at..at + WORD] != current[at..at + WORD] {
                push_word(&mut runs, &mut open, at, &current[at..at + WORD]);
            }
            at += WORD;
        }
        // Tail shorter than a word (only for odd page sizes).
        if at < twin.len() && twin[at..] != current[at..] {
            push_word(&mut runs, &mut open, at, &current[at..]);
        }
        if let Some(run) = open {
            runs.push(run);
        }
        Diff { runs }
    }

    /// A diff consisting of a single explicit run (used for fine-grain
    /// updates that are already known byte ranges).
    pub fn from_run(offset: u32, bytes: Vec<u8>) -> Diff {
        if bytes.is_empty() {
            return Diff::default();
        }
        Diff { runs: vec![DiffRun { offset, bytes }] }
    }

    /// Apply the runs to `target` (the home's copy of the page).
    ///
    /// # Panics
    /// Panics if a run falls outside `target`.
    pub fn apply(&self, target: &mut [u8]) {
        for run in &self.runs {
            let start = run.offset as usize;
            let end = start + run.bytes.len();
            assert!(end <= target.len(), "diff run out of page bounds");
            target[start..end].copy_from_slice(&run.bytes);
        }
    }

    /// True when no words changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Payload bytes (what travels on the wire, excluding headers).
    pub fn payload_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.bytes.len()).sum()
    }

    /// Wire size estimate: payload plus one (offset,len) header per run.
    pub fn wire_bytes(&self) -> usize {
        self.payload_bytes() + self.runs.len() * 8
    }

    /// Iterate over the runs.
    pub fn runs(&self) -> impl Iterator<Item = &DiffRun> {
        self.runs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(n: usize) -> Vec<u8> {
        vec![0u8; n]
    }

    #[test]
    fn identical_pages_have_empty_diff() {
        let twin = page(4096);
        let cur = twin.clone();
        let d = Diff::compute(&twin, &cur);
        assert!(d.is_empty());
        assert_eq!(d.payload_bytes(), 0);
    }

    #[test]
    fn single_word_change() {
        let twin = page(4096);
        let mut cur = twin.clone();
        cur[16] = 0xAB;
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), WORD);
        let mut target = twin.clone();
        d.apply(&mut target);
        assert_eq!(target, cur);
    }

    #[test]
    fn adjacent_words_coalesce_into_one_run() {
        let twin = page(256);
        let mut cur = twin.clone();
        for b in cur[32..64].iter_mut() {
            *b = 0xFF;
        }
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.payload_bytes(), 32);
    }

    #[test]
    fn disjoint_changes_make_separate_runs() {
        let twin = page(256);
        let mut cur = twin.clone();
        cur[0] = 1;
        cur[128] = 2;
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.run_count(), 2);
    }

    #[test]
    fn multiple_writer_merge_is_union() {
        // Two writers modify disjoint halves of the same page; applying both
        // diffs to the home yields both modifications — the multiple-writer
        // protocol in miniature.
        let home0 = page(4096);
        let mut w1 = home0.clone();
        let mut w2 = home0.clone();
        for b in w1[0..2048].iter_mut() {
            *b = 0x11;
        }
        for b in w2[2048..4096].iter_mut() {
            *b = 0x22;
        }
        let d1 = Diff::compute(&home0, &w1);
        let d2 = Diff::compute(&home0, &w2);
        let mut home = home0.clone();
        d1.apply(&mut home);
        d2.apply(&mut home);
        assert!(home[0..2048].iter().all(|&b| b == 0x11));
        assert!(home[2048..4096].iter().all(|&b| b == 0x22));
        // And merge order does not matter for disjoint diffs.
        let mut home_rev = home0.clone();
        d2.apply(&mut home_rev);
        d1.apply(&mut home_rev);
        assert_eq!(home, home_rev);
    }

    #[test]
    fn odd_sized_tail_is_diffed() {
        let twin = page(20); // 2 words + 4-byte tail
        let mut cur = twin.clone();
        cur[18] = 9;
        let d = Diff::compute(&twin, &cur);
        let mut t = twin.clone();
        d.apply(&mut t);
        assert_eq!(t, cur);
    }

    #[test]
    fn from_run_roundtrip() {
        let d = Diff::from_run(100, vec![1, 2, 3, 4]);
        assert_eq!(d.payload_bytes(), 4);
        let mut t = page(256);
        d.apply(&mut t);
        assert_eq!(&t[100..104], &[1, 2, 3, 4]);
        assert!(Diff::from_run(0, vec![]).is_empty());
    }

    #[test]
    fn wire_bytes_counts_headers() {
        let twin = page(256);
        let mut cur = twin.clone();
        cur[0] = 1;
        cur[100] = 1;
        let d = Diff::compute(&twin, &cur);
        assert_eq!(d.wire_bytes(), d.payload_bytes() + 2 * 8);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mismatched_sizes_panic() {
        let _ = Diff::compute(&page(8), &page(16));
    }

    #[test]
    #[should_panic(expected = "out of page bounds")]
    fn out_of_bounds_apply_panics() {
        let d = Diff::from_run(250, vec![0; 16]);
        let mut t = page(256);
        d.apply(&mut t);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn page_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
        // A twin plus a mutation of it at random word positions.
        (
            proptest::collection::vec(any::<u8>(), 256..=256),
            proptest::collection::vec((0usize..32, any::<u64>()), 0..16),
        )
            .prop_map(|(twin, writes)| {
                let mut cur = twin.clone();
                for (word, value) in writes {
                    cur[word * 8..word * 8 + 8].copy_from_slice(&value.to_le_bytes());
                }
                (twin, cur)
            })
    }

    proptest! {
        /// apply(compute(twin, cur)) over twin reproduces cur exactly.
        #[test]
        fn diff_roundtrip((twin, cur) in page_pair()) {
            let d = Diff::compute(&twin, &cur);
            let mut out = twin.clone();
            d.apply(&mut out);
            prop_assert_eq!(out, cur);
        }

        /// The diff never carries more than the page and is empty iff the
        /// buffers are equal; runs are sorted and non-overlapping.
        #[test]
        fn diff_is_minimal_and_well_formed((twin, cur) in page_pair()) {
            let d = Diff::compute(&twin, &cur);
            prop_assert!(d.payload_bytes() <= twin.len());
            prop_assert_eq!(d.is_empty(), twin == cur);
            let mut prev_end = 0usize;
            for run in d.runs() {
                prop_assert!(run.offset as usize >= prev_end, "runs overlap or unsorted");
                prop_assert!(!run.bytes.is_empty());
                prev_end = run.offset as usize + run.bytes.len();
            }
            prop_assert!(prev_end <= twin.len());
        }

        /// Diffs from writers that touched disjoint words commute.
        #[test]
        fn disjoint_diffs_commute(
            base in proptest::collection::vec(any::<u8>(), 256..=256),
            writes_a in proptest::collection::vec((0usize..16, any::<u64>()), 0..8),
            writes_b in proptest::collection::vec((16usize..32, any::<u64>()), 0..8),
        ) {
            let mut a = base.clone();
            for (w, v) in &writes_a {
                a[w * 8..w * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
            let mut b = base.clone();
            for (w, v) in &writes_b {
                b[w * 8..w * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
            let da = Diff::compute(&base, &a);
            let db = Diff::compute(&base, &b);
            let mut ab = base.clone();
            da.apply(&mut ab);
            db.apply(&mut ab);
            let mut ba = base.clone();
            db.apply(&mut ba);
            da.apply(&mut ba);
            prop_assert_eq!(ab, ba);
        }
    }
}
