//! Batched sync-time updates (one message per destination server).
//!
//! RegC's latency argument is that consistency operations piggyback on
//! synchronization operations — so a release or barrier with N dirty pages
//! must not pay N per-message fabric latencies plus N acknowledgements. An
//! [`UpdateBatch`] coalesces every per-page diff and fine-grain update bound
//! for the *same* memory server into a single message with a single ack:
//! message count per sync operation drops from O(dirty pages) to O(servers).
//!
//! Wire accounting is conservative by construction:
//! [`UpdateBatch::wire_bytes`] is one batch header plus the sum of the
//! parts' individual wire sizes, and each part's wire size equals what the
//! same update would have cost as a standalone message. Diff-byte
//! conservation (thread-side flushed bytes == server-side applied bytes)
//! therefore holds part by part, which is what keeps the trace invariant
//! checker exact under batching.

use serde::{Deserialize, Serialize};

use crate::diff::Diff;

/// One update travelling inside an [`UpdateBatch`].
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdatePart {
    /// An ordinary-region twin diff for one page (multiple-writer protocol).
    Diff {
        /// Global page number.
        page: u64,
        /// The modified runs.
        diff: Diff,
    },
    /// A fine-grain consistency-region update for one page.
    Fine {
        /// Global page number.
        page: u64,
        /// Byte offset within the page.
        offset: u32,
        /// The new bytes.
        bytes: Vec<u8>,
    },
}

impl UpdatePart {
    /// The page this part modifies.
    pub fn page(&self) -> u64 {
        match self {
            UpdatePart::Diff { page, .. } | UpdatePart::Fine { page, .. } => *page,
        }
    }

    /// Payload bytes (what the protocol moves, excluding headers).
    pub fn payload_bytes(&self) -> usize {
        match self {
            UpdatePart::Diff { diff, .. } => diff.payload_bytes(),
            UpdatePart::Fine { bytes, .. } => bytes.len(),
        }
    }

    /// Wire size of this part: identical to what the same update costs as a
    /// standalone `ApplyDiff` / `ApplyFine` message, so batching never hides
    /// bytes from the cost model.
    pub fn wire_bytes(&self) -> usize {
        match self {
            UpdatePart::Diff { diff, .. } => 16 + diff.wire_bytes(),
            UpdatePart::Fine { bytes, .. } => 24 + bytes.len(),
        }
    }
}

/// All updates one flush sends to one memory server, as a single message
/// acknowledged as a single unit.
///
/// A batch is also the unit of idempotency: it travels under one request
/// token, so the server's replay cache re-acks a retransmitted batch without
/// re-applying *any* of its parts.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpdateBatch {
    parts: Vec<UpdatePart>,
}

impl UpdateBatch {
    /// Fixed per-batch header (message framing + part count), in bytes.
    pub const HEADER_BYTES: usize = 16;

    /// An empty batch.
    pub fn new() -> Self {
        UpdateBatch::default()
    }

    /// Append one part (parts are applied in push order).
    pub fn push(&mut self, part: UpdatePart) {
        self.parts.push(part);
    }

    /// Number of parts.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// True when the batch carries nothing.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterate over the parts in application order.
    pub fn parts(&self) -> impl Iterator<Item = &UpdatePart> {
        self.parts.iter()
    }

    /// Consume the batch, yielding the parts in application order.
    pub fn into_parts(self) -> Vec<UpdatePart> {
        self.parts
    }

    /// Total payload bytes across all parts.
    pub fn payload_bytes(&self) -> usize {
        self.parts.iter().map(UpdatePart::payload_bytes).sum()
    }

    /// Wire size: one header plus the sum of the parts' wire sizes.
    pub fn wire_bytes(&self) -> usize {
        Self::HEADER_BYTES + self.parts.iter().map(UpdatePart::wire_bytes).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diff_part(page: u64, offset: u32, bytes: Vec<u8>) -> UpdatePart {
        UpdatePart::Diff { page, diff: Diff::from_run(offset, bytes) }
    }

    #[test]
    fn empty_batch_costs_one_header() {
        let b = UpdateBatch::new();
        assert!(b.is_empty());
        assert_eq!(b.wire_bytes(), UpdateBatch::HEADER_BYTES);
        assert_eq!(b.payload_bytes(), 0);
    }

    #[test]
    fn parts_keep_push_order() {
        let mut b = UpdateBatch::new();
        b.push(diff_part(3, 0, vec![1; 8]));
        b.push(UpdatePart::Fine { page: 5, offset: 16, bytes: vec![2; 4] });
        assert_eq!(b.len(), 2);
        let pages: Vec<u64> = b.parts().map(UpdatePart::page).collect();
        assert_eq!(pages, vec![3, 5]);
        assert_eq!(b.into_parts().len(), 2);
    }

    #[test]
    fn part_wire_matches_standalone_message_costs() {
        // A diff part costs what a standalone ApplyDiff message costs
        // (16 + diff wire), a fine part what ApplyFine costs (24 + payload).
        let d = Diff::from_run(0, vec![0xAB; 24]);
        let dp = UpdatePart::Diff { page: 1, diff: d.clone() };
        assert_eq!(dp.wire_bytes(), 16 + d.wire_bytes());
        assert_eq!(dp.payload_bytes(), 24);
        let fp = UpdatePart::Fine { page: 1, offset: 0, bytes: vec![0; 100] };
        assert_eq!(fp.wire_bytes(), 124);
        assert_eq!(fp.payload_bytes(), 100);
    }

    #[test]
    fn batch_wire_is_header_plus_parts() {
        let mut b = UpdateBatch::new();
        b.push(diff_part(0, 0, vec![1; 16]));
        b.push(UpdatePart::Fine { page: 1, offset: 8, bytes: vec![2; 40] });
        let parts_sum: usize = b.parts().map(UpdatePart::wire_bytes).sum();
        assert_eq!(b.wire_bytes(), UpdateBatch::HEADER_BYTES + parts_sum);
        assert_eq!(b.payload_bytes(), 16 + 40);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn part_strategy() -> impl Strategy<Value = UpdatePart> {
        prop_oneof![
            (0u64..64, 0u32..32, proptest::collection::vec(any::<u8>(), 1..64)).prop_map(
                |(page, word, bytes)| UpdatePart::Diff {
                    page,
                    diff: Diff::from_run(word * 8, bytes),
                }
            ),
            (0u64..64, 0u32..200, proptest::collection::vec(any::<u8>(), 0..64))
                .prop_map(|(page, offset, bytes)| UpdatePart::Fine { page, offset, bytes }),
        ]
    }

    proptest! {
        /// The satellite invariant: a batch's wire size is exactly one
        /// header plus the sum of its components' wire sizes, and its
        /// payload is the sum of the components' payloads — no bytes appear
        /// or vanish by batching.
        #[test]
        fn wire_bytes_is_header_plus_component_sum(
            parts in proptest::collection::vec(part_strategy(), 0..24)
        ) {
            let mut b = UpdateBatch::new();
            let mut wire_sum = 0usize;
            let mut payload_sum = 0usize;
            for p in parts {
                wire_sum += p.wire_bytes();
                payload_sum += p.payload_bytes();
                b.push(p);
            }
            prop_assert_eq!(b.wire_bytes(), UpdateBatch::HEADER_BYTES + wire_sum);
            prop_assert_eq!(b.payload_bytes(), payload_sum);
        }
    }
}
