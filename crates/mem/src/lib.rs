#![warn(missing_docs)]

//! # Memory servers
//!
//! Samhita separates *serving* memory from *consuming* it: memory servers
//! own the backing store of the shared global address space, while compute
//! threads only cache it. This crate provides the server side:
//!
//! * [`store::PageStore`] — a versioned, zero-fill-on-first-touch page store;
//! * [`server::MemoryServer`] — the pure request-processing engine
//!   (fetch line / fetch page / apply diff / apply fine-grain), with a
//!   virtual-time service model so that request bursts queue and hot-spots
//!   are observable;
//! * [`stripe::HomeMap`] — the page→server home mapping, striped at cache
//!   line granularity so that large allocations spread across servers (the
//!   paper's third allocation strategy exists to exploit exactly this).
//!
//! The event loop that binds a `MemoryServer` to an SCL endpoint lives in
//! `samhita-core`; keeping the engine transport-free makes it directly
//! testable.

pub mod page;
pub mod server;
pub mod store;
pub mod stripe;

pub use page::{PageId, DEFAULT_PAGE_SIZE};
pub use server::{MemRequest, MemResponse, MemoryServer, ServerStats, ServiceModel};
pub use store::PageStore;
pub use stripe::HomeMap;
