//! Page identifiers and constants.

use serde::{Deserialize, Serialize};

/// Default page size, matching the 4 KiB host pages the original system
/// managed with `mprotect`.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// A global page number: `global address / page size`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PageId(pub u64);

impl PageId {
    /// The page containing global byte address `addr`.
    #[inline]
    pub fn of_addr(addr: u64, page_size: usize) -> PageId {
        PageId(addr / page_size as u64)
    }

    /// First byte address of this page.
    #[inline]
    pub fn base_addr(self, page_size: usize) -> u64 {
        self.0 * page_size as u64
    }
}

impl From<u64> for PageId {
    fn from(v: u64) -> Self {
        PageId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_page_roundtrip() {
        let ps = DEFAULT_PAGE_SIZE;
        assert_eq!(PageId::of_addr(0, ps), PageId(0));
        assert_eq!(PageId::of_addr(4095, ps), PageId(0));
        assert_eq!(PageId::of_addr(4096, ps), PageId(1));
        assert_eq!(PageId(3).base_addr(ps), 3 * 4096);
    }

    #[test]
    fn works_with_non_default_page_sizes() {
        assert_eq!(PageId::of_addr(1023, 1024), PageId(0));
        assert_eq!(PageId::of_addr(1024, 1024), PageId(1));
        assert_eq!(PageId(2).base_addr(256), 512);
    }
}
