//! The versioned page store backing one memory server.
//!
//! Pages materialize zero-filled on first touch (like anonymous memory) and
//! carry a version counter bumped by every mutation; versions let the cache
//! side detect stale prefetches and make the protocol auditable in tests.

use std::collections::HashMap;

use samhita_regc::Diff;

use crate::page::PageId;

/// One stored page.
#[derive(Clone, Debug)]
pub struct PageFrame {
    bytes: Box<[u8]>,
    version: u64,
}

impl PageFrame {
    fn zeroed(page_size: usize) -> Self {
        PageFrame { bytes: vec![0u8; page_size].into_boxed_slice(), version: 0 }
    }

    /// The page contents.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutation count.
    pub fn version(&self) -> u64 {
        self.version
    }
}

/// All pages homed on one memory server.
#[derive(Debug)]
pub struct PageStore {
    pages: HashMap<PageId, PageFrame>,
    page_size: usize,
}

impl PageStore {
    /// An empty store serving pages of `page_size` bytes.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64 && page_size.is_power_of_two(), "unreasonable page size");
        PageStore { pages: HashMap::new(), page_size }
    }

    /// The configured page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Read a page, materializing it zero-filled if never touched.
    pub fn read(&mut self, id: PageId) -> &PageFrame {
        let ps = self.page_size;
        self.pages.entry(id).or_insert_with(|| PageFrame::zeroed(ps))
    }

    /// Read `count` consecutive pages starting at `first` into one buffer
    /// (a cache-line fetch), returning the buffer and per-page versions.
    pub fn read_line(&mut self, first: PageId, count: usize) -> (Vec<u8>, Vec<u64>) {
        let mut data = Vec::with_capacity(count * self.page_size);
        let mut versions = Vec::with_capacity(count);
        for i in 0..count as u64 {
            let frame = self.read(PageId(first.0 + i));
            versions.push(frame.version());
            data.extend_from_slice(frame.bytes());
        }
        (data, versions)
    }

    /// Apply an ordinary-region diff to a page (multiple-writer merge point).
    /// Returns the new version.
    pub fn apply_diff(&mut self, id: PageId, diff: &Diff) -> u64 {
        let ps = self.page_size;
        let frame = self.pages.entry(id).or_insert_with(|| PageFrame::zeroed(ps));
        diff.apply(&mut frame.bytes);
        frame.version += 1;
        frame.version
    }

    /// Apply a fine-grain (consistency-region) update. Returns the new
    /// version.
    ///
    /// # Panics
    /// Panics if the update overruns the page.
    pub fn apply_fine(&mut self, id: PageId, offset: u32, bytes: &[u8]) -> u64 {
        let ps = self.page_size;
        let frame = self.pages.entry(id).or_insert_with(|| PageFrame::zeroed(ps));
        let start = offset as usize;
        let end = start + bytes.len();
        assert!(end <= ps, "fine-grain update out of page bounds");
        frame.bytes[start..end].copy_from_slice(bytes);
        frame.version += 1;
        frame.version
    }

    /// Overwrite a whole page (used by the whole-page consistency ablation).
    pub fn write_page(&mut self, id: PageId, bytes: &[u8]) -> u64 {
        assert_eq!(bytes.len(), self.page_size, "whole-page write size mismatch");
        let ps = self.page_size;
        let frame = self.pages.entry(id).or_insert_with(|| PageFrame::zeroed(ps));
        frame.bytes.copy_from_slice(bytes);
        frame.version += 1;
        frame.version
    }

    /// Number of materialized pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Bytes of backing store in use.
    pub fn resident_bytes(&self) -> usize {
        self.pages.len() * self.page_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_is_zero_filled() {
        let mut s = PageStore::new(4096);
        let f = s.read(PageId(7));
        assert!(f.bytes().iter().all(|&b| b == 0));
        assert_eq!(f.version(), 0);
        assert_eq!(s.resident_pages(), 1);
    }

    #[test]
    fn read_line_concatenates_pages() {
        let mut s = PageStore::new(256);
        s.apply_fine(PageId(1), 0, &[0xAA; 4]);
        let (data, versions) = s.read_line(PageId(0), 3);
        assert_eq!(data.len(), 3 * 256);
        assert_eq!(&data[256..260], &[0xAA; 4]);
        assert_eq!(versions, vec![0, 1, 0]);
    }

    #[test]
    fn diffs_bump_versions_and_merge() {
        let mut s = PageStore::new(256);
        let base = vec![0u8; 256];
        let mut w1 = base.clone();
        w1[0] = 1;
        let mut w2 = base.clone();
        w2[128] = 2;
        let v1 = s.apply_diff(PageId(0), &Diff::compute(&base, &w1));
        let v2 = s.apply_diff(PageId(0), &Diff::compute(&base, &w2));
        assert_eq!((v1, v2), (1, 2));
        let f = s.read(PageId(0));
        assert_eq!(f.bytes()[0], 1);
        assert_eq!(f.bytes()[128], 2);
    }

    #[test]
    fn fine_grain_updates_land_exactly() {
        let mut s = PageStore::new(4096);
        s.apply_fine(PageId(3), 100, &[9, 8, 7]);
        let f = s.read(PageId(3));
        assert_eq!(&f.bytes()[100..103], &[9, 8, 7]);
        assert_eq!(f.bytes()[99], 0);
        assert_eq!(f.bytes()[103], 0);
    }

    #[test]
    fn whole_page_write() {
        let mut s = PageStore::new(256);
        s.write_page(PageId(0), &[5u8; 256]);
        assert!(s.read(PageId(0)).bytes().iter().all(|&b| b == 5));
        assert_eq!(s.resident_bytes(), 256);
    }

    #[test]
    #[should_panic(expected = "out of page bounds")]
    fn fine_grain_overrun_panics() {
        let mut s = PageStore::new(256);
        s.apply_fine(PageId(0), 250, &[0; 16]);
    }

    #[test]
    #[should_panic(expected = "unreasonable page size")]
    fn bad_page_size_rejected() {
        let _ = PageStore::new(1000);
    }
}
