//! The memory-server request engine.
//!
//! [`MemoryServer::handle`] is a pure function of (request, virtual arrival
//! time) → (response, virtual completion time). Service time follows a
//! simple DRAM-path model: a fixed per-request cost plus a per-byte cost,
//! reserved on a [`VirtualResource`] so concurrent requesters queue — this
//! is where single-server hot-spots come from. The SCL event loop that feeds
//! this engine lives in `samhita-core`.

use samhita_regc::{Diff, UpdateBatch, UpdatePart};
use samhita_scl::{QueueSample, SimTime, VirtualResource};
use serde::{Deserialize, Serialize};

use crate::page::PageId;
use crate::store::PageStore;

/// Requests a memory server understands.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // payloads are described on each variant
pub enum MemRequest {
    /// Fetch `pages` consecutive pages starting at `first` (a cache line).
    FetchLine { first: PageId, pages: u32 },
    /// Fetch a single page (revalidation after an invalidation notice).
    FetchPage { page: PageId },
    /// Apply an ordinary-region diff (sync-time flush or eviction).
    ApplyDiff { page: PageId, diff: Diff },
    /// Apply a fine-grain consistency-region update.
    ApplyFine { page: PageId, offset: u32, bytes: Vec<u8> },
    /// Overwrite a whole page (whole-page consistency ablation).
    WritePage { page: PageId, bytes: Vec<u8> },
    /// Apply a whole sync-time flush bound for this server as one message:
    /// all parts are applied atomically (in order, under one request token)
    /// and acknowledged with a single [`MemResponse::BatchAck`].
    UpdateBatch { batch: UpdateBatch },
}

impl MemRequest {
    /// Short operation label, for trace events.
    pub fn label(&self) -> &'static str {
        match self {
            MemRequest::FetchLine { .. } => "fetch-line",
            MemRequest::FetchPage { .. } => "fetch-page",
            MemRequest::ApplyDiff { .. } => "apply-diff",
            MemRequest::ApplyFine { .. } => "apply-fine",
            MemRequest::WritePage { .. } => "write-page",
            MemRequest::UpdateBatch { .. } => "update-batch",
        }
    }

    /// Payload bytes this request carries on the wire (request direction).
    pub fn wire_bytes(&self) -> usize {
        match self {
            MemRequest::FetchLine { .. } | MemRequest::FetchPage { .. } => 16,
            MemRequest::ApplyDiff { diff, .. } => 16 + diff.wire_bytes(),
            MemRequest::ApplyFine { bytes, .. } => 24 + bytes.len(),
            MemRequest::WritePage { bytes, .. } => 16 + bytes.len(),
            MemRequest::UpdateBatch { batch } => batch.wire_bytes(),
        }
    }
}

/// Responses a memory server produces.
#[derive(Clone, Debug)]
#[allow(missing_docs)] // payloads are described on each variant
pub enum MemResponse {
    /// Line payload: concatenated page bytes plus per-page versions.
    Line { first: PageId, data: Vec<u8>, versions: Vec<u64> },
    /// Single-page payload.
    Page { page: PageId, data: Vec<u8>, version: u64 },
    /// Mutation acknowledged; carries the new page version.
    Ack { page: PageId, version: u64 },
    /// Whole batch acknowledged as one unit; carries the part count.
    BatchAck { parts: u32 },
}

impl MemResponse {
    /// Payload bytes this response carries on the wire.
    pub fn wire_bytes(&self) -> usize {
        match self {
            MemResponse::Line { data, versions, .. } => 16 + data.len() + versions.len() * 8,
            MemResponse::Page { data, .. } => 24 + data.len(),
            MemResponse::Ack { .. } => 16,
            MemResponse::BatchAck { .. } => 16,
        }
    }
}

/// Service-time model for the server's local memory/CPU path.
///
/// Fetches walk the server's page table and stream data out (CPU on the
/// path); updates arrive through SCL's DMA model — the paper's RDMA design
/// keeps the server CPU off the apply path, so their fixed cost is lower.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ServiceModel {
    /// Fixed cost per fetch request (request parsing, page-table walk), ns.
    pub base_ns: u64,
    /// Fixed cost per update (diff / fine-grain apply): NIC DMA scatter
    /// setup, ns.
    pub apply_base_ns: u64,
    /// Cost per KiB moved through the server's memory system, ns.
    /// 100 ns/KiB ≈ 10 GB/s, a 2013-era single-socket stream figure.
    pub per_kib_ns: u64,
}

impl Default for ServiceModel {
    fn default() -> Self {
        ServiceModel { base_ns: 400, apply_base_ns: 150, per_kib_ns: 100 }
    }
}

impl ServiceModel {
    /// Virtual service time for a fetch moving `bytes` of page data.
    pub fn service_ns(&self, bytes: usize) -> SimTime {
        SimTime::from_ns(self.base_ns + (bytes as u64 * self.per_kib_ns) / 1024)
    }

    /// Virtual service time for an update (RDMA apply path).
    pub fn apply_ns(&self, bytes: usize) -> SimTime {
        SimTime::from_ns(self.apply_base_ns + (bytes as u64 * self.per_kib_ns) / 1024)
    }

    /// Virtual service time for applying a whole update batch, independent
    /// of payload size.
    ///
    /// The batched path is the paper's one-sided RDMA design: the scatter
    /// list is posted from the message header while the payload is still
    /// streaming off the wire, and the NIC DMAs each part into place as its
    /// bytes arrive — DRAM (~10 GB/s) outruns the fabric (~4 GB/s), so by
    /// last-byte arrival the parts are already in memory. Every payload
    /// byte was paid for by the message's serialization time and the setup
    /// overlapped the stream; what remains on the critical path is
    /// completion signalling, a quarter of the standalone apply base.
    /// Standalone applies keep their full setup plus per-byte CPU copy.
    pub fn batch_apply_ns(&self) -> SimTime {
        SimTime::from_ns(self.apply_base_ns / 4)
    }
}

/// Counters kept by one server.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerStats {
    /// Cache-line fetches served.
    pub line_fetches: u64,
    /// Single-page (revalidation) fetches served.
    pub page_fetches: u64,
    /// Ordinary-region diffs applied.
    pub diffs_applied: u64,
    /// Total diff payload applied, bytes.
    pub diff_payload_bytes: u64,
    /// Fine-grain (consistency-region) updates applied.
    pub fine_updates: u64,
    /// Total fine-grain payload applied, bytes.
    pub fine_payload_bytes: u64,
    /// Whole-page overwrites (ablation path).
    pub whole_page_writes: u64,
    /// Virtual busy time of the service resource.
    pub busy_ns: u64,
    /// Requests served by the service resource.
    pub requests: u64,
    /// Total virtual time requests queued before service began.
    pub queue_wait_ns: u64,
    /// Peak system occupancy observed at any arrival (1 = uncontended).
    pub peak_queue_depth: u64,
    /// Sum of arrival-sampled occupancies (mean = sum / requests).
    pub queue_depth_sum: u64,
}

/// One memory server: page store + queueing resource + counters.
pub struct MemoryServer {
    store: PageStore,
    resource: VirtualResource,
    model: ServiceModel,
    stats: ServerStats,
}

impl MemoryServer {
    /// A server for `page_size`-byte pages under the given service model.
    pub fn new(page_size: usize, model: ServiceModel) -> Self {
        MemoryServer {
            store: PageStore::new(page_size),
            resource: VirtualResource::new(),
            model,
            stats: ServerStats::default(),
        }
    }

    /// Process one request arriving at virtual time `arrival`. Returns the
    /// response and the virtual completion time (when the response can leave
    /// the server).
    pub fn handle(&mut self, req: MemRequest, arrival: SimTime) -> (MemResponse, SimTime) {
        let (resp, service) = match req {
            MemRequest::FetchLine { first, pages } => {
                self.stats.line_fetches += 1;
                let (data, versions) = self.store.read_line(first, pages as usize);
                let service = self.model.service_ns(data.len());
                (MemResponse::Line { first, data, versions }, service)
            }
            MemRequest::FetchPage { page } => {
                self.stats.page_fetches += 1;
                let frame = self.store.read(page);
                let data = frame.bytes().to_vec();
                let version = frame.version();
                let service = self.model.service_ns(data.len());
                (MemResponse::Page { page, data, version }, service)
            }
            MemRequest::ApplyDiff { page, diff } => {
                let service = self.model.apply_ns(diff.payload_bytes());
                let version = self.apply_diff_part(page, &diff);
                (MemResponse::Ack { page, version }, service)
            }
            MemRequest::ApplyFine { page, offset, bytes } => {
                let service = self.model.apply_ns(bytes.len());
                let version = self.apply_fine_part(page, offset, &bytes);
                (MemResponse::Ack { page, version }, service)
            }
            MemRequest::WritePage { page, bytes } => {
                self.stats.whole_page_writes += 1;
                let service = self.model.apply_ns(bytes.len());
                let version = self.store.write_page(page, &bytes);
                (MemResponse::Ack { page, version }, service)
            }
            MemRequest::UpdateBatch { batch } => {
                // Apply all parts in push order, atomically with respect to
                // other requests (the whole batch occupies one service
                // window). One DMA scatter setup covers every part; see
                // [`ServiceModel::batch_apply_ns`] for why no per-byte cost
                // is charged here.
                let _prof = samhita_prof::enter(samhita_prof::Phase::BatchApply);
                let service = self.model.batch_apply_ns();
                let mut parts = 0u32;
                for part in batch.into_parts() {
                    parts += 1;
                    match part {
                        UpdatePart::Diff { page, diff } => {
                            self.apply_diff_part(PageId(page), &diff);
                        }
                        UpdatePart::Fine { page, offset, bytes } => {
                            self.apply_fine_part(PageId(page), offset, &bytes);
                        }
                    }
                }
                (MemResponse::BatchAck { parts }, service)
            }
        };
        let (_start, done) = self.resource.reserve(arrival, service);
        (resp, done)
    }

    fn apply_diff_part(&mut self, page: PageId, diff: &Diff) -> u64 {
        self.stats.diffs_applied += 1;
        self.stats.diff_payload_bytes += diff.payload_bytes() as u64;
        self.store.apply_diff(page, diff)
    }

    fn apply_fine_part(&mut self, page: PageId, offset: u32, bytes: &[u8]) -> u64 {
        self.stats.fine_updates += 1;
        self.stats.fine_payload_bytes += bytes.len() as u64;
        self.store.apply_fine(page, offset, bytes)
    }

    /// Usage counters (busy + queue accounting read from the live resource).
    pub fn stats(&self) -> ServerStats {
        let mut s = self.stats;
        let r = self.resource.stats();
        s.busy_ns = r.busy_ns;
        s.requests = r.requests;
        s.queue_wait_ns = r.queue_wait_ns;
        s.peak_queue_depth = r.peak_depth;
        s.queue_depth_sum = r.depth_sum;
        s
    }

    /// Drain the service resource's queue-occupancy samples (see
    /// [`samhita_scl::VirtualResource::take_samples`]).
    pub fn take_queue_samples(&self) -> (Vec<QueueSample>, u64) {
        self.resource.take_samples()
    }

    /// Reset the service resource's queue accounting between runs.
    pub fn reset_queue_accounting(&self) {
        self.resource.reset_queue_accounting();
    }

    /// Direct access to the page store (tests, verification).
    pub fn store_mut(&mut self) -> &mut PageStore {
        &mut self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server() -> MemoryServer {
        MemoryServer::new(256, ServiceModel::default())
    }

    #[test]
    fn fetch_line_returns_zeroed_pages_and_completion_time() {
        let mut s = server();
        let (resp, done) =
            s.handle(MemRequest::FetchLine { first: PageId(0), pages: 4 }, SimTime::from_ns(100));
        match resp {
            MemResponse::Line { data, versions, .. } => {
                assert_eq!(data.len(), 1024);
                assert!(data.iter().all(|&b| b == 0));
                assert_eq!(versions, vec![0; 4]);
            }
            other => panic!("unexpected response {other:?}"),
        }
        let expected = SimTime::from_ns(100) + ServiceModel::default().service_ns(1024);
        assert_eq!(done, expected);
    }

    #[test]
    fn mutations_visible_to_later_fetches() {
        let mut s = server();
        s.handle(
            MemRequest::ApplyFine { page: PageId(1), offset: 8, bytes: vec![7; 8] },
            SimTime::ZERO,
        );
        let (resp, _) = s.handle(MemRequest::FetchPage { page: PageId(1) }, SimTime::ZERO);
        match resp {
            MemResponse::Page { data, version, .. } => {
                assert_eq!(&data[8..16], &[7; 8]);
                assert_eq!(version, 1);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn burst_of_requests_queues_in_virtual_time() {
        let mut s = server();
        // Three fetches all "arrive" at t=0: completions must serialize.
        let mut dones = Vec::new();
        for _ in 0..3 {
            let (_, done) =
                s.handle(MemRequest::FetchLine { first: PageId(0), pages: 1 }, SimTime::ZERO);
            dones.push(done);
        }
        let service = ServiceModel::default().service_ns(256);
        assert_eq!(dones[0], service);
        assert_eq!(dones[1], service + service);
        assert_eq!(dones[2], service + service + service);
    }

    #[test]
    fn multiple_writer_merge_through_server() {
        let mut s = server();
        let base = vec![0u8; 256];
        let mut a = base.clone();
        a[0] = 1;
        let mut b = base.clone();
        b[200] = 2;
        s.handle(
            MemRequest::ApplyDiff { page: PageId(0), diff: Diff::compute(&base, &a) },
            SimTime::ZERO,
        );
        s.handle(
            MemRequest::ApplyDiff { page: PageId(0), diff: Diff::compute(&base, &b) },
            SimTime::ZERO,
        );
        let (resp, _) = s.handle(MemRequest::FetchPage { page: PageId(0) }, SimTime::ZERO);
        match resp {
            MemResponse::Page { data, .. } => {
                assert_eq!(data[0], 1);
                assert_eq!(data[200], 2);
            }
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn stats_count_operations() {
        let mut s = server();
        s.handle(MemRequest::FetchLine { first: PageId(0), pages: 2 }, SimTime::ZERO);
        s.handle(MemRequest::FetchPage { page: PageId(9) }, SimTime::ZERO);
        s.handle(
            MemRequest::ApplyFine { page: PageId(0), offset: 0, bytes: vec![1; 16] },
            SimTime::ZERO,
        );
        let st = s.stats();
        assert_eq!(st.line_fetches, 1);
        assert_eq!(st.page_fetches, 1);
        assert_eq!(st.fine_updates, 1);
        assert_eq!(st.fine_payload_bytes, 16);
        assert!(st.busy_ns > 0);
    }

    #[test]
    fn wire_byte_accounting() {
        let req = MemRequest::ApplyFine { page: PageId(0), offset: 0, bytes: vec![0; 100] };
        assert_eq!(req.wire_bytes(), 124);
        let resp = MemResponse::Ack { page: PageId(0), version: 1 };
        assert_eq!(resp.wire_bytes(), 16);
        let line = MemResponse::Line { first: PageId(0), data: vec![0; 512], versions: vec![0, 0] };
        assert_eq!(line.wire_bytes(), 16 + 512 + 16);
    }

    #[test]
    fn service_time_grows_with_bytes() {
        let m = ServiceModel::default();
        assert!(m.service_ns(16384) > m.service_ns(4096));
        assert_eq!(m.service_ns(0), SimTime::from_ns(m.base_ns));
        assert_eq!(m.service_ns(1024), SimTime::from_ns(m.base_ns + m.per_kib_ns));
    }

    #[test]
    fn batch_applies_all_parts_in_one_service_window() {
        let base = vec![0u8; 256];
        let mut v = base.clone();
        v[0] = 9;
        let diff = Diff::compute(&base, &v);
        let mut batch = UpdateBatch::new();
        batch.push(UpdatePart::Diff { page: 0, diff: diff.clone() });
        batch.push(UpdatePart::Fine { page: 1, offset: 16, bytes: vec![7; 8] });
        let mut s = server();
        let (resp, done) = s.handle(MemRequest::UpdateBatch { batch }, SimTime::ZERO);
        match resp {
            MemResponse::BatchAck { parts } => assert_eq!(parts, 2),
            other => panic!("unexpected response {other:?}"),
        }
        // One scatter-setup cost for the whole batch (zero-copy path):
        // strictly cheaper than the two standalone applies.
        let m = ServiceModel::default();
        assert_eq!(done, m.batch_apply_ns());
        assert!(done < m.apply_ns(diff.payload_bytes()) + m.apply_ns(8));
        let st = s.stats();
        assert_eq!(st.diffs_applied, 1);
        assert_eq!(st.diff_payload_bytes, diff.payload_bytes() as u64);
        assert_eq!(st.fine_updates, 1);
        assert_eq!(st.fine_payload_bytes, 8);
        let (resp, _) = s.handle(MemRequest::FetchPage { page: PageId(0) }, done);
        match resp {
            MemResponse::Page { data, .. } => assert_eq!(data[0], 9),
            other => panic!("unexpected response {other:?}"),
        }
        let (resp, _) = s.handle(MemRequest::FetchPage { page: PageId(1) }, done);
        match resp {
            MemResponse::Page { data, .. } => assert_eq!(&data[16..24], &[7; 8]),
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn batch_wire_accounting_matches_request_variant() {
        let mut batch = UpdateBatch::new();
        batch.push(UpdatePart::Fine { page: 0, offset: 0, bytes: vec![0; 100] });
        let want = batch.wire_bytes();
        let req = MemRequest::UpdateBatch { batch };
        assert_eq!(req.wire_bytes(), want);
        assert_eq!(req.label(), "update-batch");
        assert_eq!(MemResponse::BatchAck { parts: 1 }.wire_bytes(), 16);
    }

    #[test]
    fn applies_ride_the_cheaper_rdma_path() {
        let m = ServiceModel::default();
        assert!(m.apply_ns(4096) < m.service_ns(4096));
        let mut s = MemoryServer::new(256, m);
        let (_, fetch_done) = s.handle(MemRequest::FetchPage { page: PageId(0) }, SimTime::ZERO);
        let mut s2 = MemoryServer::new(256, m);
        let (_, apply_done) = s2
            .handle(MemRequest::WritePage { page: PageId(0), bytes: vec![0; 256] }, SimTime::ZERO);
        assert!(apply_done < fetch_done);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    const PS: usize = 256;
    const PAGES: u64 = 8;

    #[derive(Clone, Debug)]
    enum ReqKind {
        FetchLine { line: u64 },
        FetchPage { page: u64 },
        Fine { page: u64, offset: u16, len: u8 },
        Whole { page: u64, fill: u8 },
        DiffWord { page: u64, word: u8, value: u64 },
    }

    fn req_strategy() -> impl Strategy<Value = ReqKind> {
        prop_oneof![
            (0..PAGES / 2).prop_map(|line| ReqKind::FetchLine { line }),
            (0..PAGES).prop_map(|page| ReqKind::FetchPage { page }),
            (0..PAGES, 0u16..200, 1u8..32).prop_map(|(page, offset, len)| ReqKind::Fine {
                page,
                offset,
                len
            }),
            (0..PAGES, any::<u8>()).prop_map(|(page, fill)| ReqKind::Whole { page, fill }),
            (0..PAGES, 0u8..32, any::<u64>()).prop_map(|(page, word, value)| ReqKind::DiffWord {
                page,
                word,
                value
            }),
        ]
    }

    fn batch_part_strategy() -> impl Strategy<Value = samhita_regc::UpdatePart> {
        prop_oneof![
            (0..PAGES, 0u8..(PS / 8) as u8, any::<u64>()).prop_map(|(page, word, value)| {
                let base = vec![0u8; PS];
                let mut cur = base.clone();
                cur[word as usize * 8..word as usize * 8 + 8].copy_from_slice(&value.to_le_bytes());
                samhita_regc::UpdatePart::Diff {
                    page,
                    diff: samhita_regc::Diff::compute(&base, &cur),
                }
            }),
            (0..PAGES, 0u16..(PS as u16 - 32), 1u8..32).prop_map(|(page, offset, len)| {
                samhita_regc::UpdatePart::Fine {
                    page,
                    offset: offset as u32,
                    bytes: vec![0xC3; len as usize],
                }
            }),
        ]
    }

    proptest! {
        /// Applying a batch is byte-equivalent to applying the same parts
        /// one message at a time, in the same order — same final page
        /// contents, same counters — and never costs more busy time (the
        /// batch pays one request base instead of one per part).
        #[test]
        fn batch_apply_equals_sequential_apply(
            parts in proptest::collection::vec(batch_part_strategy(), 1..24)
        ) {
            let mut batched = MemoryServer::new(PS, ServiceModel::default());
            let mut sequential = MemoryServer::new(PS, ServiceModel::default());
            let mut batch = UpdateBatch::new();
            for part in &parts {
                batch.push(part.clone());
                let req = match part.clone() {
                    samhita_regc::UpdatePart::Diff { page, diff } =>
                        MemRequest::ApplyDiff { page: PageId(page), diff },
                    samhita_regc::UpdatePart::Fine { page, offset, bytes } =>
                        MemRequest::ApplyFine { page: PageId(page), offset, bytes },
                };
                sequential.handle(req, SimTime::ZERO);
            }
            let (resp, done) = batched.handle(MemRequest::UpdateBatch { batch }, SimTime::ZERO);
            match resp {
                MemResponse::BatchAck { parts: n } => prop_assert_eq!(n as usize, parts.len()),
                other => prop_assert!(false, "unexpected {:?}", other),
            }
            // Same application work ⇒ same counters; the batch amortizes
            // the per-request base cost, so it is never busier.
            let bs = batched.stats();
            let ss = sequential.stats();
            prop_assert_eq!(bs.diffs_applied, ss.diffs_applied);
            prop_assert_eq!(bs.diff_payload_bytes, ss.diff_payload_bytes);
            prop_assert_eq!(bs.fine_updates, ss.fine_updates);
            prop_assert_eq!(bs.fine_payload_bytes, ss.fine_payload_bytes);
            prop_assert!(bs.busy_ns <= ss.busy_ns);
            // Byte-equivalent stores.
            for p in 0..PAGES {
                let (a, _) = batched.handle(MemRequest::FetchPage { page: PageId(p) }, done);
                let (b, _) = sequential.handle(MemRequest::FetchPage { page: PageId(p) }, done);
                match (a, b) {
                    (MemResponse::Page { data: da, .. }, MemResponse::Page { data: db, .. }) =>
                        prop_assert_eq!(da, db, "page {} diverged", p),
                    other => prop_assert!(false, "unexpected {:?}", other),
                }
            }
        }

        /// A random request stream leaves the server's pages exactly equal
        /// to a flat reference memory, every fetch returns reference
        /// content, and completion times are strictly increasing (single
        /// queue, nonzero service).
        #[test]
        fn server_matches_reference_memory(
            reqs in proptest::collection::vec(req_strategy(), 1..80)
        ) {
            let mut server = MemoryServer::new(PS, ServiceModel::default());
            let mut reference = vec![0u8; PS * PAGES as usize];
            let mut last_done = SimTime::ZERO;
            for (i, kind) in reqs.into_iter().enumerate() {
                let arrival = SimTime::from_ns(i as u64 * 10);
                let req = match &kind {
                    ReqKind::FetchLine { line } =>
                        MemRequest::FetchLine { first: PageId(line * 2), pages: 2 },
                    ReqKind::FetchPage { page } => MemRequest::FetchPage { page: PageId(*page) },
                    ReqKind::Fine { page, offset, len } => MemRequest::ApplyFine {
                        page: PageId(*page),
                        offset: *offset as u32,
                        bytes: vec![0xA5; *len as usize],
                    },
                    ReqKind::Whole { page, fill } => MemRequest::WritePage {
                        page: PageId(*page),
                        bytes: vec![*fill; PS],
                    },
                    ReqKind::DiffWord { page, word, value } => {
                        let base = &reference
                            [*page as usize * PS..(*page as usize + 1) * PS].to_vec();
                        let mut cur = base.clone();
                        cur[*word as usize * 8..*word as usize * 8 + 8]
                            .copy_from_slice(&value.to_le_bytes());
                        MemRequest::ApplyDiff {
                            page: PageId(*page),
                            diff: samhita_regc::Diff::compute(base, &cur),
                        }
                    }
                };
                // Mirror the mutation into the reference.
                match &kind {
                    ReqKind::Fine { page, offset, len } => {
                        let base = *page as usize * PS + *offset as usize;
                        reference[base..base + *len as usize].fill(0xA5);
                    }
                    ReqKind::Whole { page, fill } => {
                        reference[*page as usize * PS..(*page as usize + 1) * PS].fill(*fill);
                    }
                    ReqKind::DiffWord { page, word, value } => {
                        let base = *page as usize * PS + *word as usize * 8;
                        reference[base..base + 8].copy_from_slice(&value.to_le_bytes());
                    }
                    _ => {}
                }
                let (resp, done) = server.handle(req, arrival);
                prop_assert!(done > last_done, "service windows must advance");
                last_done = done;
                match resp {
                    MemResponse::Line { first, data, .. } => {
                        let base = first.0 as usize * PS;
                        prop_assert_eq!(&data[..], &reference[base..base + data.len()]);
                    }
                    MemResponse::Page { page, data, .. } => {
                        let base = page.0 as usize * PS;
                        prop_assert_eq!(&data[..], &reference[base..base + PS]);
                    }
                    MemResponse::Ack { .. } | MemResponse::BatchAck { .. } => {}
                }
            }
            // Final sweep: every page equals the reference.
            for p in 0..PAGES {
                let (resp, _) = server.handle(MemRequest::FetchPage { page: PageId(p) }, last_done);
                match resp {
                    MemResponse::Page { data, .. } => {
                        let base = p as usize * PS;
                        prop_assert_eq!(&data[..], &reference[base..base + PS], "page {}", p);
                    }
                    other => prop_assert!(false, "unexpected {:?}", other),
                }
            }
        }
    }
}
