//! Page → home-server mapping.
//!
//! Homes are assigned by striping at *cache line* granularity (a line being
//! `line_pages` consecutive pages): all pages of one line share a home, so a
//! line fetch is a single request, while consecutive lines rotate across
//! servers so that large striped allocations spread load — the hot-spot
//! avoidance that motivates the paper's third allocation strategy.

use serde::{Deserialize, Serialize};

use crate::page::PageId;

/// Maps pages to their home memory server.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomeMap {
    servers: u32,
    line_pages: u32,
}

impl HomeMap {
    /// A mapping over `servers` memory servers with `line_pages`-page lines.
    ///
    /// # Panics
    /// Panics unless both arguments are at least 1.
    pub fn new(servers: u32, line_pages: u32) -> Self {
        assert!(servers >= 1, "need at least one memory server");
        assert!(line_pages >= 1, "lines must hold at least one page");
        HomeMap { servers, line_pages }
    }

    /// Number of memory servers.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Pages per cache line.
    pub fn line_pages(&self) -> u32 {
        self.line_pages
    }

    /// The cache line a page belongs to.
    #[inline]
    pub fn line_of(&self, page: PageId) -> u64 {
        page.0 / self.line_pages as u64
    }

    /// First page of a line.
    #[inline]
    pub fn first_page_of_line(&self, line: u64) -> PageId {
        PageId(line * self.line_pages as u64)
    }

    /// Home server index for a page.
    #[inline]
    pub fn home_of_page(&self, page: PageId) -> u32 {
        (self.line_of(page) % self.servers as u64) as u32
    }

    /// Home server index for a line.
    #[inline]
    pub fn home_of_line(&self, line: u64) -> u32 {
        (line % self.servers as u64) as u32
    }

    /// Replica server for data homed on `server`, under a static rotation
    /// by `offset`: the write-through secondary home that failover re-homes
    /// to when the primary dies. `None` when replication is disabled
    /// (`offset == 0`) or the rotation degenerates to the primary itself
    /// (`offset` a multiple of the server count — only possible with a
    /// single server).
    #[inline]
    pub fn replica_of_server(&self, server: u32, offset: u32) -> Option<u32> {
        if offset == 0 || offset.is_multiple_of(self.servers) {
            return None;
        }
        Some((server + offset) % self.servers)
    }

    /// Replica server for a line; see [`HomeMap::replica_of_server`].
    #[inline]
    pub fn replica_of_line(&self, line: u64, offset: u32) -> Option<u32> {
        self.replica_of_server(self.home_of_line(line), offset)
    }

    /// Replica server for a page; see [`HomeMap::replica_of_server`].
    #[inline]
    pub fn replica_of_page(&self, page: PageId, offset: u32) -> Option<u32> {
        self.replica_of_server(self.home_of_page(page), offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_of_one_line_share_a_home() {
        let m = HomeMap::new(3, 4);
        for line in 0..10u64 {
            let home = m.home_of_line(line);
            for p in 0..4u64 {
                let page = PageId(line * 4 + p);
                assert_eq!(m.line_of(page), line);
                assert_eq!(m.home_of_page(page), home);
            }
        }
    }

    #[test]
    fn consecutive_lines_rotate_servers() {
        let m = HomeMap::new(4, 2);
        let homes: Vec<u32> = (0..8).map(|l| m.home_of_line(l)).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn single_server_homes_everything() {
        let m = HomeMap::new(1, 4);
        assert!((0..100).all(|l| m.home_of_line(l) == 0));
    }

    #[test]
    fn line_page_roundtrip() {
        let m = HomeMap::new(2, 4);
        assert_eq!(m.first_page_of_line(3), PageId(12));
        assert_eq!(m.line_of(PageId(12)), 3);
        assert_eq!(m.line_of(PageId(15)), 3);
        assert_eq!(m.line_of(PageId(16)), 4);
    }

    #[test]
    fn striping_balances_load() {
        let m = HomeMap::new(4, 4);
        let mut counts = [0u32; 4];
        for line in 0..1000 {
            counts[m.home_of_line(line) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 250));
    }

    #[test]
    #[should_panic(expected = "at least one memory server")]
    fn zero_servers_rejected() {
        HomeMap::new(0, 1);
    }

    #[test]
    fn replica_rotates_away_from_the_home() {
        let m = HomeMap::new(3, 2);
        for line in 0..12u64 {
            let home = m.home_of_line(line);
            let replica = m.replica_of_line(line, 1).unwrap();
            assert_ne!(replica, home, "a replica co-located with its primary is useless");
            assert_eq!(replica, (home + 1) % 3);
            assert_eq!(m.replica_of_page(m.first_page_of_line(line), 1), Some(replica));
        }
    }

    #[test]
    fn replica_disabled_or_degenerate_is_none() {
        let m = HomeMap::new(3, 2);
        assert_eq!(m.replica_of_server(1, 0), None, "offset 0 means no replication");
        assert_eq!(m.replica_of_server(1, 3), None, "full rotation degenerates to the home");
        let single = HomeMap::new(1, 4);
        assert_eq!(single.replica_of_server(0, 1), None, "one server cannot host a replica");
    }
}
