//! Page → home-server mapping.
//!
//! Homes are assigned by striping at *cache line* granularity (a line being
//! `line_pages` consecutive pages): all pages of one line share a home, so a
//! line fetch is a single request, while consecutive lines rotate across
//! servers so that large striped allocations spread load — the hot-spot
//! avoidance that motivates the paper's third allocation strategy.

use serde::{Deserialize, Serialize};

use crate::page::PageId;

/// Maps pages to their home memory server.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HomeMap {
    servers: u32,
    line_pages: u32,
}

impl HomeMap {
    /// A mapping over `servers` memory servers with `line_pages`-page lines.
    ///
    /// # Panics
    /// Panics unless both arguments are at least 1.
    pub fn new(servers: u32, line_pages: u32) -> Self {
        assert!(servers >= 1, "need at least one memory server");
        assert!(line_pages >= 1, "lines must hold at least one page");
        HomeMap { servers, line_pages }
    }

    /// Number of memory servers.
    pub fn servers(&self) -> u32 {
        self.servers
    }

    /// Pages per cache line.
    pub fn line_pages(&self) -> u32 {
        self.line_pages
    }

    /// The cache line a page belongs to.
    #[inline]
    pub fn line_of(&self, page: PageId) -> u64 {
        page.0 / self.line_pages as u64
    }

    /// First page of a line.
    #[inline]
    pub fn first_page_of_line(&self, line: u64) -> PageId {
        PageId(line * self.line_pages as u64)
    }

    /// Home server index for a page.
    #[inline]
    pub fn home_of_page(&self, page: PageId) -> u32 {
        (self.line_of(page) % self.servers as u64) as u32
    }

    /// Home server index for a line.
    #[inline]
    pub fn home_of_line(&self, line: u64) -> u32 {
        (line % self.servers as u64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_of_one_line_share_a_home() {
        let m = HomeMap::new(3, 4);
        for line in 0..10u64 {
            let home = m.home_of_line(line);
            for p in 0..4u64 {
                let page = PageId(line * 4 + p);
                assert_eq!(m.line_of(page), line);
                assert_eq!(m.home_of_page(page), home);
            }
        }
    }

    #[test]
    fn consecutive_lines_rotate_servers() {
        let m = HomeMap::new(4, 2);
        let homes: Vec<u32> = (0..8).map(|l| m.home_of_line(l)).collect();
        assert_eq!(homes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn single_server_homes_everything() {
        let m = HomeMap::new(1, 4);
        assert!((0..100).all(|l| m.home_of_line(l) == 0));
    }

    #[test]
    fn line_page_roundtrip() {
        let m = HomeMap::new(2, 4);
        assert_eq!(m.first_page_of_line(3), PageId(12));
        assert_eq!(m.line_of(PageId(12)), 3);
        assert_eq!(m.line_of(PageId(15)), 3);
        assert_eq!(m.line_of(PageId(16)), 4);
    }

    #[test]
    fn striping_balances_load() {
        let m = HomeMap::new(4, 4);
        let mut counts = [0u32; 4];
        for line in 0..1000 {
            counts[m.home_of_line(line) as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 250));
    }

    #[test]
    #[should_panic(expected = "at least one memory server")]
    fn zero_servers_rejected() {
        HomeMap::new(0, 1);
    }
}
