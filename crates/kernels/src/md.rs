//! Molecular dynamics: velocity-Verlet n-body (Figure 13).
//!
//! "A simple n-body simulation using the velocity Verlet time integration
//! method … the computation per particle is O(n)": every particle interacts
//! with every other through a softened inverse-square potential. Both
//! implementations accumulate the kinetic and potential energies into
//! mutex-protected globals and synchronize with three barriers per step,
//! as the paper describes.
//!
//! Compute per step is `Θ(n²/P)` per thread while communication is `Θ(n)`
//! (each thread reads all positions, writes its own block), so the kernel is
//! compute-dominated — the paper's example of an application that "can
//! easily mask the synchronization overhead of Samhita".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use samhita_rt::{KernelRt, RunReport};
use serde::{Deserialize, Serialize};

/// MD parameters.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct MdParams {
    /// Particle count.
    pub n: usize,
    /// Velocity-Verlet steps.
    pub steps: usize,
    /// Time step.
    pub dt: f64,
    /// Compute threads.
    pub threads: u32,
    /// RNG seed for the initial condition.
    pub seed: u64,
}

impl MdParams {
    /// A paper-scale configuration.
    pub fn paper(n: usize, threads: u32) -> Self {
        MdParams { n, steps: 10, dt: 1e-3, threads, seed: 42 }
    }
}

/// Softening length (keeps close encounters finite).
const EPS2: f64 = 1e-4;

/// Outcome of an MD run.
#[derive(Clone, Debug)]
pub struct MdResult {
    /// Per-thread timing and protocol statistics.
    pub report: RunReport,
    /// Kinetic energy after the final step.
    pub kinetic: f64,
    /// Potential energy after the final step.
    pub potential: f64,
    /// Final positions (`3n`, xyz interleaved).
    pub positions: Vec<f64>,
}

/// Deterministic initial condition: positions in the unit cube, small
/// random velocities.
pub fn initial_state(n: usize, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let pos: Vec<f64> = (0..3 * n).map(|_| rng.gen_range(0.0..1.0)).collect();
    let vel: Vec<f64> = (0..3 * n).map(|_| rng.gen_range(-0.05..0.05)).collect();
    (pos, vel)
}

/// Particle range `[lo, hi)` owned by `tid`.
fn block(n: usize, threads: usize, tid: usize) -> (usize, usize) {
    let per = n / threads;
    let extra = n % threads;
    let lo = tid * per + tid.min(extra);
    (lo, lo + per + usize::from(tid < extra))
}

/// Accelerations and potential-energy contribution for particles `[lo, hi)`
/// given all positions. The potential is halved per pair at the end by the
/// caller summing over all blocks (each ordered pair counted once here).
fn forces(pos: &[f64], lo: usize, hi: usize, acc: &mut [f64]) -> f64 {
    let n = pos.len() / 3;
    let mut pe = 0.0;
    for i in lo..hi {
        let (xi, yi, zi) = (pos[3 * i], pos[3 * i + 1], pos[3 * i + 2]);
        let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
        for j in 0..n {
            if j == i {
                continue;
            }
            let dx = pos[3 * j] - xi;
            let dy = pos[3 * j + 1] - yi;
            let dz = pos[3 * j + 2] - zi;
            let r2 = dx * dx + dy * dy + dz * dz + EPS2;
            let inv_r = 1.0 / r2.sqrt();
            let inv_r3 = inv_r / r2;
            ax += dx * inv_r3;
            ay += dy * inv_r3;
            az += dz * inv_r3;
            pe -= 0.5 * inv_r; // half: every unordered pair visited twice
        }
        acc[3 * (i - lo)] = ax;
        acc[3 * (i - lo) + 1] = ay;
        acc[3 * (i - lo) + 2] = az;
    }
    pe
}

/// Run the MD kernel on a backend.
pub fn run_md(rt: &dyn KernelRt, p: &MdParams) -> MdResult {
    assert!(p.n >= 2 && p.steps >= 1 && p.threads >= 1);
    assert!((p.threads as usize) <= p.n, "more threads than particles");
    let (pos0, vel0) = initial_state(p.n, p.seed);

    let pos = rt.alloc_f64_global(3 * p.n);
    let vel = rt.alloc_f64_global(3 * p.n);
    let acc = rt.alloc_f64_global(3 * p.n);
    let energies = rt.alloc_f64_global(2); // [kinetic, potential]
    rt.init_f64(pos, &pos0);
    rt.init_f64(vel, &vel0);
    let lock = rt.mutex();
    let barrier = rt.barrier(p.threads);
    let params = *p;

    let report = rt.run(p.threads, &move |ctx| {
        let p = &params;
        let (lo, hi) = block(p.n, ctx.nthreads() as usize, ctx.tid() as usize);
        let mine = hi - lo;
        let mut all_pos = vec![0.0f64; 3 * p.n];
        let mut my_vel = vec![0.0f64; 3 * mine];
        let mut my_acc = vec![0.0f64; 3 * mine];
        let mut my_pos = vec![0.0f64; 3 * mine];

        // Initial accelerations (step 0 force evaluation).
        ctx.read_block(pos, 0, &mut all_pos);
        let _ = forces(&all_pos, lo, hi, &mut my_acc);
        ctx.compute(22 * (p.n as u64) * (mine as u64));
        ctx.write_block(acc, 3 * lo, &my_acc);
        ctx.barrier_wait(barrier);

        for step in 0..p.steps {
            // (a) Half kick + drift on own block.
            ctx.read_block(vel, 3 * lo, &mut my_vel);
            ctx.read_block(acc, 3 * lo, &mut my_acc);
            ctx.read_block(pos, 3 * lo, &mut my_pos);
            for k in 0..3 * mine {
                my_vel[k] += 0.5 * p.dt * my_acc[k];
                my_pos[k] += p.dt * my_vel[k];
            }
            ctx.compute(4 * 3 * mine as u64);
            ctx.write_block(pos, 3 * lo, &my_pos);
            ctx.write_block(vel, 3 * lo, &my_vel);
            ctx.barrier_wait(barrier); // (1) all positions advanced

            // (b) New forces from the updated global positions.
            ctx.read_block(pos, 0, &mut all_pos);
            let pe = forces(&all_pos, lo, hi, &mut my_acc);
            ctx.compute(22 * (p.n as u64) * (mine as u64));
            ctx.write_block(acc, 3 * lo, &my_acc);
            ctx.barrier_wait(barrier); // (2) all forces computed

            // (c) Second half kick + energy accumulation.
            let mut ke = 0.0;
            for k in 0..3 * mine {
                my_vel[k] += 0.5 * p.dt * my_acc[k];
                ke += 0.5 * my_vel[k] * my_vel[k];
            }
            ctx.compute(5 * 3 * mine as u64);
            ctx.write_block(vel, 3 * lo, &my_vel);

            ctx.lock(lock);
            let k0 = ctx.read(energies, 0);
            let p0 = ctx.read(energies, 1);
            let last = step + 1 == p.steps;
            // Keep only the final step's energies (reset-and-accumulate).
            ctx.write(energies, 0, if last { k0 + ke } else { 0.0 });
            ctx.write(energies, 1, if last { p0 + pe } else { 0.0 });
            ctx.unlock(lock);
            ctx.barrier_wait(barrier); // (3) energies published
        }
    });

    let e = rt.fetch_f64(energies, 2);
    MdResult { report, kinetic: e[0], potential: e[1], positions: rt.fetch_f64(pos, 3 * p.n) }
}

/// Serial reference (plain memory, bitwise-identical arithmetic per
/// particle) for verification.
pub fn serial_reference(p: &MdParams) -> Vec<f64> {
    let (mut pos, mut vel) = initial_state(p.n, p.seed);
    let mut acc = vec![0.0f64; 3 * p.n];
    forces(&pos, 0, p.n, &mut acc);
    for _ in 0..p.steps {
        for k in 0..3 * p.n {
            vel[k] += 0.5 * p.dt * acc[k];
            pos[k] += p.dt * vel[k];
        }
        forces(&pos, 0, p.n, &mut acc);
        for k in 0..3 * p.n {
            vel[k] += 0.5 * p.dt * acc[k];
        }
    }
    pos
}

#[cfg(test)]
mod tests {
    use super::*;
    use samhita_core::SamhitaConfig;
    use samhita_rt::{NativeRt, SamhitaRt};

    fn tiny(threads: u32) -> MdParams {
        MdParams { n: 24, steps: 3, dt: 1e-3, threads, seed: 7 }
    }

    #[test]
    fn particle_partition_covers_everything() {
        for n in [10usize, 24, 31] {
            for threads in [1usize, 2, 3, 7] {
                let mut covered = 0;
                let mut last_hi = 0;
                for t in 0..threads {
                    let (lo, hi) = block(n, threads, t);
                    assert_eq!(lo, last_hi, "blocks must be contiguous");
                    covered += hi - lo;
                    last_hi = hi;
                }
                assert_eq!(covered, n);
                assert_eq!(last_hi, n);
            }
        }
    }

    #[test]
    fn native_matches_serial_reference_bitwise() {
        let p = tiny(4);
        let r = run_md(&NativeRt::default(), &p);
        assert_eq!(r.positions, serial_reference(&p));
    }

    #[test]
    fn samhita_matches_serial_reference_bitwise() {
        let p = tiny(3);
        let rt = SamhitaRt::new(SamhitaConfig::small_for_tests());
        let r = run_md(&rt, &p);
        assert_eq!(r.positions, serial_reference(&p));
    }

    #[test]
    fn energies_are_finite_and_sensible() {
        let r = run_md(&NativeRt::default(), &tiny(2));
        assert!(r.kinetic.is_finite() && r.kinetic > 0.0);
        assert!(r.potential.is_finite() && r.potential < 0.0, "attractive potential");
    }

    #[test]
    fn thread_count_does_not_change_the_trajectory() {
        let p1 = tiny(1);
        let p4 = tiny(4);
        let r1 = run_md(&NativeRt::default(), &p1);
        let r4 = run_md(&NativeRt::default(), &p4);
        assert_eq!(r1.positions, r4.positions);
    }

    #[test]
    fn initial_state_is_deterministic_per_seed() {
        let (a, _) = initial_state(16, 9);
        let (b, _) = initial_state(16, 9);
        let (c, _) = initial_state(16, 10);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
