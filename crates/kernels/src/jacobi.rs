//! Jacobi iteration for the discrete Laplacian (Figure 12).
//!
//! Solves `-Δu = f` with `f ≡ 1` and zero boundary on an `(n+2)²` grid by
//! Jacobi sweeps:
//!
//! ```text
//! u'[i][j] = (u[i-1][j] + u[i+1][j] + u[i][j-1] + u[i][j+1] + h²f) / 4
//! ```
//!
//! The access pattern is the paper's "nearest neighbor communication
//! pattern": each thread owns a block of rows, reads one halo row from each
//! neighbour, and per outer iteration performs one mutex-protected
//! global-residual update plus three barrier synchronizations (matching the
//! paper's description exactly).
//!
//! Source and destination grids swap roles each iteration (pointer swap, no
//! copy), so under the DSM the whole destination block is freshly written —
//! diffed and flushed at the next synchronization — while the halo rows are
//! refetched after invalidation: Jacobi is the write-heavy end of the
//! paper's workload spectrum.

use samhita_rt::{KernelRt, RunReport};
use serde::{Deserialize, Serialize};

/// Jacobi parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct JacobiParams {
    /// Interior grid dimension (the grid is `(n+2)²` with boundary).
    pub n: usize,
    /// Outer (sweep) iterations.
    pub iters: usize,
    /// Compute threads.
    pub threads: u32,
}

/// Outcome of a Jacobi run.
#[derive(Clone, Debug)]
pub struct JacobiResult {
    /// Per-thread timing and protocol statistics.
    pub report: RunReport,
    /// Σ|u' - u| of the final sweep (decreases monotonically for this
    /// problem).
    pub final_diff: f64,
    /// The final grid (fetched from the backend; row-major `(n+2)²`).
    pub grid: Vec<f64>,
}

/// Row range `[lo, hi)` of interior rows owned by `tid` (1-based rows).
fn block(n: usize, threads: usize, tid: usize) -> (usize, usize) {
    let per = n / threads;
    let extra = n % threads;
    let lo = 1 + tid * per + tid.min(extra);
    let hi = lo + per + usize::from(tid < extra);
    (lo, hi)
}

/// Run Jacobi on a backend.
pub fn run_jacobi(rt: &dyn KernelRt, p: &JacobiParams) -> JacobiResult {
    assert!(p.n >= 1 && p.iters >= 1 && p.threads >= 1);
    assert!((p.threads as usize) <= p.n, "more threads than interior rows");
    let width = p.n + 2;
    let cells = width * width;
    let u = rt.alloc_f64_global(cells);
    let unew = rt.alloc_f64_global(cells);
    let gdiff = rt.alloc_f64_global(1);
    let lock = rt.mutex();
    let barrier = rt.barrier(p.threads);
    let params = *p;

    let report = rt.run(p.threads, &move |ctx| {
        let p = &params;
        let width = p.n + 2;
        let h2f = {
            let h = 1.0 / (p.n + 1) as f64;
            h * h * 1.0 // f ≡ 1
        };
        let (lo, hi) = block(p.n, ctx.nthreads() as usize, ctx.tid() as usize);
        let mut grids = [u, unew];

        // Rolling row buffers: rows i-1, i, i+1 of the source grid.
        let mut above = vec![0.0f64; width];
        let mut here = vec![0.0f64; width];
        let mut below = vec![0.0f64; width];
        let mut out = vec![0.0f64; width];

        for _it in 0..p.iters {
            let (src, dst) = (grids[0], grids[1]);
            let mut local_diff = 0.0f64;

            ctx.read_block(src, (lo - 1) * width, &mut above);
            ctx.read_block(src, lo * width, &mut here);
            for i in lo..hi {
                ctx.read_block(src, (i + 1) * width, &mut below);
                out[0] = 0.0;
                out[width - 1] = 0.0;
                for j in 1..=p.n {
                    let v = 0.25 * (above[j] + below[j] + here[j - 1] + here[j + 1] + h2f);
                    local_diff += (v - here[j]).abs();
                    out[j] = v;
                }
                // Calibrated to the OmpSCR kernel's cost per point (~30
                // cycles at 2.8 GHz: 2D index arithmetic, 4 adds, relaxation
                // multiply, |diff| accumulation in unoptimized C).
                ctx.compute(25 * p.n as u64);
                ctx.write_block(dst, i * width, &out);
                std::mem::swap(&mut above, &mut here);
                std::mem::swap(&mut here, &mut below);
            }
            // Re-prime for the next iteration (`here`/`above` now hold
            // stale rows; they are re-read at the top of the loop).
            ctx.barrier_wait(barrier); // (1) all updates written

            ctx.lock(lock);
            let g = ctx.read(gdiff, 0);
            ctx.write(gdiff, 0, g + local_diff);
            ctx.unlock(lock);
            ctx.barrier_wait(barrier); // (2) global residual complete

            if ctx.tid() == 0 {
                // Thread 0 resets the accumulator for the next sweep; the
                // final sweep's value is left in place for the host.
                if _it + 1 < p.iters {
                    ctx.lock(lock);
                    ctx.write(gdiff, 0, 0.0);
                    ctx.unlock(lock);
                }
            }
            ctx.barrier_wait(barrier); // (3) reset visible everywhere
            grids.swap(0, 1);
        }
    });

    let final_grid = if p.iters % 2 == 1 { unew } else { u };
    JacobiResult {
        final_diff: rt.fetch_f64(gdiff, 1)[0],
        grid: rt.fetch_f64(final_grid, cells),
        report,
    }
}

/// Serial reference implementation in plain memory (bitwise-identical
/// arithmetic to the kernel; used for verification).
pub fn serial_reference(n: usize, iters: usize) -> Vec<f64> {
    let width = n + 2;
    let h = 1.0 / (n + 1) as f64;
    let h2f = h * h;
    let mut src = vec![0.0f64; width * width];
    let mut dst = vec![0.0f64; width * width];
    for _ in 0..iters {
        for i in 1..=n {
            for j in 1..=n {
                dst[i * width + j] = 0.25
                    * (src[(i - 1) * width + j]
                        + src[(i + 1) * width + j]
                        + src[i * width + j - 1]
                        + src[i * width + j + 1]
                        + h2f);
            }
        }
        std::mem::swap(&mut src, &mut dst);
    }
    src
}

#[cfg(test)]
mod tests {
    use super::*;
    use samhita_core::SamhitaConfig;
    use samhita_rt::{NativeRt, SamhitaRt};

    #[test]
    fn block_partition_covers_all_rows() {
        for n in [7usize, 16, 33] {
            for threads in [1usize, 2, 3, 5] {
                let mut covered = vec![false; n + 2];
                for t in 0..threads {
                    let (lo, hi) = block(n, threads, t);
                    for (r, slot) in covered.iter_mut().enumerate().take(hi).skip(lo) {
                        assert!(!*slot, "row {r} assigned twice");
                        *slot = true;
                    }
                }
                assert!(covered[1..=n].iter().all(|&c| c), "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn native_matches_serial_reference_bitwise() {
        let p = JacobiParams { n: 14, iters: 5, threads: 4 };
        let r = run_jacobi(&NativeRt::default(), &p);
        let reference = serial_reference(p.n, p.iters);
        assert_eq!(r.grid, reference);
        assert!(r.final_diff > 0.0);
    }

    #[test]
    fn samhita_matches_serial_reference_bitwise() {
        let p = JacobiParams { n: 14, iters: 4, threads: 3 };
        let rt = SamhitaRt::new(SamhitaConfig::small_for_tests());
        let r = run_jacobi(&rt, &p);
        assert_eq!(r.grid, serial_reference(p.n, p.iters));
    }

    #[test]
    fn residual_decreases_with_iterations() {
        let rt = NativeRt::default();
        let d3 = run_jacobi(&rt, &JacobiParams { n: 12, iters: 3, threads: 2 }).final_diff;
        let d30 = run_jacobi(&rt, &JacobiParams { n: 12, iters: 30, threads: 2 }).final_diff;
        assert!(d30 < d3, "Jacobi must converge: {d30} !< {d3}");
    }

    #[test]
    fn thread_count_does_not_change_the_answer() {
        let rt = NativeRt::default();
        let r1 = run_jacobi(&rt, &JacobiParams { n: 10, iters: 6, threads: 1 });
        let r4 = run_jacobi(&rt, &JacobiParams { n: 10, iters: 6, threads: 4 });
        assert_eq!(r1.grid, r4.grid);
    }
}
