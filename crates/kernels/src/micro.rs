//! The Figure 2 micro-benchmark.
//!
//! ```text
//! for (i = 0; i < N; ++i) {
//!   sum = 0;
//!   for (j = 0; j < M; ++j)
//!     for (k = 0; k < S; ++k) {
//!       rsum = 0;
//!       for (l = 0; l < B; ++l) {
//!         *am(k,l) = r * (*am(k,l));
//!         rsum += *am(k,l);
//!       }
//!       sum += M_PI * rsum;
//!     }
//!   LOCK(lock);  gsum += sum;  UNLOCK(lock);
//!   BARRIER_WAIT(barrier);
//! }
//! ```
//!
//! Each thread owns `S` rows of `B` doubles; `M` controls the amount of
//! computation per synchronization, and the allocation mode controls the
//! false-sharing exposure:
//!
//! * [`AllocMode::Local`] — each thread allocates its own rows (Samhita: the
//!   per-thread arena ⇒ no false sharing by construction);
//! * [`AllocMode::Global`] — one large shared allocation, threads take
//!   contiguous blocks (false sharing only at block boundaries);
//! * [`AllocMode::GlobalStrided`] — the same allocation with row `k` of
//!   thread `t` at row index `k·P + t` (round-robin rows ⇒ maximal false
//!   sharing).

use samhita_rt::{ArrF64, KernelRt, RunReport};
use serde::{Deserialize, Serialize};

/// Allocation / work-distribution variants (paper §III).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AllocMode {
    /// Each thread allocates its own rows (per-thread arena under the DSM).
    Local,
    /// One shared allocation; threads take contiguous blocks.
    Global,
    /// One shared allocation; rows round-robin across threads.
    GlobalStrided,
}

impl AllocMode {
    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            AllocMode::Local => "local",
            AllocMode::Global => "global",
            AllocMode::GlobalStrided => "global strided",
        }
    }
}

/// Micro-benchmark parameters. Paper values: `n_outer = 10`, `b_cols = 260`,
/// `m_inner ∈ {1, 10, 100}`, `s_rows ∈ {1, 2, 4, 8}` (the OCR of the paper
/// drops trailing digits — "B = 26" — and 260 doubles per row reproduces the
/// block-boundary false sharing Figure 4 depends on; see DESIGN.md §4).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroParams {
    /// N: outer repetitions.
    pub n_outer: usize,
    /// M: inner compute repetitions per outer iteration.
    pub m_inner: usize,
    /// S: rows of doubles per thread (the "ordinary region size").
    pub s_rows: usize,
    /// B: row length in doubles.
    pub b_cols: usize,
    /// Allocation / access-pattern variant.
    pub mode: AllocMode,
    /// Compute threads.
    pub threads: u32,
}

impl MicroParams {
    /// The paper's fixed constants with the given sweep variables.
    pub fn paper(m_inner: usize, s_rows: usize, mode: AllocMode, threads: u32) -> Self {
        MicroParams { n_outer: 10, m_inner, s_rows, b_cols: 260, mode, threads }
    }
}

/// Outcome of one micro-benchmark run.
#[derive(Clone, Debug)]
pub struct MicroResult {
    /// Per-thread timing and protocol statistics.
    pub report: RunReport,
    /// Final value of the mutex-protected global sum (for verification).
    pub gsum: f64,
}

/// The per-element decay factor (`r` in Figure 2); slightly below one so
/// values stay finite for any `M`.
pub const R: f64 = 0.999_999;

/// The analytically expected `gsum` for a run (every element starts at 1.0,
/// so the sum telescopes over the global update count).
pub fn expected_gsum(p: &MicroParams) -> f64 {
    let mut gsum = 0.0;
    let mut value = 1.0; // every element of every row holds the same value
    for _i in 0..p.n_outer {
        let mut sum = 0.0;
        for _j in 0..p.m_inner {
            value *= R;
            // S rows of B elements, each now worth `value`.
            sum += std::f64::consts::PI * (p.s_rows as f64) * (p.b_cols as f64 * value);
        }
        gsum += sum * p.threads as f64;
    }
    gsum
}

/// Run the micro-benchmark on a backend.
pub fn run_micro(rt: &dyn KernelRt, p: &MicroParams) -> MicroResult {
    assert!(p.threads >= 1 && p.s_rows >= 1 && p.b_cols >= 1);
    let per_thread = p.s_rows * p.b_cols;
    let nthreads = p.threads as usize;

    let global_arr: Option<ArrF64> = match p.mode {
        AllocMode::Local => None,
        AllocMode::Global | AllocMode::GlobalStrided => {
            Some(rt.alloc_f64_global(per_thread * nthreads))
        }
    };
    let gsum = rt.alloc_f64_global(1);
    let lock = rt.mutex();
    let barrier = rt.barrier(p.threads);
    let params = *p;

    let report = rt.run(p.threads, &move |ctx| {
        let p = &params;
        let tid = ctx.tid() as usize;
        let nthreads = ctx.nthreads() as usize;
        let arr = match p.mode {
            AllocMode::Local => ctx.alloc_local_f64(per_thread),
            _ => global_arr.expect("global allocation exists"),
        };
        // Element index of row k for this thread.
        let row_start = |k: usize| -> usize {
            match p.mode {
                AllocMode::Local => k * p.b_cols,
                AllocMode::Global => (tid * p.s_rows + k) * p.b_cols,
                AllocMode::GlobalStrided => (k * nthreads + tid) * p.b_cols,
            }
        };

        // Initialize this thread's rows to 1.0 (warm-up; the barrier flushes
        // the writes home before the measured pattern starts repeating).
        let ones = vec![1.0f64; p.b_cols];
        for k in 0..p.s_rows {
            ctx.write_block(arr, row_start(k), &ones);
        }
        // Touch the global sum so its page is warm before timing starts.
        let _ = ctx.read(gsum, 0);
        ctx.barrier_wait(barrier);
        // Initialization done: the measured region starts here, as the
        // paper's timers would.
        ctx.start_timing();

        for _i in 0..p.n_outer {
            let mut sum = 0.0;
            for _j in 0..p.m_inner {
                for k in 0..p.s_rows {
                    let mut rsum = 0.0;
                    ctx.update_block(arr, row_start(k), p.b_cols, &mut |_, x| {
                        let nx = R * x;
                        rsum += nx;
                        nx
                    });
                    // One multiply + one add per element (Figure 2's "two
                    // floating point operations per data element").
                    ctx.compute(2 * p.b_cols as u64);
                    sum += std::f64::consts::PI * rsum;
                    ctx.compute(2);
                }
            }
            ctx.lock(lock);
            let g = ctx.read(gsum, 0);
            ctx.write(gsum, 0, g + sum);
            ctx.unlock(lock);
            ctx.barrier_wait(barrier);
        }
    });

    MicroResult { report, gsum: rt.fetch_f64(gsum, 1)[0] }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samhita_core::SamhitaConfig;
    use samhita_rt::{NativeRt, SamhitaRt};

    // 16 doubles = 128 bytes = half a test page, so adjacent rows share
    // pages and the strided variant actually false-shares.
    fn tiny(mode: AllocMode, threads: u32) -> MicroParams {
        MicroParams { n_outer: 3, m_inner: 2, s_rows: 2, b_cols: 16, mode, threads }
    }

    fn assert_close(a: f64, b: f64) {
        let rel = (a - b).abs() / b.abs().max(1e-300);
        assert!(rel < 1e-9, "{a} vs {b} (rel {rel:.3e})");
    }

    #[test]
    fn native_matches_analytic_gsum_all_modes() {
        let rt = NativeRt::default();
        for mode in [AllocMode::Local, AllocMode::Global, AllocMode::GlobalStrided] {
            let p = tiny(mode, 4);
            let r = run_micro(&rt, &p);
            assert_close(r.gsum, expected_gsum(&p));
        }
    }

    #[test]
    fn samhita_matches_analytic_gsum_all_modes() {
        for mode in [AllocMode::Local, AllocMode::Global, AllocMode::GlobalStrided] {
            let rt = SamhitaRt::new(SamhitaConfig::small_for_tests());
            let p = tiny(mode, 4);
            let r = run_micro(&rt, &p);
            assert_close(r.gsum, expected_gsum(&p));
        }
    }

    #[test]
    fn single_thread_backends_agree_exactly() {
        let p = tiny(AllocMode::Local, 1);
        let native = run_micro(&NativeRt::default(), &p);
        let samhita = run_micro(&SamhitaRt::new(SamhitaConfig::small_for_tests()), &p);
        assert_eq!(native.gsum, samhita.gsum, "P=1 is fully deterministic");
    }

    #[test]
    fn strided_mode_suffers_more_false_sharing_than_local() {
        // The paper's central claim in miniature: with tiny pages, strided
        // global access causes invalidation refetches; local allocation
        // causes none after warm-up.
        let cfg = SamhitaConfig::small_for_tests();
        let local = run_micro(&SamhitaRt::new(cfg.clone()), &tiny(AllocMode::Local, 4));
        let strided = run_micro(&SamhitaRt::new(cfg), &tiny(AllocMode::GlobalStrided, 4));
        let refetch_local = local.report.total_of(|t| t.page_refetches);
        let refetch_strided = strided.report.total_of(|t| t.page_refetches);
        assert!(
            refetch_strided > refetch_local,
            "strided {refetch_strided} vs local {refetch_local}"
        );
    }

    #[test]
    fn paper_params_constructor() {
        let p = MicroParams::paper(10, 2, AllocMode::Global, 16);
        assert_eq!(p.n_outer, 10);
        assert_eq!(p.b_cols, 260);
        assert_eq!(p.m_inner, 10);
        assert_eq!(AllocMode::GlobalStrided.label(), "global strided");
    }

    #[test]
    fn expected_gsum_scales_linearly_in_threads_and_rows() {
        let p1 = tiny(AllocMode::Local, 1);
        let p4 = tiny(AllocMode::Local, 4);
        assert_close(expected_gsum(&p4), 4.0 * expected_gsum(&p1));
        let mut p2 = p1;
        p2.s_rows *= 2;
        assert_close(expected_gsum(&p2), 2.0 * expected_gsum(&p1));
    }
}
