#![warn(missing_docs)]

//! # Paper workloads
//!
//! The three programs the paper evaluates, written once against the
//! `samhita-rt` façade so the identical kernel runs on both the native
//! ("pthreads") baseline and the Samhita DSM — the Rust equivalent of the
//! paper's m4-macro shared code base:
//!
//! * [`micro`] — the Figure 2 micro-benchmark: a per-thread block of
//!   `S × B` doubles updated `M` times per outer iteration, a mutex-protected
//!   global sum, and a barrier; with the three allocation / access-pattern
//!   variants (local, global, global strided) that control false sharing.
//! * [`jacobi`] — Jacobi iteration for the linear system of a discrete
//!   Laplacian: nearest-neighbour access, one mutex + three barriers per
//!   outer iteration (Figure 12).
//! * [`md`] — a velocity-Verlet n-body simulation with O(n) work per
//!   particle, mutex-protected kinetic/potential energy accumulation and
//!   three barriers per step (Figure 13).

pub mod jacobi;
pub mod md;
pub mod micro;

pub use jacobi::{
    run_jacobi, serial_reference as serial_reference_jacobi, JacobiParams, JacobiResult,
};
pub use md::{run_md, serial_reference as serial_reference_md, MdParams, MdResult};
pub use micro::{expected_gsum, run_micro, AllocMode, MicroParams, MicroResult};
