//! Criterion benches for the simulator's own hot paths — the code the
//! host-side profiler (`samhita-prof`) attributes wall time to: regc
//! diffing, `UpdateBatch` apply at a memory server, one deterministic
//! scheduler step, the det-endpoint staged receive (heap pop), trace-event
//! emission, and span-graph/critical-path construction. An end-to-end
//! jacobi pair (tracing on vs off) sits at the bottom so the
//! tracing-disabled fast path shows up as a whole-run ns-per-event number,
//! not just a micro-benchmark delta.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use samhita_bench::thread_windows;
use samhita_core::SamhitaConfig;
use samhita_kernels::{run_jacobi, JacobiParams};
use samhita_mem::{MemRequest, MemoryServer, PageId, ServiceModel};
use samhita_regc::{Diff, UpdateBatch, UpdatePart};
use samhita_rt::SamhitaRt;
use samhita_sched::Scheduler;
use samhita_scl::SimTime;
use samhita_trace::{critical_path, EventKind, TraceBuf, Tracer, TrackId};

const PAGE: usize = 4096;

/// Word-granularity twin diffing — the regc hot loop on every flush.
fn bench_diff_compute(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/diff");
    let twin = vec![0u8; PAGE];
    let mut sparse = twin.clone();
    for i in (0..PAGE).step_by(512) {
        sparse[i] = 0xFF;
    }
    g.throughput(Throughput::Bytes(PAGE as u64));
    g.bench_function("compute_sparse_4k", |b| {
        b.iter(|| std::hint::black_box(Diff::compute(&twin, &sparse)))
    });
    g.finish();
}

/// Applying one flush's `UpdateBatch` at a memory server.
fn bench_batch_apply(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/batch_apply");
    let twin = vec![0u8; PAGE];
    let mut dirty = twin.clone();
    for i in (0..PAGE).step_by(256) {
        dirty[i] = 0x7F;
    }
    let diff = Diff::compute(&twin, &dirty);
    let make_batch = || {
        let mut batch = UpdateBatch::new();
        for page in 0..8u64 {
            batch.push(UpdatePart::Diff { page, diff: diff.clone() });
            batch.push(UpdatePart::Fine { page, offset: 64, bytes: vec![3u8; 32] });
        }
        batch
    };
    g.bench_function("apply_16_parts", |b| {
        b.iter_batched(
            || {
                let mut server = MemoryServer::new(PAGE, ServiceModel::default());
                for page in 0..8u64 {
                    server.handle(
                        MemRequest::WritePage { page: PageId(page), bytes: vec![0u8; PAGE] },
                        SimTime::ZERO,
                    );
                }
                (server, make_batch())
            },
            |(mut server, batch)| {
                std::hint::black_box(
                    server.handle(MemRequest::UpdateBatch { batch }, SimTime::from_ns(100)),
                )
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// One deterministic scheduler step: a Running task yields to a future
/// instant and — being the only Ready task — re-grants itself. The pick
/// scan is the cost under measurement; the parked variant scans a realistic
/// task table.
fn bench_sched_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/sched");
    g.bench_function("step_self_regrant_1_task", |b| {
        let sched = Scheduler::new(7);
        let task = sched.register_running();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            std::hint::black_box(task.yield_until(t))
        });
    });
    g.bench_function("step_self_regrant_64_tasks", |b| {
        let sched = Scheduler::new(7);
        let task = sched.register_running();
        let _parked: Vec<_> = (0..63).map(|_| sched.register_parked()).collect();
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            std::hint::black_box(task.yield_until(t))
        });
    });
    g.finish();
}

/// Deterministic endpoint receive: drain the physical channel into the
/// per-sender-monotone heap, then pop in effective-time order.
fn bench_det_recv(c: &mut Criterion) {
    use samhita_scl::{Fabric, MsgClass, NodeId, Topology};
    let mut g = c.benchmark_group("hotpaths/det_recv");
    let topo = Topology::cluster(2, samhita_scl::profiles::ib_qdr());
    let fabric = Fabric::<u64>::new(topo);
    let dst = fabric.add_endpoint(NodeId(1));
    let srcs: Vec<_> = (0..4).map(|_| fabric.add_endpoint(NodeId(0))).collect();
    g.bench_function("stage_and_pop_64", |b| {
        b.iter(|| {
            for i in 0..64u64 {
                let src = &srcs[(i % 4) as usize];
                src.send(dst.id(), SimTime::from_ns(i * 10), 64, MsgClass::Data, i).expect("send");
            }
            let mut sum = 0u64;
            for _ in 0..64 {
                sum += dst.recv().expect("recv").msg;
            }
            std::hint::black_box(sum)
        })
    });
    g.finish();
}

/// Trace-event emission into the bounded per-track ring.
fn bench_trace_emit(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/trace");
    g.bench_function("emit_ring_push", |b| {
        let tracer = Tracer::new(1 << 14);
        let mut buf: TraceBuf = tracer.buf(TrackId::Thread(0));
        let mut at = 0u64;
        b.iter(|| {
            at += 1;
            buf.push(SimTime::from_ns(at), EventKind::DiffFlush { page: at % 64, bytes: 128 });
            std::hint::black_box(buf.len())
        });
    });
    // The payload a `BatchFlush` event carries: `wire_bytes` walks every
    // part (and every diff's runs). Before the lazy `trace(|| ...)` path
    // this was computed per flush per server even with tracing off; now an
    // untraced run skips it entirely, so this number *is* the per-flush
    // saving.
    let twin = vec![0u8; PAGE];
    let mut dirty = twin.clone();
    for i in (0..PAGE).step_by(256) {
        dirty[i] = 0x7F;
    }
    let diff = Diff::compute(&twin, &dirty);
    let mut batch = UpdateBatch::new();
    for page in 0..8u64 {
        batch.push(UpdatePart::Diff { page, diff: diff.clone() });
        batch.push(UpdatePart::Fine { page, offset: 64, bytes: vec![3u8; 32] });
    }
    g.bench_function("construct_batch_flush_event", |b| {
        b.iter(|| {
            std::hint::black_box(EventKind::BatchFlush {
                server: 0,
                parts: batch.len() as u32,
                bytes: batch.wire_bytes() as u64,
            })
        })
    });
    g.finish();
}

/// Span-graph / critical-path construction from a finished trace.
fn bench_critpath_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/critpath");
    g.sample_size(10);
    let cfg = SamhitaConfig { tracing: true, max_threads: 8, ..SamhitaConfig::small_for_tests() };
    let rt = SamhitaRt::new(cfg.clone());
    let p = JacobiParams { n: 16, iters: 2, threads: 8 };
    let report = run_jacobi(&rt, &p).report;
    let trace = rt.take_trace().expect("tracing was enabled");
    let windows = thread_windows(&report);
    let costs = cfg.service_costs();
    g.bench_function("jacobi_8t", |b| {
        b.iter(|| std::hint::black_box(critical_path(&trace, &windows, &costs)))
    });
    g.finish();
}

/// Whole-run cost with tracing off vs on. The off variant is the common
/// production configuration and the target of the lazy trace-construction
/// fast path; the delta between the two is what tracing actually costs.
fn bench_end_to_end_tracing(c: &mut Criterion) {
    let mut g = c.benchmark_group("hotpaths/jacobi_8t");
    g.sample_size(10);
    let p = JacobiParams { n: 16, iters: 2, threads: 8 };
    let base = SamhitaConfig { max_threads: 8, ..SamhitaConfig::small_for_tests() };
    // One extra run to report the constant event count: divide the ns/iter
    // below by this for ns-per-simulated-event.
    let rt = SamhitaRt::new(SamhitaConfig { tracing: false, ..base.clone() });
    let events = run_jacobi(&rt, &p).report.fabric.total_msgs();
    eprintln!("hotpaths/jacobi_8t: {events} simulated events per iteration");
    g.bench_function("tracing_off", |b| {
        let cfg = SamhitaConfig { tracing: false, ..base.clone() };
        b.iter(|| {
            let rt = SamhitaRt::new(cfg.clone());
            std::hint::black_box(run_jacobi(&rt, &p).report.makespan)
        })
    });
    g.bench_function("tracing_on", |b| {
        let cfg = SamhitaConfig { tracing: true, ..base.clone() };
        b.iter(|| {
            let rt = SamhitaRt::new(cfg.clone());
            std::hint::black_box(run_jacobi(&rt, &p).report.makespan)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_diff_compute,
    bench_batch_apply,
    bench_sched_step,
    bench_det_recv,
    bench_trace_emit,
    bench_critpath_build,
    bench_end_to_end_tracing
);
criterion_main!(benches);
