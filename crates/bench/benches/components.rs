//! Criterion benches for the substrate hot paths: the diff engine, the
//! fine-grain write set, the software cache, the free-list allocator, the
//! fabric send path, and a small end-to-end micro-benchmark run on each
//! backend.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use samhita_core::cache::SoftCache;
use samhita_core::freelist::FreeListAlloc;
use samhita_core::localsync::LocalSync;
use samhita_core::manager::ManagerEngine;
use samhita_core::msg::MgrRequest;
use samhita_core::{EvictionPolicy, SamhitaConfig};
use samhita_kernels::{run_micro, AllocMode, MicroParams};
use samhita_regc::{Diff, RegionKind, WriteSet};
use samhita_rt::{NativeRt, SamhitaRt};
use samhita_scl::EndpointId;
use samhita_scl::{Fabric, MsgClass, NodeId, SimTime, Topology};

const PAGE: usize = 4096;

fn bench_diff(c: &mut Criterion) {
    let mut g = c.benchmark_group("diff");
    let twin = vec![0u8; PAGE];

    // Sparse change: one word per 512 bytes.
    let mut sparse = twin.clone();
    for i in (0..PAGE).step_by(512) {
        sparse[i] = 0xFF;
    }
    // Dense change: every word.
    let dense = vec![0xABu8; PAGE];

    g.throughput(Throughput::Bytes(PAGE as u64));
    g.bench_function("compute_sparse", |b| {
        b.iter(|| std::hint::black_box(Diff::compute(&twin, &sparse)))
    });
    g.bench_function("compute_dense", |b| {
        b.iter(|| std::hint::black_box(Diff::compute(&twin, &dense)))
    });
    let d = Diff::compute(&twin, &sparse);
    g.bench_function("apply_sparse", |b| {
        b.iter_batched(
            || twin.clone(),
            |mut page| {
                d.apply(&mut page);
                page
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_writeset(c: &mut Criterion) {
    let mut g = c.benchmark_group("writeset");
    g.bench_function("record_coalescing_1k", |b| {
        b.iter(|| {
            let mut ws = WriteSet::new();
            for i in 0..1024u64 {
                ws.record(i * 8, &[1u8; 8]);
            }
            std::hint::black_box(ws.range_count())
        })
    });
    g.bench_function("record_random_256", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        let addrs: Vec<u64> = (0..256).map(|_| rng.gen_range(0..16_384)).collect();
        b.iter(|| {
            let mut ws = WriteSet::new();
            for &a in &addrs {
                ws.record(a, &[1u8; 8]);
            }
            std::hint::black_box(ws.payload_bytes())
        })
    });
    g.bench_function("drain_per_page", |b| {
        b.iter_batched(
            || {
                let mut ws = WriteSet::new();
                for i in 0..512u64 {
                    ws.record(i * 24, &[1u8; 16]);
                }
                ws
            },
            |mut ws| std::hint::black_box(ws.drain_per_page(4096)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let line_bytes = 4 * PAGE;

    g.bench_function("install_and_evict", |b| {
        b.iter_batched(
            || SoftCache::new(PAGE, 4, 16, EvictionPolicy::DirtyFirst),
            |mut cache| {
                for line in 0..32u64 {
                    while cache.is_full() {
                        let (_, victim) = cache.pop_victim().expect("lines present");
                        std::hint::black_box(cache.diffs_of_evicted(victim));
                    }
                    cache.install_line(line, vec![0u8; line_bytes], vec![0; 4]);
                }
                cache
            },
            BatchSize::SmallInput,
        )
    });

    g.bench_function("write_flush_cycle", |b| {
        b.iter_batched(
            || {
                let mut cache = SoftCache::new(PAGE, 4, 16, EvictionPolicy::DirtyFirst);
                cache.install_line(0, vec![0u8; line_bytes], vec![0; 4]);
                cache
            },
            |mut cache| {
                for off in (0..PAGE).step_by(64) {
                    cache.write_page(1, off, &[7u8; 8], RegionKind::Ordinary);
                }
                std::hint::black_box(cache.flush_page(1))
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_freelist(c: &mut Criterion) {
    c.bench_function("freelist/alloc_free_churn", |b| {
        b.iter_batched(
            || FreeListAlloc::new(0, 1 << 24),
            |mut a| {
                let mut held = Vec::new();
                for i in 0..256u64 {
                    if let Some(p) = a.alloc(64 + (i % 7) * 128, 8) {
                        held.push(p);
                    }
                    if i % 3 == 0 {
                        if let Some(p) = held.pop() {
                            a.free(p);
                        }
                    }
                }
                std::hint::black_box(a.live_bytes())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_fabric(c: &mut Criterion) {
    let mut g = c.benchmark_group("fabric");
    let topo = Topology::cluster(2, samhita_scl::profiles::ib_qdr());
    let fabric = Fabric::<u64>::new(topo);
    let a = fabric.add_endpoint(NodeId(0));
    let b_ep = fabric.add_endpoint(NodeId(1));
    g.bench_function("send_recv_4k", |bench| {
        bench.iter(|| {
            a.send(b_ep.id(), SimTime::ZERO, 4096, MsgClass::Data, 1).expect("send");
            std::hint::black_box(b_ep.recv().expect("recv"))
        })
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("end_to_end_micro");
    g.sample_size(10);
    let p = MicroParams {
        n_outer: 2,
        m_inner: 2,
        s_rows: 2,
        b_cols: 64,
        mode: AllocMode::Global,
        threads: 4,
    };
    g.bench_function("native_4t", |b| {
        b.iter(|| {
            let rt = NativeRt::default();
            std::hint::black_box(run_micro(&rt, &p).gsum)
        })
    });
    g.bench_function("samhita_4t", |b| {
        b.iter(|| {
            let rt = SamhitaRt::new(SamhitaConfig::small_for_tests());
            std::hint::black_box(run_micro(&rt, &p).gsum)
        })
    });
    g.finish();
}

fn bench_manager(c: &mut Criterion) {
    let mut g = c.benchmark_group("manager");
    g.bench_function("lock_handoff_cycle", |b| {
        b.iter_batched(
            || {
                let mut e = ManagerEngine::new(&SamhitaConfig::small_for_tests());
                for tid in 0..2u32 {
                    e.handle(
                        EndpointId(tid),
                        tid,
                        1,
                        MgrRequest::Register { observer: false },
                        SimTime::ZERO,
                    );
                }
                e.handle(EndpointId(0), 0, 2, MgrRequest::CreateLock, SimTime::ZERO);
                e
            },
            |mut e| {
                let mut now = SimTime::ZERO;
                for i in 0..64u64 {
                    now += SimTime::from_ns(100);
                    e.handle(
                        EndpointId(0),
                        0,
                        10 + i,
                        MgrRequest::Acquire {
                            lock: 0,
                            pages: vec![i],
                            updates: vec![],
                            last_seen: i,
                        },
                        now,
                    );
                    e.handle(
                        EndpointId(0),
                        0,
                        10 + i,
                        MgrRequest::Release {
                            lock: 0,
                            pages: vec![],
                            updates: vec![],
                            last_seen: i,
                        },
                        now,
                    );
                }
                std::hint::black_box(e.stats().acquires)
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_localsync(c: &mut Criterion) {
    let mut g = c.benchmark_group("localsync");
    g.bench_function("uncontended_lock_cycle", |b| {
        let s = LocalSync::new(150);
        let l = s.create_lock();
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimTime::from_ns(10);
            let (at, _, _) = s.acquire(l, 0, now, Vec::new(), Vec::new(), 0);
            s.release(l, 0, at, Vec::new(), Vec::new());
            std::hint::black_box(at)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_diff,
    bench_writeset,
    bench_cache,
    bench_freelist,
    bench_fabric,
    bench_manager,
    bench_localsync,
    bench_end_to_end
);
criterion_main!(benches);
