//! Shared harness types: scales, figure data, CSV/tabular output.

use samhita_core::{RunReport, SamhitaConfig};
use serde::{Deserialize, Serialize};

/// One-run diagnostic block: the compute/sync split as a ratio, the
/// per-thread skew, and the three stall-latency histograms. Printed by the
/// examples and `trace-dump` after each traced run.
pub fn run_summary(report: &RunReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "  makespan          {}  ({} threads)\n",
        report.makespan,
        report.threads.len()
    ));
    out.push_str(&format!("  sync fraction     {:.1}%\n", report.sync_fraction() * 100.0));
    out.push_str(&format!("  compute imbalance {:.3}x (max/mean)\n", report.compute_imbalance()));
    out.push_str(&format!("  fetch stalls      {}\n", report.fetch_latency().summary()));
    out.push_str(&format!("  lock waits        {}\n", report.lock_wait().summary()));
    out.push_str(&format!("  barrier waits     {}\n", report.barrier_wait().summary()));
    // Per-class fabric traffic plus the per-sync-op message rate — the
    // flush-batching signal (O(servers) batched, O(dirty pages) not).
    let cells: Vec<String> = samhita_scl::MsgClass::ALL
        .iter()
        .map(|&c| format!("{} {}/{}B", c.label(), report.fabric.msgs(c), report.fabric.bytes(c)))
        .collect();
    out.push_str(&format!("  fabric msgs       {}\n", cells.join(", ")));
    out.push_str(&format!(
        "  msgs per sync op  {:.2}  ({} sync ops)\n",
        report.msgs_per_sync_op(),
        report.sync_ops()
    ));
    // Host-side cost of producing the run: wall time, simulated-event
    // throughput, and peak RSS. Always printed — this is the one line on
    // the *host* clock, and it reads 0 only for reports built by hand.
    let host_ns = report.host_wall_ns.get();
    let events = report.fabric.total_msgs();
    let events_per_sec = if host_ns == 0 { 0.0 } else { events as f64 / (host_ns as f64 / 1e9) };
    out.push_str(&format!(
        "  host              {:.3}s wall, {:.0} simulated events/s, peak RSS {} MiB\n",
        host_ns as f64 / 1e9,
        events_per_sec,
        samhita_prof::peak_rss_bytes() >> 20
    ));
    // Service-side utilization rides on the always-on busy accounting; a
    // native (non-DSM) run has no services and skips the lines entirely.
    if report.layout.is_some() {
        out.push_str(&format!("  manager util      {:.1}%\n", report.mgr_utilization() * 100.0));
        let per_server: Vec<String> =
            report.server_utilization().iter().map(|u| format!("{:.1}%", u * 100.0)).collect();
        out.push_str(&format!("  mem-server util   {}\n", per_server.join(" ")));
        // Where all thread-time went: the five disjoint measured wait
        // classes plus derived compute and idle — sums to threads×makespan
        // exactly (the conservation identity the accounting tests pin).
        let b = report.wait_breakdown();
        if b.total_ns > 0 {
            let pct = |ns: u64| ns as f64 * 100.0 / b.total_ns as f64;
            out.push_str(&format!(
                "  time breakdown    compute {:.1}% / fetch {:.1}% / lock {:.1}% / \
                 barrier {:.1}% / mgr {:.1}% / flush {:.1}% / idle {:.1}%\n",
                pct(b.compute_ns),
                pct(b.fetch_ns),
                pct(b.lock_ns),
                pct(b.barrier_ns),
                pct(b.mgr_ns),
                pct(b.flush_ns),
                pct(b.idle_ns)
            ));
        }
        // Manager queue pressure — "the manager is the wall", measured.
        if report.mgr_requests > 0 {
            out.push_str(&format!(
                "  mgr queue         wait {:.2}% of thread-time, mean depth {:.2}, \
                 peak {}, {} requests\n",
                report.mgr_queue_wait_fraction() * 100.0,
                report.mgr_mean_queue_depth(),
                report.mgr_peak_queue_depth,
                report.mgr_requests
            ));
        }
        let server_qwait: u64 = report.server_queue_wait_ns.iter().sum();
        if server_qwait > 0 {
            out.push_str(&format!(
                "  server queues     wait {server_qwait}ns total, peak depth {}\n",
                report.server_peak_queue_depth.iter().copied().max().unwrap_or(0)
            ));
        }
    }
    // Top pages by coherence churn, with their allocation sites — the
    // false-sharing culprits, printed without any flag.
    let hot = report.hotspots();
    let top = hot.top_churn(3);
    if !top.is_empty() {
        out.push_str("  hot pages         ");
        let cells: Vec<String> = top
            .iter()
            .map(|(page, c)| {
                format!(
                    "page {page} [{}] {} refetch / {} inval / {} twin",
                    report.site_label(*page),
                    c.refetches,
                    c.invalidations,
                    c.twins
                )
            })
            .collect();
        out.push_str(&cells.join(", "));
        out.push('\n');
    }
    let retries = report.total_of(|t| t.retries);
    let failovers = report.total_of(|t| t.failovers);
    if report.fabric.total_faults() > 0 || retries > 0 || failovers > 0 {
        out.push_str(&format!(
            "  faults injected   {} dropped, {} duplicated, {} delayed\n",
            report.fabric.total_drops(),
            report.fabric.total_dups(),
            report.fabric.total_delays(),
        ));
        out.push_str(&format!("  recovery          {retries} retries, {failovers} failovers\n"));
    }
    // Manager replication and crash recovery: shipped-log volume when a hot
    // standby mirrors the primary, and the takeover story when it fired.
    if report.log_records_shipped > 0 || report.takeover_ns > 0 {
        out.push_str(&format!(
            "  mgr replication   {} log records shipped\n",
            report.log_records_shipped
        ));
    }
    if report.takeover_ns > 0 {
        out.push_str(&format!(
            "  mgr failover      takeover at {}ns, {} threads re-homed, {} standby serves, \
             {} leases reclaimed, {} stale releases\n",
            report.takeover_ns,
            report.mgr_failovers(),
            report.standby_serves,
            report.lease_reclaims,
            report.stale_releases
        ));
    }
    out
}

/// One labelled series of a figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Series {
    pub label: String,
    /// (x, y) points in x order.
    pub points: Vec<(f64, f64)>,
}

/// One regenerated figure.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FigureData {
    /// Identifier, e.g. `"fig03"` or `"ablation-prefetch"`.
    pub id: String,
    pub title: String,
    pub xlabel: String,
    pub ylabel: String,
    pub series: Vec<Series>,
}

impl FigureData {
    /// Render as CSV (`series,x,y` rows with a commented header).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}: {}\n", self.id, self.title));
        out.push_str(&format!("# x = {}, y = {}\n", self.xlabel, self.ylabel));
        out.push_str("series,x,y\n");
        for s in &self.series {
            for &(x, y) in &s.points {
                out.push_str(&format!("{},{},{}\n", s.label, x, y));
            }
        }
        out
    }

    /// Render as an aligned text table for the terminal.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        out.push_str(&format!("   ({} vs {})\n", self.ylabel, self.xlabel));
        // Union of x values across series, in order.
        let mut xs: Vec<f64> = Vec::new();
        for s in &self.series {
            for &(x, _) in &s.points {
                if !xs.contains(&x) {
                    xs.push(x);
                }
            }
        }
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite x"));
        out.push_str(&format!("{:>24}", "x"));
        for &x in &xs {
            out.push_str(&format!("{x:>12}"));
        }
        out.push('\n');
        for s in &self.series {
            out.push_str(&format!("{:>24}", s.label));
            for &x in &xs {
                match s.points.iter().find(|&&(px, _)| px == x) {
                    Some(&(_, y)) if y != 0.0 && y.abs() < 0.01 => {
                        out.push_str(&format!("{y:>12.3e}"))
                    }
                    Some(&(_, y)) => out.push_str(&format!("{y:>12.4}")),
                    None => out.push_str(&format!("{:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Look up a series by label (tests).
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

/// Sweep scales: the paper's parameters, or a reduced scale for CI.
#[derive(Clone, Debug)]
pub struct HarnessConfig {
    /// Pthreads core counts (the paper's node had 8 cores).
    pub pth_cores: Vec<u32>,
    /// Samhita core counts (up to 32 across four compute nodes).
    pub smh_cores: Vec<u32>,
    /// Micro-benchmark constants.
    pub n_outer: usize,
    pub b_cols: usize,
    /// The `M` sweep of Figures 3–5.
    pub m_values: Vec<usize>,
    /// The `S` sweep of Figures 6–10.
    pub s_values: Vec<usize>,
    /// Fixed `M` for Figures 6–11.
    pub m_fixed: usize,
    /// Fixed `S` for Figures 3–5 and 11.
    pub s_fixed: usize,
    /// Thread count for Figures 9–10.
    pub p_fixed: u32,
    /// Jacobi interior grid size and sweeps (Figure 12).
    pub jacobi_n: usize,
    pub jacobi_iters: usize,
    /// MD particle count and steps (Figure 13).
    pub md_n: usize,
    pub md_steps: usize,
    /// Base Samhita configuration (the paper's cluster).
    pub base: SamhitaConfig,
}

impl HarnessConfig {
    /// The paper's scales.
    pub fn paper() -> Self {
        HarnessConfig {
            pth_cores: vec![1, 2, 4, 8],
            smh_cores: vec![1, 2, 4, 8, 16, 32],
            n_outer: 10,
            b_cols: 260,
            m_values: vec![1, 10, 100],
            s_values: vec![1, 2, 4, 8],
            m_fixed: 10,
            s_fixed: 2,
            p_fixed: 16,
            jacobi_n: 1022,
            jacobi_iters: 20,
            md_n: 2048,
            md_steps: 5,
            base: SamhitaConfig::default(),
        }
    }

    /// A reduced scale for CI: same shapes, seconds not minutes.
    pub fn quick() -> Self {
        HarnessConfig {
            pth_cores: vec![1, 2, 4],
            smh_cores: vec![1, 2, 4, 8],
            n_outer: 4,
            // Scale the paper's geometry down 4x in both row length and
            // page size: a row stays ~half a page, so the false-sharing
            // contrast between the three modes is preserved.
            b_cols: 68,
            m_values: vec![1, 10],
            s_values: vec![1, 2, 4],
            m_fixed: 10,
            s_fixed: 2,
            p_fixed: 4,
            jacobi_n: 62,
            jacobi_iters: 6,
            md_n: 256,
            md_steps: 3,
            base: SamhitaConfig { page_size: 1024, ..SamhitaConfig::default() },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FigureData {
        FigureData {
            id: "fig00".into(),
            title: "sample".into(),
            xlabel: "cores".into(),
            ylabel: "time".into(),
            series: vec![
                Series { label: "a".into(), points: vec![(1.0, 2.0), (2.0, 3.0)] },
                Series { label: "b".into(), points: vec![(1.0, 5.0)] },
            ],
        }
    }

    #[test]
    fn csv_contains_all_points() {
        let csv = sample().to_csv();
        assert!(csv.contains("a,1,2"));
        assert!(csv.contains("a,2,3"));
        assert!(csv.contains("b,1,5"));
        assert!(csv.starts_with("# fig00"));
    }

    #[test]
    fn table_renders_missing_points_as_dash() {
        let table = sample().to_table();
        assert!(table.contains("fig00"));
        assert!(table.contains('-'), "series b has no x=2 point");
    }

    #[test]
    fn series_lookup() {
        let f = sample();
        assert_eq!(f.series("a").unwrap().points.len(), 2);
        assert!(f.series("zz").is_none());
    }

    #[test]
    fn scales_are_consistent() {
        for cfg in [HarnessConfig::paper(), HarnessConfig::quick()] {
            assert!(!cfg.pth_cores.is_empty());
            assert!(cfg.smh_cores.iter().all(|&c| c <= 32));
            assert!(cfg.m_values.contains(&1));
            cfg.base.validate().expect("harness base configs are valid");
        }
    }
}
