//! Ablation studies: the paper's §V future-work directions and the design
//! choices `DESIGN.md §5` calls out.

use samhita_core::{
    ConsistencyVariant, EvictionPolicy, FabricProfile, SamhitaConfig, TopologyKind,
};
use samhita_kernels::{run_micro, AllocMode, MicroParams};
use samhita_rt::SamhitaRt;

use crate::harness::{FigureData, HarnessConfig, Series};

fn micro(
    cfg: &HarnessConfig,
    sys: SamhitaConfig,
    m: usize,
    s: usize,
    mode: AllocMode,
    threads: u32,
) -> samhita_kernels::MicroResult {
    let rt = SamhitaRt::new(sys);
    run_micro(
        &rt,
        &MicroParams {
            n_outer: cfg.n_outer,
            m_inner: m,
            s_rows: s,
            b_cols: cfg.b_cols,
            mode,
            threads,
        },
    )
}

/// A cold sequential sweep over a large shared array — every line is a
/// demand miss, so anticipatory paging and line geometry are on the
/// critical path (unlike the warm-cache micro-benchmark iterations).
fn stream_secs(sys: SamhitaConfig, threads: u32, doubles_per_thread: usize) -> f64 {
    let rt = SamhitaRt::new(sys);
    let total = doubles_per_thread * threads as usize;
    let arr = rt.alloc_f64_global(total);
    use samhita_rt::KernelRt;
    let report = rt.run(threads, &move |ctx| {
        let base = ctx.tid() as usize * doubles_per_thread;
        let mut buf = vec![0.0f64; 512];
        let mut acc = 0.0;
        let mut at = 0;
        while at < doubles_per_thread {
            let take = 512.min(doubles_per_thread - at);
            ctx.read_block(arr, base + at, &mut buf[..take]);
            acc += buf[..take].iter().sum::<f64>();
            ctx.compute(take as u64);
            at += take;
        }
        std::hint::black_box(acc);
    });
    report.mean_compute().as_secs_f64()
}

/// Anticipatory paging on/off: cold sequential streaming, where adjacent-
/// line prefetch hides the fetch round-trip.
pub fn prefetch(cfg: &HarnessConfig) -> FigureData {
    let per_thread = 1 << 16; // 512 KiB of doubles per thread
    let mut series = Vec::new();
    for (label, on) in [("prefetch on", true), ("prefetch off", false)] {
        let mut points = Vec::new();
        for &p in &cfg.smh_cores {
            let sys = SamhitaConfig { prefetch: on, ..cfg.base.clone() };
            points.push((p as f64, stream_secs(sys, p, per_thread)));
        }
        series.push(Series { label: label.into(), points });
    }
    FigureData {
        id: "ablation-prefetch".into(),
        title: "Anticipatory paging (adjacent-line prefetch), cold stream".into(),
        xlabel: "number of cores".into(),
        ylabel: "compute time (s)".into(),
        series,
    }
}

/// Cache-line size sweep (pages per line): the tradeoff the paper's
/// multi-page lines buy into. Bigger lines amortize cold-miss round-trips
/// (streaming series) but enlarge refetch bulk under false sharing
/// (strided series).
pub fn linesize(cfg: &HarnessConfig) -> FigureData {
    let mut cold = Vec::new();
    let mut shared = Vec::new();
    for line_pages in [1u32, 2, 4, 8] {
        let sys = SamhitaConfig { line_pages, ..cfg.base.clone() };
        cold.push((line_pages as f64, stream_secs(sys, 4, 1 << 16)));
        let sys = SamhitaConfig { line_pages, ..cfg.base.clone() };
        let r = micro(cfg, sys, 1, cfg.s_fixed, AllocMode::GlobalStrided, cfg.p_fixed);
        shared.push((line_pages as f64, r.report.mean_compute().as_secs_f64()));
    }
    FigureData {
        id: "ablation-linesize".into(),
        title: "Cache-line size (pages per line)".into(),
        xlabel: "pages per cache line".into(),
        ylabel: "compute time (s)".into(),
        series: vec![
            Series { label: "cold stream (4 threads)".into(), points: cold },
            Series { label: "strided, M=1 (false sharing)".into(), points: shared },
        ],
    }
}

/// Eviction policy under cache pressure: the paper's written-page bias vs
/// plain LRU. Uses a cache small enough that the working set does not fit.
pub fn eviction(cfg: &HarnessConfig) -> FigureData {
    let mut series = Vec::new();
    for (label, policy) in
        [("dirty-first (paper)", EvictionPolicy::DirtyFirst), ("plain LRU", EvictionPolicy::Lru)]
    {
        let mut points = Vec::new();
        for &s in &cfg.s_values {
            let sys =
                SamhitaConfig { cache_capacity_lines: 4, eviction: policy, ..cfg.base.clone() };
            let r = micro(cfg, sys, cfg.m_fixed, s, AllocMode::Global, cfg.p_fixed);
            points.push((s as f64, r.report.mean_compute().as_secs_f64()));
        }
        series.push(Series { label: label.into(), points });
    }
    FigureData {
        id: "ablation-eviction".into(),
        title: "Eviction policy under cache pressure (4-line cache)".into(),
        xlabel: "number of rows of data (S)".into(),
        ylabel: "compute time (s)".into(),
        series,
    }
}

/// RegC's fine-grain consistency-region updates vs whole-page handling:
/// synchronization time and update traffic of the lock-carrying
/// micro-benchmark.
pub fn finegrain(cfg: &HarnessConfig) -> FigureData {
    let mut series = Vec::new();
    for (label, variant) in [
        ("fine-grain (RegC)", ConsistencyVariant::FineGrain),
        ("whole-page", ConsistencyVariant::WholePage),
    ] {
        let mut sync_pts = Vec::new();
        for &p in &cfg.smh_cores {
            let sys = SamhitaConfig { consistency: variant, ..cfg.base.clone() };
            let r = micro(cfg, sys, cfg.m_fixed, cfg.s_fixed, AllocMode::Local, p);
            sync_pts.push((p as f64, r.report.mean_sync().as_secs_f64()));
        }
        series.push(Series { label: label.into(), points: sync_pts });
    }
    FigureData {
        id: "ablation-finegrain".into(),
        title: "Consistency-region update granularity".into(),
        xlabel: "number of cores".into(),
        ylabel: "synchronization time (s)".into(),
        series,
    }
}

/// §V: single-node manager bypass for synchronization.
pub fn bypass(cfg: &HarnessConfig) -> FigureData {
    let mut series = Vec::new();
    for (label, on) in [("manager RPCs", false), ("local bypass (§V)", true)] {
        let mut points = Vec::new();
        for &p in &cfg.smh_cores {
            let sys = SamhitaConfig {
                topology: TopologyKind::SingleNode,
                manager_bypass: on,
                ..cfg.base.clone()
            };
            let r = micro(cfg, sys, cfg.m_fixed, cfg.s_fixed, AllocMode::Local, p);
            points.push((p as f64, r.report.mean_sync().as_secs_f64()));
        }
        series.push(Series { label: label.into(), points });
    }
    FigureData {
        id: "ablation-bypass".into(),
        title: "Single-node synchronization: manager vs local bypass".into(),
        xlabel: "number of cores".into(),
        ylabel: "synchronization time (s)".into(),
        series,
    }
}

/// §V: SCL over SCIF vs the verbs-proxy path on a host+coprocessor node.
pub fn scif(cfg: &HarnessConfig) -> FigureData {
    let mut series = Vec::new();
    for (label, fabric) in
        [("verbs proxy", FabricProfile::PcieVerbsProxy), ("SCIF (§V)", FabricProfile::Scif)]
    {
        let mut points = Vec::new();
        for &p in &cfg.smh_cores {
            let sys = SamhitaConfig {
                topology: TopologyKind::HeteroNode { coprocessors: 1, cores_per_cop: 60 },
                fabric,
                ..cfg.base.clone()
            };
            let r = micro(cfg, sys, 1, cfg.s_fixed, AllocMode::Global, p);
            let total = r.report.mean_compute() + r.report.mean_sync();
            points.push((p as f64, total.as_secs_f64()));
        }
        series.push(Series { label: label.into(), points });
    }
    FigureData {
        id: "ablation-scif".into(),
        title: "Host+coprocessor SCL transport (M=1, global)".into(),
        xlabel: "number of cores".into(),
        ylabel: "compute + synchronization time (s)".into(),
        series,
    }
}

/// Memory-server striping: hot-spot relief. A cold stream from many
/// threads queues at a single memory server; striping a large allocation
/// across servers (strategy 3's purpose) spreads the fetch load.
pub fn stripe(cfg: &HarnessConfig) -> FigureData {
    let mut points_by_servers = Vec::new();
    let threads = *cfg.smh_cores.last().expect("nonempty cores");
    for servers in [1u32, 2, 4] {
        let nodes = 2 + servers + 4; // manager + servers + compute nodes
        let sys = SamhitaConfig {
            mem_servers: servers,
            topology: TopologyKind::Cluster { nodes },
            ..cfg.base.clone()
        };
        points_by_servers.push((servers as f64, stream_secs(sys, threads, 1 << 16)));
    }
    FigureData {
        id: "ablation-stripe".into(),
        title: format!("Memory-server striping, cold stream ({threads} threads)"),
        xlabel: "memory servers".into(),
        ylabel: "compute time (s)".into(),
        series: vec![Series { label: "cold stream".into(), points: points_by_servers }],
    }
}

/// The interconnect sweep behind the paper's motivation: "the DSM systems
/// proposed 10 or 20 years ago never made a big impact (primarily due to
/// relatively slow interconnects)" — the same workload on a 10 GbE-class
/// fabric vs QDR InfiniBand vs SCIF-grade PCIe.
pub fn interconnect(cfg: &HarnessConfig) -> FigureData {
    let mut series = Vec::new();
    for (label, fabric) in [
        ("10GbE sockets", FabricProfile::Ethernet10g),
        ("QDR InfiniBand", FabricProfile::IbQdr),
        ("PCIe / SCIF", FabricProfile::Scif),
    ] {
        let mut points = Vec::new();
        for &p in &cfg.smh_cores {
            let sys = SamhitaConfig { fabric, ..cfg.base.clone() };
            let r = micro(cfg, sys, cfg.m_fixed, cfg.s_fixed, AllocMode::Global, p);
            let total = r.report.mean_compute() + r.report.mean_sync();
            points.push((p as f64, total.as_secs_f64()));
        }
        series.push(Series { label: label.into(), points });
    }
    FigureData {
        id: "ablation-interconnect".into(),
        title: "Is it time to rethink DSM? Interconnect generations".into(),
        xlabel: "number of cores".into(),
        ylabel: "compute + synchronization time (s)".into(),
        series,
    }
}

/// Dispatch by name.
pub fn ablation(name: &str, cfg: &HarnessConfig) -> FigureData {
    match name {
        "prefetch" => prefetch(cfg),
        "linesize" => linesize(cfg),
        "eviction" => eviction(cfg),
        "finegrain" => finegrain(cfg),
        "bypass" => bypass(cfg),
        "scif" => scif(cfg),
        "stripe" => stripe(cfg),
        "interconnect" => interconnect(cfg),
        other => panic!("unknown ablation '{other}' (see DESIGN.md §5)"),
    }
}

/// All ablation names.
pub const ALL_ABLATIONS: [&str; 8] =
    ["prefetch", "linesize", "eviction", "finegrain", "bypass", "scif", "stripe", "interconnect"];
