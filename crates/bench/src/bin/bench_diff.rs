//! Compare fresh `BENCH_<kernel>.json` reports against committed baselines —
//! the CI regression gate.
//!
//! ```text
//! bench-diff <baseline> <fresh> [--tolerance 0.05] [--host-advisory 1.5]
//! ```
//!
//! `baseline` and `fresh` are either two directories (every `BENCH_*.json`
//! in the baseline directory must have a counterpart in the fresh one) or
//! two files. Exits nonzero when any kernel's makespan or sync fraction
//! regresses beyond the tolerance (relative; default 5%), when a
//! configuration fingerprint does not match its baseline, or when a
//! baseline report has no fresh counterpart. `git_rev` differences are
//! ignored — comparing across commits is the entire point.
//!
//! Host wall-clock cost (the v5 `host` section) always hard-fails only on
//! blowups (see `HOST_BLOWUP_RATIO` in the report module). `--host-advisory
//! RATIO` adds a stricter host ns-per-event gate at the given ratio — CI
//! runs it as a separate `continue-on-error` step so drift is visible
//! without flaking the build on machine noise.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use samhita_bench::{compare, BenchReport};

struct Args {
    baseline: PathBuf,
    fresh: PathBuf,
    tolerance: f64,
    host_advisory: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut tolerance = 0.05;
    let mut host_advisory = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a fraction (e.g. 0.05)")?;
                tolerance = v.parse().map_err(|_| format!("bad tolerance '{v}'"))?;
                if !(0.0..1.0).contains(&tolerance) {
                    return Err(format!("tolerance {tolerance} out of range [0, 1)"));
                }
            }
            "--host-advisory" => {
                let v = it.next().ok_or("--host-advisory needs a ratio (e.g. 1.5)")?;
                let r: f64 = v.parse().map_err(|_| format!("bad host-advisory ratio '{v}'"))?;
                if r <= 1.0 {
                    return Err(format!("host-advisory ratio {r} must exceed 1"));
                }
                host_advisory = Some(r);
            }
            "--help" | "-h" => {
                println!(
                    "usage: bench-diff <baseline> <fresh> [--tolerance 0.05] \
                     [--host-advisory 1.5]"
                );
                std::process::exit(0);
            }
            _ => positional.push(PathBuf::from(arg)),
        }
    }
    if positional.len() != 2 {
        return Err("expected exactly two paths: <baseline> <fresh>".into());
    }
    let fresh = positional.pop().expect("two positionals");
    let baseline = positional.pop().expect("two positionals");
    Ok(Args { baseline, fresh, tolerance, host_advisory })
}

/// Pair up reports: by filename for directories, directly for files.
fn report_pairs(baseline: &Path, fresh: &Path) -> Result<Vec<(PathBuf, PathBuf)>, String> {
    if baseline.is_file() {
        return Ok(vec![(baseline.to_path_buf(), fresh.to_path_buf())]);
    }
    let mut pairs = Vec::new();
    let entries =
        std::fs::read_dir(baseline).map_err(|e| format!("{}: {e}", baseline.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            pairs.push((path.clone(), fresh.join(name)));
        }
    }
    pairs.sort();
    if pairs.is_empty() {
        return Err(format!("no BENCH_*.json reports under {}", baseline.display()));
    }
    Ok(pairs)
}

fn load(path: &Path) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    BenchReport::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!(
                "error: {e}\nusage: bench-diff <baseline> <fresh> [--tolerance 0.05] \
                 [--host-advisory 1.5]"
            );
            return ExitCode::FAILURE;
        }
    };
    let pairs = match report_pairs(&args.baseline, &args.fresh) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!("# bench-diff: tolerance {:.1}%", args.tolerance * 100.0);
    let mut failures = Vec::new();
    for (base_path, fresh_path) in &pairs {
        let base = match load(base_path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(e);
                continue;
            }
        };
        let fresh = match load(fresh_path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{} (fresh report for baseline {})", e, base.kernel));
                continue;
            }
        };
        let cmp = compare(&base, &fresh, args.tolerance);
        for line in &cmp.lines {
            println!("{line}");
        }
        failures.extend(cmp.regressions);
        // Stricter host gate, opted into per invocation. Separate from
        // compare() so the always-on gate keeps its blowup-only semantics.
        if let (Some(ratio), Some(bh), Some(fh)) = (args.host_advisory, &base.host, &fresh.host) {
            if bh.ns_per_event > 0.0 && fh.ns_per_event > bh.ns_per_event * ratio {
                failures.push(format!(
                    "{}: host ns/event {:.1} exceeds {ratio}x the baseline {:.1} \
                     (--host-advisory)",
                    fresh.kernel, fh.ns_per_event, bh.ns_per_event
                ));
            }
        }
    }

    if failures.is_empty() {
        println!("# gate: PASS ({} report(s) within tolerance)", pairs.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("# gate: FAIL");
        for f in &failures {
            eprintln!("REGRESSION: {f}");
        }
        ExitCode::FAILURE
    }
}
