//! Extract and print the virtual-time critical path of one kernel run.
//!
//! ```text
//! critpath                                # jacobi, 8 threads
//! critpath --kernel md --threads 64
//! critpath --kernel micro --threads 8 --top 20
//! critpath --out critpath.json            # machine-readable report
//! ```
//!
//! Runs one kernel with event tracing enabled, extracts the critical path
//! (the chain of causally-dependent intervals whose lengths sum to the
//! makespan — see `samhita_trace::critical_path`), and prints:
//!
//! 1. the composition by class (compute / fetch / lock wait / barrier wait
//!    / manager wait / manager service / server service / queue wait),
//!    which sums to the makespan **exactly** — asserted, not approximated;
//! 2. the top-k longest path segments with page / lock / barrier / op
//!    attribution, plus allocation sites for page segments;
//! 3. optionally, the full deterministic JSON report (`--out`).

use std::path::PathBuf;
use std::process::ExitCode;

use samhita_bench::thread_windows;
use samhita_core::SamhitaConfig;
use samhita_kernels::{
    run_jacobi, run_md, run_micro, AllocMode, JacobiParams, MdParams, MicroParams,
};
use samhita_rt::SamhitaRt;
use samhita_trace::{critical_path, validate_json, PathClass};

struct Args {
    kernel: String,
    threads: u32,
    top: usize,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { kernel: "jacobi".into(), threads: 8, top: 10, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kernel" => {
                let v = it.next().ok_or("--kernel needs 'micro', 'jacobi' or 'md'")?;
                if !matches!(v.as_str(), "micro" | "jacobi" | "md") {
                    return Err(format!("unknown kernel '{v}' (micro | jacobi | md)"));
                }
                args.kernel = v;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a number")?;
                args.top = v.parse().map_err(|_| format!("bad top count '{v}'"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                args.out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: critpath [--kernel micro|jacobi|md] [--threads N] \
                     [--top K] [--out critpath.json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cfg = SamhitaConfig { tracing: true, ..SamhitaConfig::default() };
    let costs = cfg.service_costs();
    let rt = SamhitaRt::new(cfg);
    println!("# critical path of {} kernel, {} threads", args.kernel, args.threads);
    let report = match args.kernel.as_str() {
        "micro" => {
            run_micro(&rt, &MicroParams::paper(10, 2, AllocMode::Global, args.threads)).report
        }
        "md" => {
            run_md(&rt, &MdParams { n: 256, steps: 3, ..MdParams::paper(256, args.threads) }).report
        }
        _ => run_jacobi(&rt, &JacobiParams { n: 126, iters: 6, threads: args.threads }).report,
    };
    let trace = rt.take_trace().expect("tracing was enabled");
    let cp = critical_path(&trace, &thread_windows(&report), &costs);
    assert_eq!(
        cp.total_ns(),
        cp.makespan_ns,
        "critical-path classes must sum to the makespan exactly"
    );

    println!("# makespan {} ns, path of {} segments\n", cp.makespan_ns, cp.segments.len());
    println!("composition:");
    for (i, class) in PathClass::ALL.iter().enumerate() {
        let ns = cp.class_ns[i];
        if ns == 0 {
            continue;
        }
        println!(
            "  {:<16} {:>14} ns  {:>6.2}%",
            class.label(),
            ns,
            ns as f64 * 100.0 / cp.makespan_ns.max(1) as f64
        );
    }
    println!("\ntop {} segments:", args.top);
    for s in cp.top_segments(args.top) {
        // Page-carrying details get their allocation site from the layout.
        let site = match s.detail.strip_prefix("page ") {
            Some(p) => p
                .parse::<u64>()
                .ok()
                .map(|page| format!(" [{}]", report.site_label(page)))
                .unwrap_or_default(),
            None => String::new(),
        };
        println!(
            "  {:>12} ns  tid {:<3} {:<16} {}{}  @ {}..{}",
            s.len_ns(),
            s.tid,
            s.class.label(),
            s.detail,
            site,
            s.start_ns,
            s.end_ns
        );
    }

    if let Some(path) = &args.out {
        let json = cp.to_json(args.top);
        validate_json(&json).expect("critpath serializer produced invalid JSON");
        std::fs::write(path, &json).expect("write critpath report");
        println!("\n# wrote {} ({} bytes)", path.display(), json.len());
    }
    ExitCode::SUCCESS
}
