//! Deterministic manager-crash-point sweep — the recovery analogue of the
//! bench regression gate.
//!
//! ```text
//! chaos-sweep [--kernel jacobi] [--threads 8] [--max-points 16]
//!             [--time-box SECS] [--out FILE.json]
//! ```
//!
//! FoundationDB-style simulation testing, specialized to the one fault the
//! recovery subsystem exists for: the manager process dying mid-run. The
//! sweep first executes the kernel fault-free on a replicated cluster (hot
//! standby mirroring the primary's log) and records two things — the final
//! memory values, and the virtual times of every `mgr-serve` event. Those
//! serve instants are exactly the decision points of the run: crashing the
//! manager at each of them (and at the midpoints between consecutive ones,
//! to catch requests in flight) exercises every distinct "log shipped /
//! response sent / crash" interleaving the write-ahead protocol can face.
//! Because the whole system runs in virtual time, each crash point is a
//! deterministic, reproducible execution — a failing point can be re-run
//! bit-identically with `faults.mgr_crash = Some(at)`.
//!
//! Every crashed-and-recovered execution must end with memory bit-identical
//! to the fault-free reference and a trace that satisfies the RegC invariant
//! checker (including the diff-byte conservation identity). Any divergence
//! fails the sweep and the process exits nonzero.
//!
//! `--max-points` bounds the sweep by even subsampling; `--time-box` bounds
//! it by wall-clock. Either bound prints how many candidate points were
//! skipped — a truncated sweep never silently reads as a complete one.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use samhita_core::{FaultConfig, SamhitaConfig, TopologyKind};
use samhita_kernels::{
    run_jacobi, run_md, run_micro, AllocMode, JacobiParams, MdParams, MicroParams,
};
use samhita_rt::SamhitaRt;
use samhita_trace::{EventKind, RunTrace, TrackId};

struct Args {
    kernel: String,
    threads: u32,
    max_points: usize,
    time_box: Option<u64>,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args =
        Args { kernel: "jacobi".into(), threads: 8, max_points: 16, time_box: None, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut val = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--kernel" => args.kernel = val("--kernel")?,
            "--threads" => {
                args.threads =
                    val("--threads")?.parse().map_err(|e| format!("bad --threads: {e}"))?
            }
            "--max-points" => {
                args.max_points =
                    val("--max-points")?.parse().map_err(|e| format!("bad --max-points: {e}"))?
            }
            "--time-box" => {
                args.time_box =
                    Some(val("--time-box")?.parse().map_err(|e| format!("bad --time-box: {e}"))?)
            }
            "--out" => args.out = Some(PathBuf::from(val("--out")?)),
            "--help" | "-h" => {
                println!(
                    "usage: chaos-sweep [--kernel jacobi|micro|md] [--threads 8] \
                     [--max-points 16] [--time-box SECS] [--out FILE.json]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if args.max_points == 0 {
        return Err("--max-points must be at least 1".into());
    }
    Ok(args)
}

/// The replicated cluster every sweep run executes on: two memory servers
/// with replication and a hot-standby manager on the last compute node.
fn cluster(threads: u32, faults: FaultConfig) -> SamhitaConfig {
    let base = SamhitaConfig::default();
    SamhitaConfig {
        manager_standby: true,
        mem_servers: 2,
        replica_offset: 1,
        topology: TopologyKind::Cluster { nodes: 6 },
        tracing: true,
        max_threads: base.max_threads.max(threads),
        faults,
        ..base
    }
}

/// Outcome of one kernel execution: the memory fingerprint (FNV-1a over the
/// bit patterns of the kernel's final *shared memory* — the jacobi grid, the
/// micro global sum, the md positions) and the recovery counters.
///
/// Host-side cross-thread f64 reductions (jacobi's `final_diff`, md's
/// energies) are deliberately excluded: they sum per-thread contributions in
/// lock-acquisition order, and a failover legitimately changes that order —
/// the standby grants the queue it reconstructed, not the queue the primary
/// would have grown — so those sums can differ in the last ULP while every
/// byte of DSM memory is identical. The invariant checker still audits the
/// full protocol timeline of every crashed run.
struct RunOutcome {
    mem_fp: u64,
    mgr_failovers: u64,
    takeover_ns: u64,
    lease_reclaims: u64,
    log_records_shipped: u64,
    trace: RunTrace,
}

fn fp_f64s(h: &mut u64, vals: &[f64]) {
    for v in vals {
        for b in v.to_bits().to_le_bytes() {
            *h ^= b as u64;
            *h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

/// Run the selected kernel once on `cfg` and fingerprint its final memory.
fn execute(kernel: &str, threads: u32, cfg: SamhitaConfig) -> Result<RunOutcome, String> {
    let rt = SamhitaRt::new(cfg);
    let mut fp: u64 = 0xcbf2_9ce4_8422_2325;
    let report = match kernel {
        "jacobi" => {
            let n = 62usize.max(threads as usize);
            let r = run_jacobi(&rt, &JacobiParams { n, iters: 6, threads });
            fp_f64s(&mut fp, &r.grid);
            r.report
        }
        "micro" => {
            let p = MicroParams {
                n_outer: 4,
                m_inner: 10,
                s_rows: 2,
                b_cols: 68,
                mode: AllocMode::Global,
                threads,
            };
            let r = run_micro(&rt, &p);
            fp_f64s(&mut fp, &[r.gsum]);
            r.report
        }
        "md" => {
            let n = 256usize.max(threads as usize);
            let r = run_md(&rt, &MdParams { n, steps: 3, dt: 1e-3, threads, seed: 42 });
            fp_f64s(&mut fp, &r.positions);
            r.report
        }
        other => return Err(format!("unknown kernel '{other}' (want jacobi, micro, or md)")),
    };
    Ok(RunOutcome {
        mem_fp: fp,
        mgr_failovers: report.mgr_failovers(),
        takeover_ns: report.takeover_ns,
        lease_reclaims: report.lease_reclaims,
        log_records_shipped: report.log_records_shipped,
        trace: rt.take_trace().expect("tracing was enabled"),
    })
}

/// Candidate crash instants from a fault-free trace: every distinct
/// `mgr-serve` time on the primary's track, plus the midpoint between each
/// consecutive pair (a request in flight toward an already-doomed primary).
fn crash_points(trace: &RunTrace) -> Vec<u64> {
    let mut serves: Vec<u64> = trace
        .track(TrackId::Manager)
        .unwrap_or(&[])
        .iter()
        .filter(|e| matches!(e.kind, EventKind::MgrServe { .. }))
        .map(|e| e.at.as_ns())
        .collect();
    serves.sort_unstable();
    serves.dedup();
    let mut points = Vec::with_capacity(serves.len() * 2);
    for pair in serves.windows(2) {
        points.push(pair[0]);
        let mid = pair[0] + (pair[1] - pair[0]) / 2;
        if mid > pair[0] && mid < pair[1] {
            points.push(mid);
        }
    }
    points.extend(serves.last().copied());
    points
}

/// Evenly subsample `points` down to at most `max` entries.
fn subsample(points: &[u64], max: usize) -> Vec<u64> {
    if points.len() <= max {
        return points.to_vec();
    }
    (0..max).map(|i| points[i * (points.len() - 1) / (max - 1).max(1)]).collect()
}

struct PointResult {
    at_ns: u64,
    ok: bool,
    detail: String,
    failovers: u64,
    takeover_ns: u64,
    lease_reclaims: u64,
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\nusage: chaos-sweep [--kernel K] [--threads P] [--max-points N]");
            return ExitCode::FAILURE;
        }
    };
    let started = Instant::now();

    // Fault-free reference: the memory fingerprint every crashed-and-
    // recovered execution must reproduce, and the serve times to crash at.
    let reference =
        match execute(&args.kernel, args.threads, cluster(args.threads, FaultConfig::default())) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
    if let Err(v) = reference.trace.check_invariants() {
        eprintln!("error: fault-free reference run violates invariants: {v:?}");
        return ExitCode::FAILURE;
    }
    assert_eq!(reference.mgr_failovers, 0, "fault-free run must not fail over");
    let candidates = crash_points(&reference.trace);
    let sweep = subsample(&candidates, args.max_points);
    println!(
        "# chaos-sweep: {} P={} — {} serve-derived crash points, sweeping {} \
         ({} log records shipped fault-free)",
        args.kernel,
        args.threads,
        candidates.len(),
        sweep.len(),
        reference.log_records_shipped
    );
    if sweep.len() < candidates.len() {
        println!(
            "#   --max-points {} skipped {} points",
            args.max_points,
            candidates.len() - sweep.len()
        );
    }

    let mut results: Vec<PointResult> = Vec::new();
    let mut timed_out = 0usize;
    for (i, &at) in sweep.iter().enumerate() {
        if let Some(limit) = args.time_box {
            if started.elapsed().as_secs() >= limit {
                timed_out = sweep.len() - i;
                println!("#   --time-box {limit}s reached: skipped the last {timed_out} points");
                break;
            }
        }
        if std::env::var("CHAOS_SWEEP_DEBUG").is_ok() {
            eprintln!("# running crash point {i}: {at}ns");
        }
        let faults = FaultConfig { mgr_crash: Some(at), ..FaultConfig::default() };
        let outcome = match execute(&args.kernel, args.threads, cluster(args.threads, faults)) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut detail = String::from("recovered bit-identically");
        let mut ok = true;
        if outcome.mem_fp != reference.mem_fp {
            ok = false;
            detail = format!(
                "final memory diverged from the fault-free reference \
                 ({:016x} != {:016x})",
                outcome.mem_fp, reference.mem_fp
            );
        } else if let Err(v) = outcome.trace.check_invariants() {
            ok = false;
            detail = format!("invariant checker rejected the recovered run: {v:?}");
        }
        println!(
            "{}  crash@{at:>10}ns  {} failovers, takeover@{}ns, {} reclaims  {}",
            if ok { "ok  " } else { "FAIL" },
            outcome.mgr_failovers,
            outcome.takeover_ns,
            outcome.lease_reclaims,
            detail
        );
        results.push(PointResult {
            at_ns: at,
            ok,
            detail,
            failovers: outcome.mgr_failovers,
            takeover_ns: outcome.takeover_ns,
            lease_reclaims: outcome.lease_reclaims,
        });
    }

    let failed = results.iter().filter(|r| !r.ok).count();
    let swept = results.len();
    if let Some(path) = &args.out {
        let mut json = format!(
            "{{\"schema\":\"samhita-chaos-sweep-v1\",\"kernel\":\"{}\",\"threads\":{},\
             \"candidates\":{},\"swept\":{},\"skipped_by_time_box\":{},\"failed\":{},\
             \"reference_mem_fp\":\"{:016x}\",\"points\":[",
            samhita_trace::json::escape(&args.kernel),
            args.threads,
            candidates.len(),
            swept,
            timed_out,
            failed,
            reference.mem_fp,
        );
        for (i, r) in results.iter().enumerate() {
            if i > 0 {
                json.push(',');
            }
            json.push_str(&format!(
                "{{\"at_ns\":{},\"ok\":{},\"failovers\":{},\"takeover_ns\":{},\
                 \"lease_reclaims\":{},\"detail\":\"{}\"}}",
                r.at_ns,
                r.ok,
                r.failovers,
                r.takeover_ns,
                r.lease_reclaims,
                samhita_trace::json::escape(&r.detail)
            ));
        }
        json.push_str("]}");
        debug_assert!(samhita_trace::validate_json(&json).is_ok());
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("error: {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("# wrote {}", path.display());
    }

    if failed == 0 {
        println!("# sweep: PASS ({swept} crash points recovered bit-identically)");
        ExitCode::SUCCESS
    } else {
        eprintln!("# sweep: FAIL ({failed} of {swept} crash points diverged)");
        ExitCode::FAILURE
    }
}
