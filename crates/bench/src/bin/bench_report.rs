//! Emit machine-readable performance reports (`BENCH_<kernel>_p<P>.json`).
//!
//! ```text
//! bench-report [--out DIR] [--threads 1,8,64] [--kernel NAME]
//! bench-report --out results/baselines   # regenerate the committed baselines
//! ```
//!
//! Runs the kernels (micro / jacobi / md) at each requested thread count at
//! the quick (CI) scale with event tracing on, and writes one
//! [`BenchReport`] per (kernel, P) point. Under the deterministic
//! virtual-time runtime (the default) every point — including P > 1 — is
//! bit-reproducible run to run, so the committed baselines can be compared
//! exactly by `bench-diff`; the CI tolerance exists for future
//! configurations, not for noise. The per-point configuration fingerprint
//! covers the thread count (it is part of the kernel params), so a P=8
//! report can never silently gate against a P=64 baseline.
//!
//! Each report also carries a `host` section — the simulator's own
//! wall-clock cost per point, measured with `samhita-prof`. Host numbers
//! are machine-dependent; `--no-host` omits the section for workflows that
//! byte-compare report files across runs (the CI scale smoke does).

use std::path::PathBuf;
use std::process::ExitCode;

use samhita_bench::{run_summary, BenchReport, HarnessConfig, HostSummary};
use samhita_core::{RunReport, SamhitaConfig};
use samhita_kernels::{
    run_jacobi, run_md, run_micro, AllocMode, JacobiParams, MdParams, MicroParams,
};
use samhita_rt::SamhitaRt;

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from("results");
    let mut threads: Vec<u32> = vec![1, 8, 64];
    let mut only_kernel: Option<String> = None;
    let mut with_host = true;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => return usage("--out needs a directory"),
            },
            "--threads" => match it.next().map(|v| parse_threads(&v)) {
                Some(Ok(list)) => threads = list,
                Some(Err(e)) => return usage(&e),
                None => return usage("--threads needs a comma-separated list (e.g. 1,8,64)"),
            },
            "--kernel" => match it.next() {
                Some(v) => only_kernel = Some(v),
                None => return usage("--kernel needs a kernel name (micro, jacobi, md)"),
            },
            "--no-host" => with_host = false,
            "--help" | "-h" => {
                println!(
                    "usage: bench-report [--out DIR] [--threads 1,8,64] [--kernel NAME] \
                     [--no-host]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let q = HarnessConfig::quick();
    // Provision enough per-thread arenas for the largest requested run;
    // the default (64) covers the committed baselines, so regenerating them
    // never changes the fingerprint.
    let max_p = threads.iter().copied().max().expect("non-empty thread list");
    let cfg = SamhitaConfig {
        tracing: true,
        max_threads: q.base.max_threads.max(max_p),
        ..q.base.clone()
    };

    let mut wrote = 0usize;
    for (kernel, run) in kernels(&q) {
        if only_kernel.as_deref().is_some_and(|k| k != kernel) {
            continue;
        }
        for &p in &threads {
            let rt = SamhitaRt::new(cfg.clone());
            // Profile each (kernel, P) point in isolation: reset the
            // counters, run, snapshot. The profiler is invisible to
            // virtual time (tests/prof.rs pins this), so enabling it here
            // cannot change any other section of the report.
            samhita_prof::reset();
            samhita_prof::enable(with_host);
            let (params, report) = run(&rt, p);
            let trace = rt.take_trace().expect("tracing was enabled");
            // Keep profiling on through report construction so the
            // span-graph/critpath build phase is captured too.
            let bench = BenchReport::from_run(kernel, &params, &cfg, p, &report, Some(&trace));
            samhita_prof::enable(false);
            let bench = if with_host {
                bench.with_host(HostSummary::from_prof(
                    &samhita_prof::snapshot(),
                    report.host_wall_ns.get(),
                    report.fabric.total_msgs(),
                ))
            } else {
                bench
            };
            let path = out_dir.join(format!("BENCH_{kernel}_p{p}.json"));
            std::fs::write(&path, bench.to_json()).expect("write report");
            println!("wrote {} ({})", path.display(), params);
            println!("{}", run_summary(&report));
            wrote += 1;
        }
    }
    if wrote == 0 {
        return usage("no kernel matched --kernel (want micro, jacobi, or md)");
    }
    ExitCode::SUCCESS
}

fn parse_threads(list: &str) -> Result<Vec<u32>, String> {
    let parsed: Result<Vec<u32>, _> = list.split(',').map(|t| t.trim().parse::<u32>()).collect();
    match parsed {
        Ok(v) if !v.is_empty() && v.iter().all(|&p| p >= 1) => Ok(v),
        _ => Err(format!("bad --threads list '{list}' (want e.g. 1,8,64)")),
    }
}

/// The reported kernels, each parameterized by thread count at the quick
/// scale. Jacobi and MD require at least one row / particle per thread, so
/// their problem sizes grow with P when P exceeds the quick scale.
#[allow(clippy::type_complexity)]
fn kernels(
    q: &HarnessConfig,
) -> Vec<(&'static str, Box<dyn Fn(&SamhitaRt, u32) -> (String, RunReport) + '_>)> {
    vec![
        (
            "micro",
            Box::new(|rt, threads| {
                let p = MicroParams {
                    n_outer: q.n_outer,
                    m_inner: q.m_fixed,
                    s_rows: q.s_fixed,
                    b_cols: q.b_cols,
                    mode: AllocMode::Global,
                    threads,
                };
                (format!("{p:?}"), run_micro(rt, &p).report)
            }),
        ),
        (
            "jacobi",
            Box::new(|rt, threads| {
                let n = q.jacobi_n.max(threads as usize);
                let p = JacobiParams { n, iters: q.jacobi_iters, threads };
                (format!("{p:?}"), run_jacobi(rt, &p).report)
            }),
        ),
        (
            "md",
            Box::new(|rt, threads| {
                let n = q.md_n.max(threads as usize);
                let p = MdParams { n, steps: q.md_steps, dt: 1e-3, threads, seed: 42 };
                (format!("{p:?}"), run_md(rt, &p).report)
            }),
        ),
    ]
}

fn usage(err: &str) -> ExitCode {
    eprintln!(
        "error: {err}\nusage: bench-report [--out DIR] [--threads 1,8,64] [--kernel NAME] \
         [--no-host]"
    );
    ExitCode::FAILURE
}
