//! Emit machine-readable performance reports (`BENCH_<kernel>.json`).
//!
//! ```text
//! bench-report [--out DIR]          # default DIR: results
//! bench-report --out results/baselines   # regenerate the committed baselines
//! ```
//!
//! Runs the three kernels (micro / jacobi / md) single-threaded at the
//! quick (CI) scale with event tracing on, and writes one
//! [`BenchReport`] per kernel. Single-threaded
//! runs are fully deterministic (DESIGN.md §2), so the committed baselines
//! can be compared exactly by `bench-diff` — the CI tolerance exists for
//! future configurations, not for noise.

use std::path::PathBuf;
use std::process::ExitCode;

use samhita_bench::{run_summary, BenchReport, HarnessConfig};
use samhita_core::{RunReport, SamhitaConfig};
use samhita_kernels::{
    run_jacobi, run_md, run_micro, AllocMode, JacobiParams, MdParams, MicroParams,
};
use samhita_rt::SamhitaRt;

fn main() -> ExitCode {
    let mut out_dir = PathBuf::from("results");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(v) => out_dir = PathBuf::from(v),
                None => return usage("--out needs a directory"),
            },
            "--help" | "-h" => {
                println!("usage: bench-report [--out DIR]");
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument '{other}'")),
        }
    }
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    let q = HarnessConfig::quick();
    let cfg = SamhitaConfig { tracing: true, ..q.base.clone() };

    for (kernel, run) in kernels(&q) {
        let rt = SamhitaRt::new(cfg.clone());
        let (params, report) = run(&rt);
        let trace = rt.take_trace().expect("tracing was enabled");
        let bench = BenchReport::from_run(kernel, &params, &cfg, 1, &report, Some(&trace));
        let path = out_dir.join(format!("BENCH_{kernel}.json"));
        std::fs::write(&path, bench.to_json()).expect("write report");
        println!("wrote {} ({})", path.display(), params);
        println!("{}", run_summary(&report));
    }
    ExitCode::SUCCESS
}

/// The three reported kernels, each at the deterministic single-threaded
/// quick scale.
#[allow(clippy::type_complexity)]
fn kernels(
    q: &HarnessConfig,
) -> Vec<(&'static str, Box<dyn Fn(&SamhitaRt) -> (String, RunReport) + '_>)> {
    vec![
        (
            "micro",
            Box::new(|rt| {
                let p = MicroParams {
                    n_outer: q.n_outer,
                    m_inner: q.m_fixed,
                    s_rows: q.s_fixed,
                    b_cols: q.b_cols,
                    mode: AllocMode::Global,
                    threads: 1,
                };
                (format!("{p:?}"), run_micro(rt, &p).report)
            }),
        ),
        (
            "jacobi",
            Box::new(|rt| {
                let p = JacobiParams { n: q.jacobi_n, iters: q.jacobi_iters, threads: 1 };
                (format!("{p:?}"), run_jacobi(rt, &p).report)
            }),
        ),
        (
            "md",
            Box::new(|rt| {
                let p = MdParams { n: q.md_n, steps: q.md_steps, dt: 1e-3, threads: 1, seed: 42 };
                (format!("{p:?}"), run_md(rt, &p).report)
            }),
        ),
    ]
}

fn usage(err: &str) -> ExitCode {
    eprintln!("error: {err}\nusage: bench-report [--out DIR]");
    ExitCode::FAILURE
}
