//! Trace a kernel run and dump it for inspection.
//!
//! ```text
//! trace-dump                              # false-sharing micro, 4 threads
//! trace-dump --kernel jacobi --threads 8
//! trace-dump --out trace.json             # Chrome trace-event JSON (Perfetto)
//! trace-dump --jsonl trace.jsonl          # newline-delimited event records
//! ```
//!
//! Runs one kernel with event tracing enabled, then:
//!
//! 1. runs the trace-driven RegC invariant checker (exit 1 on violations),
//! 2. writes the trace as Chrome trace-event JSON — open it at
//!    <https://ui.perfetto.dev> or `chrome://tracing` to see one track per
//!    compute thread plus manager / memory-server / fabric tracks,
//! 3. prints the run's latency summary (fetch / lock / barrier histograms).

use std::path::PathBuf;
use std::process::ExitCode;

use samhita_bench::{run_summary, thread_windows};
use samhita_core::SamhitaConfig;
use samhita_kernels::{run_jacobi, run_micro, AllocMode, JacobiParams, MicroParams};
use samhita_rt::SamhitaRt;
use samhita_trace::{critical_path, validate_json};

struct Args {
    kernel: String,
    threads: u32,
    out: PathBuf,
    jsonl: Option<PathBuf>,
    critpath: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        kernel: "micro".into(),
        threads: 4,
        out: PathBuf::from("trace.json"),
        jsonl: None,
        critpath: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--kernel" => {
                let v = it.next().ok_or("--kernel needs 'micro' or 'jacobi'")?;
                if v != "micro" && v != "jacobi" {
                    return Err(format!("unknown kernel '{v}' (micro | jacobi)"));
                }
                args.kernel = v;
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a number")?;
                args.threads = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a path")?;
                args.out = PathBuf::from(v);
            }
            "--jsonl" => {
                let v = it.next().ok_or("--jsonl needs a path")?;
                args.jsonl = Some(PathBuf::from(v));
            }
            "--critical-path" => args.critpath = true,
            "--help" | "-h" => {
                println!(
                    "usage: trace-dump [--kernel micro|jacobi] [--threads N] \
                     [--out trace.json] [--jsonl trace.jsonl] [--critical-path]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let cfg = SamhitaConfig { tracing: true, ..SamhitaConfig::default() };
    let costs = cfg.service_costs();
    let rt = SamhitaRt::new(cfg);
    println!("# tracing {} kernel, {} threads", args.kernel, args.threads);
    let report = match args.kernel.as_str() {
        "micro" => {
            let p = MicroParams::paper(10, 2, AllocMode::Global, args.threads);
            run_micro(&rt, &p).report
        }
        _ => {
            let p = JacobiParams { n: 126, iters: 6, threads: args.threads };
            run_jacobi(&rt, &p).report
        }
    };
    let trace = rt.take_trace().expect("tracing was enabled");
    println!("# {} events on {} tracks", trace.len(), trace.tracks.len());

    // Invariant checker first: a trace that fails RegC's rules is still
    // worth looking at in Perfetto, but the exit code must say so.
    let ok = match trace.check_invariants() {
        Ok(summary) => {
            println!("# invariants ok: {summary}");
            true
        }
        Err(violations) => {
            eprintln!("# INVARIANT VIOLATIONS ({}):", violations.len());
            for v in &violations {
                eprintln!("#   {v}");
            }
            false
        }
    };

    // The causal export: thread tracks fully tiled, service spans on the
    // manager/server tracks, flow arrows for RPC pairs and lock handoffs.
    let windows = thread_windows(&report);
    let chrome = trace.to_chrome_json_with(&windows, &costs);
    validate_json(&chrome).expect("exporter produced invalid JSON");
    std::fs::write(&args.out, &chrome).expect("write trace file");
    println!(
        "# wrote {} ({} bytes) — open at https://ui.perfetto.dev",
        args.out.display(),
        chrome.len()
    );
    if let Some(path) = &args.jsonl {
        std::fs::write(path, trace.to_jsonl()).expect("write JSONL file");
        println!("# wrote {}", path.display());
    }

    if args.critpath {
        let cp = critical_path(&trace, &windows, &costs);
        println!("\ncritical path:\n  {}", cp.summary());
        for s in cp.top_segments(10) {
            println!(
                "  {:>12} ns  tid {:<3} {:<16} {}",
                s.len_ns(),
                s.tid,
                s.class.label(),
                s.detail
            );
        }
    }

    println!("\nrun summary:\n{}", run_summary(&report));
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
