//! Figure-regeneration harness.
//!
//! ```text
//! figures --fig 3            # regenerate Figure 3 at paper scale
//! figures --all              # all experimental figures (3..=13)
//! figures --ablation scif    # one ablation (see DESIGN.md §5)
//! figures --ablation all    # every ablation
//! figures --quick            # reduced scale (CI-sized sweeps)
//! figures --out results/     # also write CSV files
//! ```
//!
//! Output is a text table per figure; with `--out DIR`, CSVs named
//! `<id>.csv` are written as well.

use std::path::PathBuf;
use std::process::ExitCode;

use samhita_bench::ablations::{ablation, ALL_ABLATIONS};
use samhita_bench::figures::{figure, ALL_FIGURES};
use samhita_bench::{FigureData, HarnessConfig};

struct Args {
    figs: Vec<u32>,
    ablations: Vec<String>,
    quick: bool,
    out: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { figs: Vec::new(), ablations: Vec::new(), quick: false, out: None };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--fig" => {
                let v = it.next().ok_or("--fig needs a number (3..=13)")?;
                let n: u32 = v.parse().map_err(|_| format!("bad figure number '{v}'"))?;
                if !(3..=13).contains(&n) {
                    return Err(format!("figure {n} out of range (3..=13)"));
                }
                args.figs.push(n);
            }
            "--all" => args.figs.extend_from_slice(&ALL_FIGURES),
            "--ablation" => {
                let v = it.next().ok_or("--ablation needs a name or 'all'")?;
                if v == "all" {
                    args.ablations.extend(ALL_ABLATIONS.iter().map(|s| s.to_string()));
                } else if ALL_ABLATIONS.contains(&v.as_str()) {
                    args.ablations.push(v);
                } else {
                    return Err(format!(
                        "unknown ablation '{v}'; choose from {ALL_ABLATIONS:?} or 'all'"
                    ));
                }
            }
            "--quick" => args.quick = true,
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                args.out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "usage: figures [--fig N]... [--all] [--ablation NAME|all]... [--quick] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if args.figs.is_empty() && args.ablations.is_empty() {
        return Err("nothing to do: pass --fig N, --all, or --ablation NAME".into());
    }
    args.figs.sort_unstable();
    args.figs.dedup();
    Ok(args)
}

fn emit(fig: &FigureData, out: &Option<PathBuf>) {
    println!("{}", fig.to_table());
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path = dir.join(format!("{}.csv", fig.id));
        std::fs::write(&path, fig.to_csv()).expect("write CSV");
        println!("   -> {}", path.display());
    }
    println!();
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let cfg = if args.quick { HarnessConfig::quick() } else { HarnessConfig::paper() };
    println!(
        "# Samhita figure harness ({} scale): virtual-time simulation, see DESIGN.md\n",
        if args.quick { "quick" } else { "paper" }
    );
    for &n in &args.figs {
        let t0 = std::time::Instant::now();
        let fig = figure(n, &cfg);
        emit(&fig, &args.out);
        eprintln!("   [fig {n} regenerated in {:.1}s]", t0.elapsed().as_secs_f64());
    }
    for name in &args.ablations {
        let t0 = std::time::Instant::now();
        let fig = ablation(name, &cfg);
        emit(&fig, &args.out);
        eprintln!("   [ablation {name} in {:.1}s]", t0.elapsed().as_secs_f64());
    }
    ExitCode::SUCCESS
}
