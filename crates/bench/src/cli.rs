//! Shared command-line plumbing for the examples.
//!
//! Every example accepts the same observability flags; parsing them in one
//! place keeps the six binaries consistent:
//!
//! ```text
//! [positional ...] [--trace out.json] [--faults seed] [--metrics-out out.json]
//! ```
//!
//! * `--trace PATH` — record a protocol event trace of a designated run and
//!   write it as Chrome trace-event JSON.
//! * `--faults SEED` — run on a seeded lossy fabric with two replicated
//!   memory servers (the standard chaos configuration).
//! * `--metrics-out PATH` — write a machine-readable [`BenchReport`]
//!   (`crate::report`) for a designated run.
//!
//! [`BenchReport`]: crate::report::BenchReport

use samhita_core::{FaultConfig, SamhitaConfig};

/// Parsed example arguments: positionals plus the shared flags.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ExampleArgs {
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
    /// `--trace PATH`.
    pub trace_path: Option<String>,
    /// `--faults SEED`.
    pub fault_seed: Option<u64>,
    /// `--metrics-out PATH`.
    pub metrics_out: Option<String>,
}

impl ExampleArgs {
    /// Parse the process arguments (skipping `argv[0]`).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit argument list (tests).
    ///
    /// # Panics
    /// Panics with a usage message on a flag missing its value or on an
    /// unparsable seed, mirroring what the examples did individually.
    pub fn from_args(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = ExampleArgs::default();
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => out.trace_path = Some(args.next().expect("--trace needs a path")),
                "--faults" => {
                    let seed = args.next().expect("--faults needs a seed");
                    out.fault_seed = Some(seed.parse().expect("fault seed must be an integer"));
                }
                "--metrics-out" => {
                    out.metrics_out = Some(args.next().expect("--metrics-out needs a path"));
                }
                _ => out.positional.push(a),
            }
        }
        out
    }

    /// The `i`-th positional as a `usize`, or `default`.
    pub fn pos_usize(&self, i: usize, default: usize) -> usize {
        self.positional.get(i).map(|v| v.parse().expect("numeric argument")).unwrap_or(default)
    }

    /// The `i`-th positional as a `u32`, or `default`.
    pub fn pos_u32(&self, i: usize, default: u32) -> u32 {
        self.positional.get(i).map(|v| v.parse().expect("numeric argument")).unwrap_or(default)
    }

    /// The base system configuration: `base` untouched, or — with
    /// `--faults` — the same cluster with two write-through-replicated
    /// memory servers behind a seeded lossy fabric (3% drops, 1%
    /// duplicates, 3% delays of 3µs), the configuration every example used
    /// individually before this helper existed.
    pub fn base_config(&self, base: SamhitaConfig) -> SamhitaConfig {
        match self.fault_seed {
            None => base,
            Some(seed) => SamhitaConfig {
                mem_servers: 2,
                replica_offset: 1,
                faults: FaultConfig::lossy(seed, 0.03, 0.01, 0.03, 3_000),
                ..base
            },
        }
    }

    /// Whether any flag requests an event trace (`--trace`, or
    /// `--metrics-out`, whose timeline section is trace-derived).
    pub fn wants_trace(&self) -> bool {
        self.trace_path.is_some() || self.metrics_out.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ExampleArgs {
        ExampleArgs::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positionals_and_flags_mix_freely() {
        let a =
            parse(&["8", "--trace", "t.json", "10", "--faults", "7", "--metrics-out", "m.json"]);
        assert_eq!(a.positional, vec!["8", "10"]);
        assert_eq!(a.pos_u32(0, 1), 8);
        assert_eq!(a.pos_usize(1, 1), 10);
        assert_eq!(a.pos_usize(2, 99), 99, "missing positional falls back to default");
        assert_eq!(a.trace_path.as_deref(), Some("t.json"));
        assert_eq!(a.fault_seed, Some(7));
        assert_eq!(a.metrics_out.as_deref(), Some("m.json"));
        assert!(a.wants_trace());
    }

    #[test]
    fn empty_args_parse_to_defaults() {
        let a = parse(&[]);
        assert_eq!(a, ExampleArgs::default());
        assert!(!a.wants_trace());
    }

    #[test]
    fn fault_flag_builds_the_chaos_config() {
        let base = SamhitaConfig::default();
        let plain = parse(&[]).base_config(base.clone());
        assert_eq!(plain.mem_servers, base.mem_servers);
        assert!(!plain.faults.is_active());
        let faulty = parse(&["--faults", "42"]).base_config(base);
        assert_eq!(faulty.mem_servers, 2);
        assert_eq!(faulty.replica_offset, 1);
        assert!(faulty.faults.is_active());
        assert_eq!(faulty.faults.seed, 42);
    }

    #[test]
    #[should_panic(expected = "--trace needs a path")]
    fn trace_flag_requires_a_value() {
        parse(&["--trace"]);
    }
}
