//! # Figure harness
//!
//! Regenerates every experimental figure of the paper (Figures 3–13; Figures
//! 1–2 are an architecture diagram and a code listing) plus the ablation
//! studies listed in `DESIGN.md §5`. The `figures` binary drives the
//! functions here; they are also callable from tests so figure *shapes* are
//! asserted in CI at reduced scale.
//!
//! Each figure function returns a [`FigureData`]: labelled series of (x, y)
//! points that can be printed as a table or dumped as CSV.

pub mod ablations;
pub mod cli;
pub mod figures;
pub mod harness;
pub mod report;

pub use cli::ExampleArgs;
pub use harness::{run_summary, FigureData, HarnessConfig, Series};
pub use report::{
    compare, thread_windows, BenchReport, BreakdownSummary, Comparison, CritPathSummary, HostPhase,
    HostSummary, QueueSummary,
};
