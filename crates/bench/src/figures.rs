//! Regeneration of the paper's Figures 3–13.
//!
//! Figure-by-figure mapping is documented in `DESIGN.md §4`. Each function
//! runs the corresponding workload sweep on fresh backend instances (fresh
//! instances keep virtual service clocks independent between data points)
//! and returns the series the paper plots.

use samhita_kernels::{
    run_jacobi, run_md, run_micro, AllocMode, JacobiParams, MdParams, MicroParams,
};
use samhita_rt::{KernelRt, NativeRt, SamhitaRt};

use crate::harness::{FigureData, HarnessConfig, Series};

fn smh_rt(cfg: &HarnessConfig) -> SamhitaRt {
    SamhitaRt::new(cfg.base.clone())
}

/// Mean per-thread compute time, seconds.
fn micro_compute_secs(rt: &dyn KernelRt, p: &MicroParams) -> f64 {
    run_micro(rt, p).report.mean_compute().as_secs_f64()
}

/// Mean per-thread synchronization time, seconds.
fn micro_sync_secs(rt: &dyn KernelRt, p: &MicroParams) -> f64 {
    run_micro(rt, p).report.mean_sync().as_secs_f64()
}

fn micro_params(
    cfg: &HarnessConfig,
    m: usize,
    s: usize,
    mode: AllocMode,
    threads: u32,
) -> MicroParams {
    MicroParams { n_outer: cfg.n_outer, m_inner: m, s_rows: s, b_cols: cfg.b_cols, mode, threads }
}

/// Figures 3–5: normalized compute time vs cores, Pthreads vs Samhita,
/// `M ∈ m_values`, one allocation mode per figure. Normalization is the
/// 1-thread Pthreads compute time for the same `M`.
fn fig_normalized(cfg: &HarnessConfig, mode: AllocMode, id: &str) -> FigureData {
    let mut series = Vec::new();
    for &m in &cfg.m_values {
        let baseline =
            micro_compute_secs(&NativeRt::default(), &micro_params(cfg, m, cfg.s_fixed, mode, 1));
        let mut pth = Vec::new();
        for &p in &cfg.pth_cores {
            let t = micro_compute_secs(
                &NativeRt::default(),
                &micro_params(cfg, m, cfg.s_fixed, mode, p),
            );
            pth.push((p as f64, t / baseline));
        }
        series.push(Series { label: format!("pth, M={m}"), points: pth });

        let mut smh = Vec::new();
        for &p in &cfg.smh_cores {
            let t = micro_compute_secs(&smh_rt(cfg), &micro_params(cfg, m, cfg.s_fixed, mode, p));
            smh.push((p as f64, t / baseline));
        }
        series.push(Series { label: format!("smh, M={m}"), points: smh });
    }
    FigureData {
        id: id.into(),
        title: format!("Normalized compute time vs cores ({})", mode.label()),
        xlabel: "number of cores".into(),
        ylabel: "compute time (normalized to 1-thread pthreads)".into(),
        series,
    }
}

/// Figures 6–8: Samhita compute time (seconds) vs cores for
/// `S ∈ s_values`, fixed `M`, one allocation mode per figure.
fn fig_compute_vs_cores(cfg: &HarnessConfig, mode: AllocMode, id: &str) -> FigureData {
    let mut series = Vec::new();
    for &s in &cfg.s_values {
        let mut points = Vec::new();
        for &p in &cfg.smh_cores {
            let t = micro_compute_secs(&smh_rt(cfg), &micro_params(cfg, cfg.m_fixed, s, mode, p));
            points.push((p as f64, t));
        }
        series.push(Series { label: format!("S = {s}"), points });
    }
    FigureData {
        id: id.into(),
        title: format!("Compute time vs cores ({}, M={})", mode.label(), cfg.m_fixed),
        xlabel: "number of cores".into(),
        ylabel: "compute time (s)".into(),
        series,
    }
}

const MODES: [AllocMode; 3] = [AllocMode::Local, AllocMode::Global, AllocMode::GlobalStrided];

/// Figure 9: Samhita compute time vs `S` for the three modes at `P = 16`.
pub fn fig09(cfg: &HarnessConfig) -> FigureData {
    let mut series = Vec::new();
    for mode in MODES {
        let mut points = Vec::new();
        for &s in &cfg.s_values {
            let t = micro_compute_secs(
                &smh_rt(cfg),
                &micro_params(cfg, cfg.m_fixed, s, mode, cfg.p_fixed),
            );
            points.push((s as f64, t));
        }
        series.push(Series { label: mode.label().into(), points });
    }
    FigureData {
        id: "fig09".into(),
        title: format!("Compute time vs ordinary-region size (P={})", cfg.p_fixed),
        xlabel: "number of rows of data (S)".into(),
        ylabel: "compute time (s)".into(),
        series,
    }
}

/// Figure 10: Samhita synchronization time vs `S`, same setting as Fig. 9.
pub fn fig10(cfg: &HarnessConfig) -> FigureData {
    let mut series = Vec::new();
    for mode in MODES {
        let mut points = Vec::new();
        for &s in &cfg.s_values {
            let t = micro_sync_secs(
                &smh_rt(cfg),
                &micro_params(cfg, cfg.m_fixed, s, mode, cfg.p_fixed),
            );
            points.push((s as f64, t));
        }
        series.push(Series { label: mode.label().into(), points });
    }
    FigureData {
        id: "fig10".into(),
        title: format!("Synchronization time vs ordinary-region size (P={})", cfg.p_fixed),
        xlabel: "number of rows of data (S)".into(),
        ylabel: "synchronization time (s)".into(),
        series,
    }
}

/// Figure 11: synchronization time (log scale in the paper) vs cores for
/// Pthreads and Samhita across the three modes; fixed `M`, `S`.
pub fn fig11(cfg: &HarnessConfig) -> FigureData {
    let mut series = Vec::new();
    for mode in MODES {
        let mut pth = Vec::new();
        for &p in &cfg.pth_cores {
            let t = micro_sync_secs(
                &NativeRt::default(),
                &micro_params(cfg, cfg.m_fixed, cfg.s_fixed, mode, p),
            );
            pth.push((p as f64, t));
        }
        series
            .push(Series { label: format!("pth_{}", mode.label().replace(' ', "_")), points: pth });
    }
    for mode in MODES {
        let mut smh = Vec::new();
        for &p in &cfg.smh_cores {
            let t = micro_sync_secs(
                &smh_rt(cfg),
                &micro_params(cfg, cfg.m_fixed, cfg.s_fixed, mode, p),
            );
            smh.push((p as f64, t));
        }
        series
            .push(Series { label: format!("smh_{}", mode.label().replace(' ', "_")), points: smh });
    }
    FigureData {
        id: "fig11".into(),
        title: format!("Synchronization time vs cores (M={}, S={})", cfg.m_fixed, cfg.s_fixed),
        xlabel: "number of cores".into(),
        ylabel: "synchronization time (s, log scale)".into(),
        series,
    }
}

/// Figure 12: Jacobi strong-scaling speed-up (relative to 1-core Pthreads).
pub fn fig12(cfg: &HarnessConfig) -> FigureData {
    let p1 = JacobiParams { n: cfg.jacobi_n, iters: cfg.jacobi_iters, threads: 1 };
    let baseline = run_jacobi(&NativeRt::default(), &p1).report.makespan.as_secs_f64();

    let mut pth = Vec::new();
    for &p in &cfg.pth_cores {
        let t = run_jacobi(&NativeRt::default(), &JacobiParams { threads: p, ..p1 })
            .report
            .makespan
            .as_secs_f64();
        pth.push((p as f64, baseline / t));
    }
    let mut smh = Vec::new();
    for &p in &cfg.smh_cores {
        let t = run_jacobi(&smh_rt(cfg), &JacobiParams { threads: p, ..p1 })
            .report
            .makespan
            .as_secs_f64();
        smh.push((p as f64, baseline / t));
    }
    FigureData {
        id: "fig12".into(),
        title: format!("Jacobi speed-up vs cores ({0}x{0} grid)", cfg.jacobi_n),
        xlabel: "number of cores".into(),
        ylabel: "speed-up vs 1-core pthreads".into(),
        series: vec![
            Series { label: "pthreads".into(), points: pth },
            Series { label: "samhita".into(), points: smh },
        ],
    }
}

/// Figure 13: molecular-dynamics strong-scaling speed-up.
pub fn fig13(cfg: &HarnessConfig) -> FigureData {
    let p1 = MdParams { threads: 1, ..MdParams::paper(cfg.md_n, 1) };
    let p1 = MdParams { steps: cfg.md_steps, ..p1 };
    let baseline = run_md(&NativeRt::default(), &p1).report.makespan.as_secs_f64();

    let mut pth = Vec::new();
    for &p in &cfg.pth_cores {
        let t = run_md(&NativeRt::default(), &MdParams { threads: p, ..p1 })
            .report
            .makespan
            .as_secs_f64();
        pth.push((p as f64, baseline / t));
    }
    let mut smh = Vec::new();
    for &p in &cfg.smh_cores {
        let t = run_md(&smh_rt(cfg), &MdParams { threads: p, ..p1 }).report.makespan.as_secs_f64();
        smh.push((p as f64, baseline / t));
    }
    FigureData {
        id: "fig13".into(),
        title: format!("MD speed-up vs cores ({} particles)", cfg.md_n),
        xlabel: "number of cores".into(),
        ylabel: "speed-up vs 1-core pthreads".into(),
        series: vec![
            Series { label: "pthreads".into(), points: pth },
            Series { label: "samhita".into(), points: smh },
        ],
    }
}

/// Figure 3: local allocation.
pub fn fig03(cfg: &HarnessConfig) -> FigureData {
    fig_normalized(cfg, AllocMode::Local, "fig03")
}

/// Figure 4: global allocation.
pub fn fig04(cfg: &HarnessConfig) -> FigureData {
    fig_normalized(cfg, AllocMode::Global, "fig04")
}

/// Figure 5: global allocation, strided access.
pub fn fig05(cfg: &HarnessConfig) -> FigureData {
    fig_normalized(cfg, AllocMode::GlobalStrided, "fig05")
}

/// Figure 6: compute vs cores, local allocation.
pub fn fig06(cfg: &HarnessConfig) -> FigureData {
    fig_compute_vs_cores(cfg, AllocMode::Local, "fig06")
}

/// Figure 7: compute vs cores, global allocation.
pub fn fig07(cfg: &HarnessConfig) -> FigureData {
    fig_compute_vs_cores(cfg, AllocMode::Global, "fig07")
}

/// Figure 8: compute vs cores, global strided access.
pub fn fig08(cfg: &HarnessConfig) -> FigureData {
    fig_compute_vs_cores(cfg, AllocMode::GlobalStrided, "fig08")
}

/// Dispatch by figure number (3..=13).
pub fn figure(number: u32, cfg: &HarnessConfig) -> FigureData {
    match number {
        3 => fig03(cfg),
        4 => fig04(cfg),
        5 => fig05(cfg),
        6 => fig06(cfg),
        7 => fig07(cfg),
        8 => fig08(cfg),
        9 => fig09(cfg),
        10 => fig10(cfg),
        11 => fig11(cfg),
        12 => fig12(cfg),
        13 => fig13(cfg),
        n => panic!("figure {n} is not an experimental figure (use 3..=13)"),
    }
}

/// All experimental figure numbers.
pub const ALL_FIGURES: [u32; 11] = [3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13];
