//! Machine-readable per-kernel performance reports and baseline comparison.
//!
//! A [`BenchReport`] condenses one benchmark run into the numbers a
//! regression gate needs: virtual makespan, sync fraction, stall-latency
//! percentiles, manager / memory-server utilization, a trace-derived
//! timeline summary, and the top hotspot pages with their allocation sites.
//! Reports serialize to `BENCH_<kernel>_p<threads>.json` (the vendored serde is a
//! no-op shim, so JSON is written by hand and read back through
//! [`samhita_trace::JsonValue`]) and are compared against committed
//! baselines by the `bench-diff` binary; [`compare`] is the pure decision
//! function so the gate itself is unit-testable.
//!
//! Comparability is guarded by a configuration fingerprint: a report made
//! under a different [`SamhitaConfig`] or kernel parameterization never
//! silently "passes" against a stale baseline — the fingerprint mismatch is
//! itself a failure that says "regenerate the baseline".

use samhita_core::{RunReport, SamhitaConfig};
use samhita_scl::MsgClass;
use samhita_trace::{
    critical_path, json::escape, JsonValue, LatencyHistogram, MetricsTimeline, PageCounters,
    PathClass, RunTrace, ThreadWindow,
};

/// Schema tag written into every report, bumped on breaking changes.
/// v2 adds the per-class traffic section (`traffic`) with message and byte
/// counts plus the `msgs_per_sync_op` rate the batching gate watches.
/// v3 adds the per-thread time-conservation breakdown (`breakdown`), the
/// manager/server queue-wait section (`queue`) with the
/// `mgr_queue_wait_fraction` the gate watches, and the trace-derived
/// critical-path composition (`critical_path`).
/// v4 adds the manager-recovery section (`recovery`): failover count, log
/// records shipped to the standby, lease reclaims, stale releases absorbed,
/// standby serves, and the takeover instant. The gate requires it to stay
/// all-quiet on fault-free runs — recovery machinery firing without an
/// injected fault is itself a regression.
/// v5 adds the host-side cost section (`host`): wall-clock time, simulated
/// events driven, ns-per-event, allocation counts, peak RSS, and a
/// per-phase wall/alloc table from `samhita-prof`. Host numbers are
/// machine-dependent by nature; the gate treats them with a generous
/// blowup-only ratio and they are excluded from the determinism
/// fingerprint and from byte-identity comparisons (`from_run` leaves the
/// section empty — only the report binaries attach it).
pub const SCHEMA: &str = "samhita-bench-report-v5";

/// Number of timeline intervals summarized into a report.
const TIMELINE_BUCKETS: u64 = 20;

/// Hotspot pages kept in a report (ranked by coherence churn).
const HOTSPOT_TOP_N: usize = 10;

/// Percentile digest of one stall-latency histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    pub count: u64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub max_ns: u64,
}

impl HistogramSummary {
    /// Digest a histogram.
    pub fn of(h: &LatencyHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            p50_ns: h.p50_ns(),
            p95_ns: h.p95_ns(),
            p99_ns: h.p99_ns(),
            max_ns: h.max_ns(),
        }
    }
}

/// Condensed view of a [`MetricsTimeline`]: the totals plus where the peaks
/// landed, enough to spot a phase shift without shipping every bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimelineSummary {
    /// Interval width (virtual ns).
    pub bucket_ns: u64,
    /// Number of intervals.
    pub buckets: u64,
    /// Total fabric payload over the run (bytes).
    pub fabric_bytes: u64,
    /// Interval index with the most fabric traffic, and its byte count.
    pub peak_fabric_bucket: u64,
    pub peak_fabric_bytes: u64,
    /// Interval index with the most memory-server busy time, and that time.
    pub peak_server_bucket: u64,
    pub peak_server_busy_ns: u64,
}

impl TimelineSummary {
    /// Digest a timeline.
    pub fn of(t: &MetricsTimeline) -> Self {
        let totals = t.totals();
        let fabric = t.peak_by(|b| b.fabric_bytes).unwrap_or((0, 0));
        let server = t.peak_by(|b| b.server_busy_ns).unwrap_or((0, 0));
        TimelineSummary {
            bucket_ns: t.bucket_ns,
            buckets: t.buckets.len() as u64,
            fabric_bytes: totals.fabric_bytes,
            peak_fabric_bucket: fabric.0 as u64,
            peak_fabric_bytes: fabric.1,
            peak_server_bucket: server.0 as u64,
            peak_server_busy_ns: server.1,
        }
    }
}

/// Message and byte counts of one traffic class over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassTraffic {
    /// Class label (`data`, `update`, `sync`, `control`).
    pub class: String,
    pub msgs: u64,
    pub bytes: u64,
}

/// Per-class fabric traffic plus the sync-op-normalized message rate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficSummary {
    pub total_msgs: u64,
    pub total_bytes: u64,
    /// Lock acquisitions + barrier episodes across all threads.
    pub sync_ops: u64,
    /// Update-class messages per sync op — O(servers) with batched flushes,
    /// O(dirty pages) without.
    pub msgs_per_sync_op: f64,
    /// One entry per [`MsgClass`], in `MsgClass::ALL` order.
    pub classes: Vec<ClassTraffic>,
}

impl TrafficSummary {
    /// Digest a run's fabric counters.
    pub fn of(report: &RunReport) -> Self {
        TrafficSummary {
            total_msgs: report.fabric.total_msgs(),
            total_bytes: report.fabric.total_bytes(),
            sync_ops: report.sync_ops(),
            msgs_per_sync_op: report.msgs_per_sync_op(),
            classes: MsgClass::ALL
                .iter()
                .map(|&c| ClassTraffic {
                    class: c.label().to_string(),
                    msgs: report.fabric.msgs(c),
                    bytes: report.fabric.bytes(c),
                })
                .collect(),
        }
    }

    /// Message count of the class labelled `label`, 0 when absent.
    pub fn msgs_of(&self, label: &str) -> u64 {
        self.classes.iter().find(|c| c.class == label).map_or(0, |c| c.msgs)
    }
}

/// Aggregate per-thread time conservation: the five pairwise-disjoint
/// measured wait classes plus derived compute and idle, summed over all
/// threads. `compute + fetch + lock + barrier + mgr + flush + idle ==
/// threads × makespan` exactly (asserted by the core's accounting tests).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BreakdownSummary {
    pub compute_ns: u64,
    pub fetch_ns: u64,
    pub lock_ns: u64,
    pub barrier_ns: u64,
    pub mgr_ns: u64,
    pub flush_ns: u64,
    pub idle_ns: u64,
    /// Sum of all thread timelines (`threads × makespan`).
    pub total_ns: u64,
}

impl BreakdownSummary {
    /// Digest a run's wait-state accounting.
    pub fn of(report: &RunReport) -> Self {
        let b = report.wait_breakdown();
        BreakdownSummary {
            compute_ns: b.compute_ns,
            fetch_ns: b.fetch_ns,
            lock_ns: b.lock_ns,
            barrier_ns: b.barrier_ns,
            mgr_ns: b.mgr_ns,
            flush_ns: b.flush_ns,
            idle_ns: b.idle_ns,
            total_ns: b.total_ns,
        }
    }
}

/// Manager and memory-server queue-pressure digest. All numbers come from
/// counters published outside the virtual clock, so recording them cannot
/// move any timestamp.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct QueueSummary {
    /// Total time manager requests spent queued behind other requests (ns).
    pub mgr_queue_wait_ns: u64,
    /// `mgr_queue_wait_ns / (threads × makespan)` — the "manager is the
    /// wall" fraction the regression gate watches.
    pub mgr_queue_wait_fraction: f64,
    /// Deepest manager queue observed (requests).
    pub mgr_peak_queue_depth: u64,
    /// Mean queue depth seen by arriving manager requests.
    pub mgr_mean_queue_depth: f64,
    /// Manager requests served.
    pub mgr_requests: u64,
    /// Total memory-server queue wait, summed over servers (ns).
    pub server_queue_wait_ns: u64,
    /// Deepest memory-server queue observed, across servers (requests).
    pub server_peak_queue_depth: u64,
}

impl QueueSummary {
    /// Digest a run's queue counters.
    pub fn of(report: &RunReport) -> Self {
        QueueSummary {
            mgr_queue_wait_ns: report.mgr_queue_wait_ns,
            mgr_queue_wait_fraction: report.mgr_queue_wait_fraction(),
            mgr_peak_queue_depth: report.mgr_peak_queue_depth,
            mgr_mean_queue_depth: report.mgr_mean_queue_depth(),
            mgr_requests: report.mgr_requests,
            server_queue_wait_ns: report.server_queue_wait_ns.iter().sum(),
            server_peak_queue_depth: report
                .server_peak_queue_depth
                .iter()
                .copied()
                .max()
                .unwrap_or(0),
        }
    }
}

/// Manager-recovery activity over the run. All six counters are zero on a
/// fault-free run even with a hot standby configured (log shipping itself
/// is counted, but the gate only requires the *takeover* side to stay
/// quiet): the standby absorbs the log silently and never serves.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoverySummary {
    /// Threads that re-homed from the crashed primary to the standby.
    pub mgr_failovers: u64,
    /// Log records the primary shipped to the standby (0 without one).
    pub log_records_shipped: u64,
    /// Expired lock leases the standby reclaimed after taking over.
    pub lease_reclaims: u64,
    /// Releases from deposed holders absorbed after a reclaim.
    pub stale_releases: u64,
    /// Requests the standby served after taking over.
    pub standby_serves: u64,
    /// Virtual instant the standby went active (0 = never).
    pub takeover_ns: u64,
}

impl RecoverySummary {
    /// Digest a run's recovery counters.
    pub fn of(report: &RunReport) -> Self {
        RecoverySummary {
            mgr_failovers: report.mgr_failovers(),
            log_records_shipped: report.log_records_shipped,
            lease_reclaims: report.lease_reclaims,
            stale_releases: report.stale_releases,
            standby_serves: report.standby_serves,
            takeover_ns: report.takeover_ns,
        }
    }

    /// Whether any takeover-side machinery fired. Log shipping alone (a
    /// standby passively mirroring a healthy primary) does not count.
    pub fn took_over(&self) -> bool {
        self.mgr_failovers > 0
            || self.lease_reclaims > 0
            || self.stale_releases > 0
            || self.standby_serves > 0
            || self.takeover_ns > 0
    }
}

/// Composition of the virtual-time critical path, from the trace-derived
/// backward walk ([`samhita_trace::critical_path`]). The eight classes sum
/// to `makespan_ns` exactly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CritPathSummary {
    pub makespan_ns: u64,
    pub compute_ns: u64,
    pub fetch_ns: u64,
    pub lock_wait_ns: u64,
    pub barrier_wait_ns: u64,
    pub mgr_wait_ns: u64,
    pub mgr_service_ns: u64,
    pub server_service_ns: u64,
    pub queue_wait_ns: u64,
    /// Path length in segments.
    pub n_segments: u64,
}

impl CritPathSummary {
    /// Digest an extracted critical path.
    pub fn of(r: &samhita_trace::CriticalPathReport) -> Self {
        CritPathSummary {
            makespan_ns: r.makespan_ns,
            compute_ns: r.class_total(PathClass::Compute),
            fetch_ns: r.class_total(PathClass::Fetch),
            lock_wait_ns: r.class_total(PathClass::LockWait),
            barrier_wait_ns: r.class_total(PathClass::BarrierWait),
            mgr_wait_ns: r.class_total(PathClass::MgrWait),
            mgr_service_ns: r.class_total(PathClass::MgrService),
            server_service_ns: r.class_total(PathClass::ServerService),
            queue_wait_ns: r.class_total(PathClass::QueueWait),
            n_segments: r.segments.len() as u64,
        }
    }
}

/// The run's per-thread windows, as the span/critical-path layer wants them.
pub fn thread_windows(report: &RunReport) -> Vec<ThreadWindow> {
    report
        .threads
        .iter()
        .map(|t| ThreadWindow { tid: t.tid, epoch_ns: t.epoch_ns, end_ns: t.end_ns })
        .collect()
}

/// One hotspot page with its allocation site and protocol counters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HotspotEntry {
    /// Global page number.
    pub page: u64,
    /// Allocation site label (`arena(t)`, `shared`, `striped`, …).
    pub site: String,
    pub counters: PageCounters,
}

/// Wall-clock and allocation totals for one profiled phase; see
/// [`samhita_prof::Phase`] for what each label covers.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostPhase {
    /// Stable phase label (`sched_step`, `regc_diff`, …).
    pub name: String,
    /// Wall-clock nanoseconds inside the phase.
    pub wall_ns: u64,
    /// Phase entries.
    pub calls: u64,
    /// Heap allocations attributed to the phase (0 unless the profiler was
    /// built with `alloc-count`).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

/// Host-side (wall-clock) cost of producing a run. Everything else in a
/// [`BenchReport`] is virtual-time and deterministic; this section is
/// machine- and load-dependent by nature. It is therefore excluded from
/// the config fingerprint, never populated by [`BenchReport::from_run`]
/// (the report binaries attach it after the run), and compared only with
/// a generous blowup-only gate.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HostSummary {
    /// Wall-clock nanoseconds the run took on the host.
    pub wall_ns: u64,
    /// Simulated events driven (total fabric messages).
    pub events: u64,
    /// `wall_ns / events`; 0 when no events were simulated.
    pub ns_per_event: f64,
    /// Total heap allocations during the run (`alloc-count` builds; else 0).
    pub allocs: u64,
    /// `allocs / events`; 0 when no events were simulated.
    pub allocs_per_event: f64,
    /// Peak resident set size of the process in bytes (0 off-Linux).
    pub peak_rss_bytes: u64,
    /// Per-phase wall/alloc breakdown, in [`samhita_prof::Phase::ALL`]
    /// order, plus a final `other` row for unattributed allocations.
    pub phases: Vec<HostPhase>,
}

impl HostSummary {
    /// Roll up a profiler snapshot into the report section. `wall_ns` is
    /// the run's end-to-end host time and `events` the simulated-event
    /// denominator (fabric messages).
    pub fn from_prof(prof: &samhita_prof::HostReport, wall_ns: u64, events: u64) -> HostSummary {
        let per = |n: u64| if events == 0 { 0.0 } else { n as f64 / events as f64 };
        let mut phases: Vec<HostPhase> = prof
            .phases
            .iter()
            .map(|(p, s)| HostPhase {
                name: p.label().to_string(),
                wall_ns: s.wall_ns,
                calls: s.calls,
                allocs: s.allocs,
                alloc_bytes: s.alloc_bytes,
            })
            .collect();
        phases.push(HostPhase {
            name: "other".to_string(),
            wall_ns: 0,
            calls: 0,
            allocs: prof.other.allocs,
            alloc_bytes: prof.other.alloc_bytes,
        });
        let allocs = prof.total_allocs();
        HostSummary {
            wall_ns,
            events,
            ns_per_event: per(wall_ns),
            allocs,
            allocs_per_event: per(allocs),
            peak_rss_bytes: samhita_prof::peak_rss_bytes(),
            phases,
        }
    }
}

/// Machine-readable record of one benchmark run.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchReport {
    /// Kernel name, e.g. `"micro"`, `"jacobi"`, `"md"`.
    pub kernel: String,
    /// Human-readable kernel parameterization (also fingerprinted).
    pub params: String,
    /// `git rev-parse --short HEAD`, or `"unknown"`; informational only —
    /// [`compare`] ignores it.
    pub git_rev: String,
    /// FNV-1a over the full `SamhitaConfig` debug form plus `params`.
    pub config_fingerprint: u64,
    pub threads: u32,
    pub makespan_ns: u64,
    pub sync_fraction: f64,
    pub mgr_utilization: f64,
    pub server_utilization: Vec<f64>,
    pub fetch: HistogramSummary,
    pub lock: HistogramSummary,
    pub barrier: HistogramSummary,
    /// Present when the run recorded an event trace.
    pub timeline: Option<TimelineSummary>,
    /// Per-class fabric traffic and the per-sync-op message rate.
    pub traffic: TrafficSummary,
    /// Aggregate per-thread time conservation (always present; zeros on
    /// native runs with no DSM waits).
    pub breakdown: BreakdownSummary,
    /// Manager / memory-server queue pressure.
    pub queue: QueueSummary,
    /// Manager crash-recovery activity; all-quiet on fault-free runs.
    pub recovery: RecoverySummary,
    /// Critical-path composition; present when the run recorded a trace.
    pub critical_path: Option<CritPathSummary>,
    /// Top pages by coherence churn, with allocation sites.
    pub hotspots: Vec<HotspotEntry>,
    /// Host-side wall-clock cost; absent from [`BenchReport::from_run`]
    /// output so determinism comparisons stay byte-exact. Attach with
    /// [`BenchReport::with_host`].
    pub host: Option<HostSummary>,
}

/// FNV-1a fingerprint of a configuration + kernel parameterization.
pub fn fingerprint(cfg: &SamhitaConfig, params: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}|{params}").bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The current short git revision, or `"unknown"` outside a git checkout.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

impl BenchReport {
    /// Build a report from a finished run. Pass the run's event trace to
    /// include the timeline section; without one, `timeline` is absent.
    pub fn from_run(
        kernel: &str,
        params: &str,
        cfg: &SamhitaConfig,
        threads: u32,
        report: &RunReport,
        trace: Option<&RunTrace>,
    ) -> Self {
        let timeline = trace.map(|t| {
            let width =
                MetricsTimeline::bucket_width_for(report.makespan.as_ns(), TIMELINE_BUCKETS);
            let mut tl = MetricsTimeline::from_trace(t, width, &cfg.service_costs());
            tl.absorb_queue_samples(&report.mgr_queue_samples);
            for s in &report.server_queue_samples {
                tl.absorb_queue_samples(s);
            }
            TimelineSummary::of(&tl)
        });
        let critical = trace.map(|t| {
            CritPathSummary::of(&critical_path(t, &thread_windows(report), &cfg.service_costs()))
        });
        let hot = report.hotspots();
        let hotspots = hot
            .top_churn(HOTSPOT_TOP_N)
            .into_iter()
            .map(|(page, counters)| HotspotEntry { page, site: report.site_label(page), counters })
            .collect();
        BenchReport {
            kernel: kernel.to_string(),
            params: params.to_string(),
            git_rev: git_rev(),
            config_fingerprint: fingerprint(cfg, params),
            threads,
            makespan_ns: report.makespan.as_ns(),
            sync_fraction: report.sync_fraction(),
            mgr_utilization: report.mgr_utilization(),
            server_utilization: report.server_utilization(),
            fetch: HistogramSummary::of(&report.fetch_latency()),
            lock: HistogramSummary::of(&report.lock_wait()),
            barrier: HistogramSummary::of(&report.barrier_wait()),
            timeline,
            traffic: TrafficSummary::of(report),
            breakdown: BreakdownSummary::of(report),
            queue: QueueSummary::of(report),
            recovery: RecoverySummary::of(report),
            critical_path: critical,
            hotspots,
            host: None,
        }
    }

    /// Attach a host-cost section; used by the report binaries after the
    /// run (never by [`BenchReport::from_run`], which must stay
    /// deterministic byte-for-byte).
    pub fn with_host(mut self, host: HostSummary) -> Self {
        self.host = Some(host);
        self
    }

    /// Serialize as a JSON object (`BENCH_<kernel>.json` contents).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        // The fingerprint is a full-range u64; JSON numbers only carry 53
        // bits of integer precision, so it travels as a hex string.
        out.push_str(&format!(
            "{{\"schema\":\"{}\",\"kernel\":\"{}\",\"params\":\"{}\",\"git_rev\":\"{}\",\
             \"config_fingerprint\":\"{:016x}\",\"threads\":{},\"makespan_ns\":{},\
             \"sync_fraction\":{},\"mgr_utilization\":{},\"server_utilization\":[",
            SCHEMA,
            escape(&self.kernel),
            escape(&self.params),
            escape(&self.git_rev),
            self.config_fingerprint,
            self.threads,
            self.makespan_ns,
            self.sync_fraction,
            self.mgr_utilization,
        ));
        for (i, u) in self.server_utilization.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{u}"));
        }
        out.push_str("],");
        for (name, h) in [("fetch", &self.fetch), ("lock", &self.lock), ("barrier", &self.barrier)]
        {
            out.push_str(&format!(
                "\"{name}\":{{\"count\":{},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{},\
                 \"max_ns\":{}}},",
                h.count, h.p50_ns, h.p95_ns, h.p99_ns, h.max_ns
            ));
        }
        match &self.timeline {
            None => out.push_str("\"timeline\":null,"),
            Some(t) => out.push_str(&format!(
                "\"timeline\":{{\"bucket_ns\":{},\"buckets\":{},\"fabric_bytes\":{},\
                 \"peak_fabric_bucket\":{},\"peak_fabric_bytes\":{},\"peak_server_bucket\":{},\
                 \"peak_server_busy_ns\":{}}},",
                t.bucket_ns,
                t.buckets,
                t.fabric_bytes,
                t.peak_fabric_bucket,
                t.peak_fabric_bytes,
                t.peak_server_bucket,
                t.peak_server_busy_ns
            )),
        }
        let t = &self.traffic;
        out.push_str(&format!(
            "\"traffic\":{{\"total_msgs\":{},\"total_bytes\":{},\"sync_ops\":{},\
             \"msgs_per_sync_op\":{},\"classes\":[",
            t.total_msgs, t.total_bytes, t.sync_ops, t.msgs_per_sync_op
        ));
        for (i, c) in t.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"class\":\"{}\",\"msgs\":{},\"bytes\":{}}}",
                escape(&c.class),
                c.msgs,
                c.bytes
            ));
        }
        out.push_str("]},");
        let b = &self.breakdown;
        out.push_str(&format!(
            "\"breakdown\":{{\"compute_ns\":{},\"fetch_ns\":{},\"lock_ns\":{},\
             \"barrier_ns\":{},\"mgr_ns\":{},\"flush_ns\":{},\"idle_ns\":{},\
             \"total_ns\":{}}},",
            b.compute_ns,
            b.fetch_ns,
            b.lock_ns,
            b.barrier_ns,
            b.mgr_ns,
            b.flush_ns,
            b.idle_ns,
            b.total_ns
        ));
        let q = &self.queue;
        out.push_str(&format!(
            "\"queue\":{{\"mgr_queue_wait_ns\":{},\"mgr_queue_wait_fraction\":{},\
             \"mgr_peak_queue_depth\":{},\"mgr_mean_queue_depth\":{},\"mgr_requests\":{},\
             \"server_queue_wait_ns\":{},\"server_peak_queue_depth\":{}}},",
            q.mgr_queue_wait_ns,
            q.mgr_queue_wait_fraction,
            q.mgr_peak_queue_depth,
            q.mgr_mean_queue_depth,
            q.mgr_requests,
            q.server_queue_wait_ns,
            q.server_peak_queue_depth
        ));
        let r = &self.recovery;
        out.push_str(&format!(
            "\"recovery\":{{\"mgr_failovers\":{},\"log_records_shipped\":{},\
             \"lease_reclaims\":{},\"stale_releases\":{},\"standby_serves\":{},\
             \"takeover_ns\":{}}},",
            r.mgr_failovers,
            r.log_records_shipped,
            r.lease_reclaims,
            r.stale_releases,
            r.standby_serves,
            r.takeover_ns
        ));
        match &self.critical_path {
            None => out.push_str("\"critical_path\":null,"),
            Some(c) => out.push_str(&format!(
                "\"critical_path\":{{\"makespan_ns\":{},\"compute_ns\":{},\"fetch_ns\":{},\
                 \"lock_wait_ns\":{},\"barrier_wait_ns\":{},\"mgr_wait_ns\":{},\
                 \"mgr_service_ns\":{},\"server_service_ns\":{},\"queue_wait_ns\":{},\
                 \"n_segments\":{}}},",
                c.makespan_ns,
                c.compute_ns,
                c.fetch_ns,
                c.lock_wait_ns,
                c.barrier_wait_ns,
                c.mgr_wait_ns,
                c.mgr_service_ns,
                c.server_service_ns,
                c.queue_wait_ns,
                c.n_segments
            )),
        }
        out.push_str("\"hotspots\":[");
        for (i, h) in self.hotspots.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let c = &h.counters;
            out.push_str(&format!(
                "{{\"page\":{},\"site\":\"{}\",\"misses\":{},\"refetches\":{},\
                 \"invalidations\":{},\"twins\":{},\"diff_bytes\":{},\"fine_bytes\":{}}}",
                h.page,
                escape(&h.site),
                c.misses,
                c.refetches,
                c.invalidations,
                c.twins,
                c.diff_bytes,
                c.fine_bytes
            ));
        }
        out.push_str("],");
        match &self.host {
            None => out.push_str("\"host\":null}"),
            Some(h) => {
                out.push_str(&format!(
                    "\"host\":{{\"wall_ns\":{},\"events\":{},\"ns_per_event\":{},\
                     \"allocs\":{},\"allocs_per_event\":{},\"peak_rss_bytes\":{},\"phases\":[",
                    h.wall_ns,
                    h.events,
                    h.ns_per_event,
                    h.allocs,
                    h.allocs_per_event,
                    h.peak_rss_bytes
                ));
                for (i, p) in h.phases.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!(
                        "{{\"name\":\"{}\",\"wall_ns\":{},\"calls\":{},\"allocs\":{},\
                         \"alloc_bytes\":{}}}",
                        escape(&p.name),
                        p.wall_ns,
                        p.calls,
                        p.allocs,
                        p.alloc_bytes
                    ));
                }
                out.push_str("]}}");
            }
        }
        debug_assert!(samhita_trace::validate_json(&out).is_ok(), "report serializer broke");
        out
    }

    /// Parse a report written by [`BenchReport::to_json`].
    pub fn from_json(input: &str) -> Result<Self, String> {
        let v = JsonValue::parse(input)?;
        let schema = req_str(&v, "schema")?;
        if schema != SCHEMA {
            return Err(format!(
                "unsupported report schema {schema:?} (want {SCHEMA:?}) — this report was \
                 written by a different tool version; regenerate it (and any committed \
                 baselines) with bench-report"
            ));
        }
        let histogram = |name: &str| -> Result<HistogramSummary, String> {
            let h = v.get(name).ok_or_else(|| format!("missing histogram {name:?}"))?;
            Ok(HistogramSummary {
                count: req_u64(h, "count")?,
                p50_ns: req_u64(h, "p50_ns")?,
                p95_ns: req_u64(h, "p95_ns")?,
                p99_ns: req_u64(h, "p99_ns")?,
                max_ns: req_u64(h, "max_ns")?,
            })
        };
        let timeline = match v.get("timeline") {
            None | Some(JsonValue::Null) => None,
            Some(t) => Some(TimelineSummary {
                bucket_ns: req_u64(t, "bucket_ns")?,
                buckets: req_u64(t, "buckets")?,
                fabric_bytes: req_u64(t, "fabric_bytes")?,
                peak_fabric_bucket: req_u64(t, "peak_fabric_bucket")?,
                peak_fabric_bytes: req_u64(t, "peak_fabric_bytes")?,
                peak_server_bucket: req_u64(t, "peak_server_bucket")?,
                peak_server_busy_ns: req_u64(t, "peak_server_busy_ns")?,
            }),
        };
        let traffic = {
            let t = v.get("traffic").ok_or("missing traffic section")?;
            let mut classes = Vec::new();
            for c in
                t.get("classes").and_then(|c| c.as_array()).ok_or("missing or non-array classes")?
            {
                classes.push(ClassTraffic {
                    class: req_str(c, "class")?.to_string(),
                    msgs: req_u64(c, "msgs")?,
                    bytes: req_u64(c, "bytes")?,
                });
            }
            TrafficSummary {
                total_msgs: req_u64(t, "total_msgs")?,
                total_bytes: req_u64(t, "total_bytes")?,
                sync_ops: req_u64(t, "sync_ops")?,
                msgs_per_sync_op: req_f64(t, "msgs_per_sync_op")?,
                classes,
            }
        };
        let breakdown = {
            let b = v.get("breakdown").ok_or("missing breakdown section")?;
            BreakdownSummary {
                compute_ns: req_u64(b, "compute_ns")?,
                fetch_ns: req_u64(b, "fetch_ns")?,
                lock_ns: req_u64(b, "lock_ns")?,
                barrier_ns: req_u64(b, "barrier_ns")?,
                mgr_ns: req_u64(b, "mgr_ns")?,
                flush_ns: req_u64(b, "flush_ns")?,
                idle_ns: req_u64(b, "idle_ns")?,
                total_ns: req_u64(b, "total_ns")?,
            }
        };
        let queue = {
            let q = v.get("queue").ok_or("missing queue section")?;
            QueueSummary {
                mgr_queue_wait_ns: req_u64(q, "mgr_queue_wait_ns")?,
                mgr_queue_wait_fraction: req_f64(q, "mgr_queue_wait_fraction")?,
                mgr_peak_queue_depth: req_u64(q, "mgr_peak_queue_depth")?,
                mgr_mean_queue_depth: req_f64(q, "mgr_mean_queue_depth")?,
                mgr_requests: req_u64(q, "mgr_requests")?,
                server_queue_wait_ns: req_u64(q, "server_queue_wait_ns")?,
                server_peak_queue_depth: req_u64(q, "server_peak_queue_depth")?,
            }
        };
        let recovery = {
            let r = v.get("recovery").ok_or("missing recovery section")?;
            RecoverySummary {
                mgr_failovers: req_u64(r, "mgr_failovers")?,
                log_records_shipped: req_u64(r, "log_records_shipped")?,
                lease_reclaims: req_u64(r, "lease_reclaims")?,
                stale_releases: req_u64(r, "stale_releases")?,
                standby_serves: req_u64(r, "standby_serves")?,
                takeover_ns: req_u64(r, "takeover_ns")?,
            }
        };
        let critical_path = match v.get("critical_path") {
            None | Some(JsonValue::Null) => None,
            Some(c) => Some(CritPathSummary {
                makespan_ns: req_u64(c, "makespan_ns")?,
                compute_ns: req_u64(c, "compute_ns")?,
                fetch_ns: req_u64(c, "fetch_ns")?,
                lock_wait_ns: req_u64(c, "lock_wait_ns")?,
                barrier_wait_ns: req_u64(c, "barrier_wait_ns")?,
                mgr_wait_ns: req_u64(c, "mgr_wait_ns")?,
                mgr_service_ns: req_u64(c, "mgr_service_ns")?,
                server_service_ns: req_u64(c, "server_service_ns")?,
                queue_wait_ns: req_u64(c, "queue_wait_ns")?,
                n_segments: req_u64(c, "n_segments")?,
            }),
        };
        let mut hotspots = Vec::new();
        for h in
            v.get("hotspots").and_then(|h| h.as_array()).ok_or("missing or non-array hotspots")?
        {
            hotspots.push(HotspotEntry {
                page: req_u64(h, "page")?,
                site: req_str(h, "site")?.to_string(),
                counters: PageCounters {
                    misses: req_u64(h, "misses")?,
                    refetches: req_u64(h, "refetches")?,
                    invalidations: req_u64(h, "invalidations")?,
                    twins: req_u64(h, "twins")?,
                    diff_bytes: req_u64(h, "diff_bytes")?,
                    fine_bytes: req_u64(h, "fine_bytes")?,
                },
            });
        }
        let host = match v.get("host") {
            None | Some(JsonValue::Null) => None,
            Some(h) => {
                let mut phases = Vec::new();
                for p in h
                    .get("phases")
                    .and_then(|p| p.as_array())
                    .ok_or("missing or non-array host phases")?
                {
                    phases.push(HostPhase {
                        name: req_str(p, "name")?.to_string(),
                        wall_ns: req_u64(p, "wall_ns")?,
                        calls: req_u64(p, "calls")?,
                        allocs: req_u64(p, "allocs")?,
                        alloc_bytes: req_u64(p, "alloc_bytes")?,
                    });
                }
                Some(HostSummary {
                    wall_ns: req_u64(h, "wall_ns")?,
                    events: req_u64(h, "events")?,
                    ns_per_event: req_f64(h, "ns_per_event")?,
                    allocs: req_u64(h, "allocs")?,
                    allocs_per_event: req_f64(h, "allocs_per_event")?,
                    peak_rss_bytes: req_u64(h, "peak_rss_bytes")?,
                    phases,
                })
            }
        };
        Ok(BenchReport {
            kernel: req_str(&v, "kernel")?.to_string(),
            params: req_str(&v, "params")?.to_string(),
            git_rev: req_str(&v, "git_rev")?.to_string(),
            config_fingerprint: u64::from_str_radix(req_str(&v, "config_fingerprint")?, 16)
                .map_err(|e| format!("bad config_fingerprint: {e}"))?,
            threads: req_u64(&v, "threads")? as u32,
            makespan_ns: req_u64(&v, "makespan_ns")?,
            sync_fraction: req_f64(&v, "sync_fraction")?,
            mgr_utilization: req_f64(&v, "mgr_utilization")?,
            server_utilization: v
                .get("server_utilization")
                .and_then(|s| s.as_array())
                .ok_or("missing or non-array server_utilization")?
                .iter()
                .map(|u| u.as_f64().ok_or("non-numeric server utilization".to_string()))
                .collect::<Result<_, _>>()?,
            fetch: histogram("fetch")?,
            lock: histogram("lock")?,
            barrier: histogram("barrier")?,
            timeline,
            traffic,
            breakdown,
            queue,
            recovery,
            critical_path,
            hotspots,
            host,
        })
    }
}

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key).and_then(|x| x.as_u64()).ok_or_else(|| format!("missing or non-u64 field {key:?}"))
}

fn req_f64(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key).and_then(|x| x.as_f64()).ok_or_else(|| format!("missing or non-number {key:?}"))
}

fn req_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key).and_then(|x| x.as_str()).ok_or_else(|| format!("missing or non-string {key:?}"))
}

/// Outcome of comparing a fresh report against a committed baseline.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Comparison {
    /// Human-readable metric lines (always populated).
    pub lines: Vec<String>,
    /// Regressions beyond tolerance; empty means the gate passes.
    pub regressions: Vec<String>,
}

impl Comparison {
    /// Whether the regression gate passes.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

/// Absolute slack added to the sync-fraction bound so near-zero baselines
/// (where a relative tolerance is meaninglessly tight) don't flap.
const SYNC_FRACTION_SLACK: f64 = 0.005;

/// Absolute slack for the manager queue-wait fraction gate, same rationale.
const QUEUE_WAIT_SLACK: f64 = 0.005;

/// Host wall-clock numbers vary with machine and load, so the host gate
/// only trips on blowups: fresh ns-per-event beyond this multiple of the
/// baseline. Ordinary noise (2–4x across CI runners) passes; an
/// accidentally quadratic hot path (10–100x) does not.
const HOST_BLOWUP_RATIO: f64 = 16.0;

/// Floor under the host gate: baselines generated on a fast machine can
/// carry a tiny ns-per-event that would make even the generous ratio
/// flappy, so regressions under this absolute ceiling never trip it.
const HOST_NS_PER_EVENT_FLOOR: f64 = 50_000.0;

/// Compare `fresh` against `base`: makespan and sync fraction may grow by at
/// most `tolerance` (relative, e.g. `0.05` for 5%; sync fraction gets an
/// extra `SYNC_FRACTION_SLACK` absolute allowance). `git_rev` is ignored;
/// a `config_fingerprint` mismatch is always a failure because the numbers
/// are not comparable — regenerate the baseline instead.
pub fn compare(base: &BenchReport, fresh: &BenchReport, tolerance: f64) -> Comparison {
    let mut cmp = Comparison::default();
    if base.config_fingerprint != fresh.config_fingerprint {
        cmp.regressions.push(format!(
            "{}: config fingerprint {:#x} != baseline {:#x} — configuration or kernel \
             parameters changed; regenerate the baseline (bench-report)",
            fresh.kernel, fresh.config_fingerprint, base.config_fingerprint
        ));
        return cmp;
    }
    // Thread counts are part of the fingerprinted params, but check them
    // explicitly too: a P=8 report gating against a P=64 baseline is never
    // a meaningful comparison, and this error message says why directly.
    if base.threads != fresh.threads {
        cmp.regressions.push(format!(
            "{}: thread count {} != baseline {} — not comparable; regenerate the baseline \
             (bench-report --threads)",
            fresh.kernel, fresh.threads, base.threads
        ));
        return cmp;
    }
    cmp.lines.push(format!("{:>10}  threads       {:>14}", fresh.kernel, fresh.threads));
    let pct = |b: f64, f: f64| if b == 0.0 { 0.0 } else { (f - b) / b * 100.0 };

    let makespan_delta = pct(base.makespan_ns as f64, fresh.makespan_ns as f64);
    cmp.lines.push(format!(
        "{:>10}  makespan      {:>14} -> {:>14}  ({:+.2}%)",
        fresh.kernel, base.makespan_ns, fresh.makespan_ns, makespan_delta
    ));
    if fresh.makespan_ns as f64 > base.makespan_ns as f64 * (1.0 + tolerance) {
        cmp.regressions.push(format!(
            "{}: makespan regressed {:+.2}% ({} -> {} ns, tolerance {:.1}%)",
            fresh.kernel,
            makespan_delta,
            base.makespan_ns,
            fresh.makespan_ns,
            tolerance * 100.0
        ));
    }

    let sync_delta = fresh.sync_fraction - base.sync_fraction;
    cmp.lines.push(format!(
        "{:>10}  sync fraction {:>13.2}% -> {:>13.2}%  ({:+.2} pts)",
        fresh.kernel,
        base.sync_fraction * 100.0,
        fresh.sync_fraction * 100.0,
        sync_delta * 100.0
    ));
    if fresh.sync_fraction > base.sync_fraction * (1.0 + tolerance) + SYNC_FRACTION_SLACK {
        cmp.regressions.push(format!(
            "{}: sync fraction regressed {:.2}% -> {:.2}% (tolerance {:.1}% + {:.1} pts)",
            fresh.kernel,
            base.sync_fraction * 100.0,
            fresh.sync_fraction * 100.0,
            tolerance * 100.0,
            SYNC_FRACTION_SLACK * 100.0
        ));
    }

    // Message-count gates: a regression here means the protocol started
    // chattering — e.g. the flush batcher fell back to per-page messages.
    // Counts are deterministic, but a small absolute allowance keeps
    // near-zero baselines from failing on a handful of messages.
    const MSG_SLACK: u64 = 16;
    for (label, b, f) in [
        ("total msgs", base.traffic.total_msgs, fresh.traffic.total_msgs),
        ("update msgs", base.traffic.msgs_of("update"), fresh.traffic.msgs_of("update")),
    ] {
        cmp.lines.push(format!(
            "{:>10}  {label:<13} {:>14} -> {:>14}  ({:+.2}%)",
            fresh.kernel,
            b,
            f,
            pct(b as f64, f as f64)
        ));
        if f as f64 > b as f64 * (1.0 + tolerance) + MSG_SLACK as f64 {
            cmp.regressions.push(format!(
                "{}: {label} regressed {b} -> {f} (tolerance {:.1}% + {MSG_SLACK})",
                fresh.kernel,
                tolerance * 100.0
            ));
        }
    }
    cmp.lines.push(format!(
        "{:>10}  msgs/sync op  {:>14.2} -> {:>14.2}",
        fresh.kernel, base.traffic.msgs_per_sync_op, fresh.traffic.msgs_per_sync_op
    ));

    // Manager queue pressure: the fraction of all thread-time spent queued
    // at the manager. Gated like sync fraction — relative tolerance plus an
    // absolute slack so near-zero baselines don't flap.
    let qw_delta = fresh.queue.mgr_queue_wait_fraction - base.queue.mgr_queue_wait_fraction;
    cmp.lines.push(format!(
        "{:>10}  mgr queue wait{:>13.2}% -> {:>13.2}%  ({:+.2} pts)",
        fresh.kernel,
        base.queue.mgr_queue_wait_fraction * 100.0,
        fresh.queue.mgr_queue_wait_fraction * 100.0,
        qw_delta * 100.0
    ));
    if fresh.queue.mgr_queue_wait_fraction
        > base.queue.mgr_queue_wait_fraction * (1.0 + tolerance) + QUEUE_WAIT_SLACK
    {
        cmp.regressions.push(format!(
            "{}: mgr queue-wait fraction regressed {:.2}% -> {:.2}% (tolerance {:.1}% + {:.1} pts)",
            fresh.kernel,
            base.queue.mgr_queue_wait_fraction * 100.0,
            fresh.queue.mgr_queue_wait_fraction * 100.0,
            tolerance * 100.0,
            QUEUE_WAIT_SLACK * 100.0
        ));
    }
    cmp.lines.push(format!(
        "{:>10}  mgr peak queue{:>14} -> {:>14}",
        fresh.kernel, base.queue.mgr_peak_queue_depth, fresh.queue.mgr_peak_queue_depth
    ));

    // Recovery gate: benchmark baselines are fault-free, so the crash-
    // recovery machinery must never fire during a gated run. A spurious
    // failover means the probe/retry path misfired — it would silently
    // perturb every number above, so it is a hard failure, not a tolerance.
    cmp.lines.push(format!(
        "{:>10}  mgr failovers {:>14} -> {:>14}",
        fresh.kernel, base.recovery.mgr_failovers, fresh.recovery.mgr_failovers
    ));
    if !base.recovery.took_over() && fresh.recovery.took_over() {
        let r = &fresh.recovery;
        cmp.regressions.push(format!(
            "{}: recovery machinery fired on a fault-free run ({} failovers, {} lease \
             reclaims, {} stale releases, {} standby serves, takeover at {} ns) — the \
             failover path must stay quiet without an injected manager crash",
            fresh.kernel,
            r.mgr_failovers,
            r.lease_reclaims,
            r.stale_releases,
            r.standby_serves,
            r.takeover_ns
        ));
    }

    // Host gate: wall-clock cost per simulated event. Machine-dependent,
    // so the line is informational and the failure threshold is a blowup
    // ratio, not a tolerance — it exists to catch accidental algorithmic
    // regressions in the simulator itself (e.g. a linear scan going
    // quadratic), not scheduler jitter. Only checked when both reports
    // carry a host section.
    if let (Some(bh), Some(fh)) = (&base.host, &fresh.host) {
        cmp.lines.push(format!(
            "{:>10}  host ns/event {:>14.1} -> {:>14.1}  ({:+.2}%)",
            fresh.kernel,
            bh.ns_per_event,
            fh.ns_per_event,
            pct(bh.ns_per_event, fh.ns_per_event)
        ));
        if bh.ns_per_event > 0.0
            && fh.ns_per_event > bh.ns_per_event * HOST_BLOWUP_RATIO
            && fh.ns_per_event > HOST_NS_PER_EVENT_FLOOR
        {
            cmp.regressions.push(format!(
                "{}: host ns/event blew up {:.1} -> {:.1} (over {HOST_BLOWUP_RATIO}x the \
                 baseline) — the simulator itself got drastically slower on this \
                 configuration; profile with bench-report and the hotpaths bench",
                fresh.kernel, bh.ns_per_event, fh.ns_per_event
            ));
        }
    }
    cmp
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BenchReport {
        BenchReport {
            kernel: "micro".into(),
            params: "M=10 S=2 mode=global P=1".into(),
            git_rev: "abc1234".into(),
            config_fingerprint: 0xdead_beef,
            threads: 1,
            makespan_ns: 1_000_000,
            sync_fraction: 0.25,
            mgr_utilization: 0.125,
            server_utilization: vec![0.5, 0.0625],
            fetch: HistogramSummary {
                count: 10,
                p50_ns: 100,
                p95_ns: 200,
                p99_ns: 300,
                max_ns: 400,
            },
            lock: HistogramSummary::default(),
            barrier: HistogramSummary { count: 2, p50_ns: 8, p95_ns: 8, p99_ns: 8, max_ns: 9 },
            timeline: Some(TimelineSummary {
                bucket_ns: 50_000,
                buckets: 20,
                fabric_bytes: 123_456,
                peak_fabric_bucket: 3,
                peak_fabric_bytes: 40_000,
                peak_server_bucket: 4,
                peak_server_busy_ns: 30_000,
            }),
            traffic: TrafficSummary {
                total_msgs: 1000,
                total_bytes: 500_000,
                sync_ops: 40,
                msgs_per_sync_op: 5.0,
                classes: vec![
                    ClassTraffic { class: "data".into(), msgs: 500, bytes: 400_000 },
                    ClassTraffic { class: "update".into(), msgs: 200, bytes: 80_000 },
                    ClassTraffic { class: "sync".into(), msgs: 200, bytes: 15_000 },
                    ClassTraffic { class: "control".into(), msgs: 100, bytes: 5_000 },
                ],
            },
            breakdown: BreakdownSummary {
                compute_ns: 700_000,
                fetch_ns: 100_000,
                lock_ns: 50_000,
                barrier_ns: 50_000,
                mgr_ns: 40_000,
                flush_ns: 10_000,
                idle_ns: 50_000,
                total_ns: 1_000_000,
            },
            queue: QueueSummary {
                mgr_queue_wait_ns: 30_000,
                mgr_queue_wait_fraction: 0.03,
                mgr_peak_queue_depth: 5,
                mgr_mean_queue_depth: 1.25,
                mgr_requests: 160,
                server_queue_wait_ns: 12_000,
                server_peak_queue_depth: 3,
            },
            recovery: RecoverySummary { log_records_shipped: 320, ..RecoverySummary::default() },
            critical_path: Some(CritPathSummary {
                makespan_ns: 1_000_000,
                compute_ns: 600_000,
                fetch_ns: 150_000,
                lock_wait_ns: 80_000,
                barrier_wait_ns: 70_000,
                mgr_wait_ns: 30_000,
                mgr_service_ns: 25_000,
                server_service_ns: 25_000,
                queue_wait_ns: 20_000,
                n_segments: 42,
            }),
            hotspots: vec![HotspotEntry {
                page: 65538,
                site: "shared".into(),
                counters: PageCounters { refetches: 12, invalidations: 11, ..Default::default() },
            }],
            host: Some(HostSummary {
                wall_ns: 5_000_000,
                events: 1000,
                ns_per_event: 5_000.0,
                allocs: 12_000,
                allocs_per_event: 12.0,
                peak_rss_bytes: 64 << 20,
                phases: vec![
                    HostPhase {
                        name: "sched_step".into(),
                        wall_ns: 900_000,
                        calls: 4_000,
                        allocs: 0,
                        alloc_bytes: 0,
                    },
                    HostPhase {
                        name: "regc_diff".into(),
                        wall_ns: 400_000,
                        calls: 200,
                        allocs: 600,
                        alloc_bytes: 48_000,
                    },
                    HostPhase {
                        name: "other".into(),
                        wall_ns: 0,
                        calls: 0,
                        allocs: 11_400,
                        alloc_bytes: 900_000,
                    },
                ],
            }),
        }
    }

    #[test]
    fn json_round_trips() {
        let r = sample();
        let json = r.to_json();
        samhita_trace::validate_json(&json).expect("valid JSON");
        assert_eq!(BenchReport::from_json(&json).expect("parses"), r);

        // Without the trace-derived and host sections, too.
        let bare = BenchReport {
            timeline: None,
            critical_path: None,
            hotspots: Vec::new(),
            host: None,
            ..r
        };
        assert_eq!(BenchReport::from_json(&bare.to_json()).expect("parses"), bare);
    }

    #[test]
    fn from_json_rejects_garbage() {
        assert!(BenchReport::from_json("{}").is_err());
        assert!(BenchReport::from_json("not json").is_err());
        let wrong_schema = sample().to_json().replace(SCHEMA, "other-schema-v9");
        assert!(BenchReport::from_json(&wrong_schema).unwrap_err().contains("schema"));
    }

    #[test]
    fn from_json_schema_mismatch_names_both_versions_and_the_fix() {
        // An old baseline (previous schema rev) must fail with a message
        // that names both versions and says to regenerate — not a field-
        // level parse error.
        let stale = sample().to_json().replace(SCHEMA, "samhita-bench-report-v4");
        let err = BenchReport::from_json(&stale).unwrap_err();
        assert!(err.contains("samhita-bench-report-v4"), "missing found version: {err}");
        assert!(err.contains(SCHEMA), "missing wanted version: {err}");
        assert!(err.contains("regenerate"), "missing remedy: {err}");
    }

    #[test]
    fn identical_reports_pass_the_gate() {
        let r = sample();
        let cmp = compare(&r, &r, 0.05);
        assert!(cmp.passed(), "self-comparison regressed: {:?}", cmp.regressions);
        assert_eq!(cmp.lines.len(), 10);
    }

    #[test]
    fn host_gate_trips_only_on_blowups() {
        let base = sample();
        // 8x slower per event: noisy, but no failure.
        let mut noisy = base.clone();
        let h = noisy.host.as_mut().unwrap();
        h.ns_per_event *= 8.0;
        h.wall_ns *= 8;
        assert!(compare(&base, &noisy, 0.05).passed());
        // 20x slower per event: algorithmic blowup, hard failure.
        let mut blown = base.clone();
        let h = blown.host.as_mut().unwrap();
        h.ns_per_event *= 20.0;
        h.wall_ns *= 20;
        let cmp = compare(&base, &blown, 0.05);
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].contains("host ns/event"), "{:?}", cmp.regressions);
    }

    #[test]
    fn host_gate_skips_when_either_side_lacks_the_section() {
        let with = sample();
        let without = BenchReport { host: None, ..sample() };
        for (a, b) in [(&with, &without), (&without, &with), (&without, &without)] {
            let cmp = compare(a, b, 0.05);
            assert!(cmp.passed(), "{:?}", cmp.regressions);
            assert_eq!(cmp.lines.len(), 9, "host line must be absent");
        }
    }

    #[test]
    fn host_gate_ignores_sub_floor_blowups() {
        // A 4 ns/event baseline regressing to 80 ns/event is a 20x ratio
        // but far below any real cost — the floor keeps it advisory.
        let mut base = sample();
        let h = base.host.as_mut().unwrap();
        h.ns_per_event = 4.0;
        let mut fresh = base.clone();
        fresh.host.as_mut().unwrap().ns_per_event = 80.0;
        assert!(compare(&base, &fresh, 0.05).passed());
    }

    #[test]
    fn recovery_activity_on_a_fault_free_run_fails_the_gate() {
        let base = sample();
        // A passively mirroring standby (log shipping only) is fine.
        let mut quiet = base.clone();
        quiet.recovery.log_records_shipped = 9_999;
        assert!(compare(&base, &quiet, 0.05).passed());
        // Any takeover-side activity is a hard failure regardless of
        // tolerance: the baseline run never crashed its manager.
        for bump in [
            |r: &mut RecoverySummary| r.mgr_failovers = 1,
            |r: &mut RecoverySummary| r.lease_reclaims = 1,
            |r: &mut RecoverySummary| r.stale_releases = 1,
            |r: &mut RecoverySummary| r.standby_serves = 1,
            |r: &mut RecoverySummary| r.takeover_ns = 60_000,
        ] {
            let mut fresh = base.clone();
            bump(&mut fresh.recovery);
            let cmp = compare(&base, &fresh, 0.5);
            assert!(!cmp.passed(), "takeover activity must fail: {fresh:?}");
            assert!(
                cmp.regressions.iter().any(|r| r.contains("recovery machinery")),
                "{:?}",
                cmp.regressions
            );
        }
    }

    #[test]
    fn queue_wait_fraction_regression_fails() {
        let base = sample();
        let mut fresh = base.clone();
        fresh.queue.mgr_queue_wait_fraction = 0.12; // 3% -> 12%
        let cmp = compare(&base, &fresh, 0.05);
        assert!(!cmp.passed());
        assert!(cmp.regressions.iter().any(|r| r.contains("queue-wait")), "{:?}", cmp.regressions);
        // Movement inside relative tolerance + absolute slack passes.
        let mut ok = base.clone();
        ok.queue.mgr_queue_wait_fraction = 0.034;
        assert!(compare(&base, &ok, 0.05).passed());
        // A near-zero baseline only trips past the absolute slack.
        let mut quiet_base = base.clone();
        quiet_base.queue.mgr_queue_wait_fraction = 0.0;
        let mut quiet_fresh = base.clone();
        quiet_fresh.queue.mgr_queue_wait_fraction = 0.004;
        assert!(compare(&quiet_base, &quiet_fresh, 0.05).passed());
        quiet_fresh.queue.mgr_queue_wait_fraction = 0.02;
        assert!(!compare(&quiet_base, &quiet_fresh, 0.05).passed());
    }

    #[test]
    fn thread_count_mismatch_is_always_a_failure() {
        let base = sample();
        let fresh = BenchReport { threads: 8, ..base.clone() };
        let cmp = compare(&base, &fresh, 0.05);
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].contains("thread count"));
    }

    #[test]
    fn message_count_regression_fails() {
        let base = sample();
        // Update-class chatter doubled: the flush batcher broke.
        let mut fresh = base.clone();
        fresh.traffic.classes[1].msgs = 400;
        fresh.traffic.total_msgs = 1200;
        let cmp = compare(&base, &fresh, 0.05);
        assert!(!cmp.passed());
        assert!(cmp.regressions.iter().any(|r| r.contains("update msgs")), "{:?}", cmp.regressions);
        assert!(cmp.regressions.iter().any(|r| r.contains("total msgs")), "{:?}", cmp.regressions);
        // A few extra messages inside the absolute slack pass.
        let mut ok = base.clone();
        ok.traffic.classes[1].msgs += 10;
        ok.traffic.total_msgs += 10;
        assert!(compare(&base, &ok, 0.0).passed());
        // Fewer messages are never a regression.
        let mut fewer = base.clone();
        fewer.traffic.classes[1].msgs = 20;
        fewer.traffic.total_msgs = 820;
        fewer.traffic.msgs_per_sync_op = 0.5;
        assert!(compare(&base, &fewer, 0.05).passed());
    }

    #[test]
    fn ten_percent_makespan_regression_fails_at_five_percent_tolerance() {
        let base = sample();
        let fresh = BenchReport { makespan_ns: base.makespan_ns * 110 / 100, ..base.clone() };
        let cmp = compare(&base, &fresh, 0.05);
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].contains("makespan"));
        // The same delta inside tolerance passes.
        let ok = BenchReport { makespan_ns: base.makespan_ns * 104 / 100, ..base.clone() };
        assert!(compare(&base, &ok, 0.05).passed());
        // Getting faster is never a regression.
        let faster = BenchReport { makespan_ns: base.makespan_ns / 2, ..base.clone() };
        assert!(compare(&base, &faster, 0.05).passed());
    }

    #[test]
    fn sync_fraction_regression_fails() {
        let base = sample();
        let fresh = BenchReport { sync_fraction: 0.40, ..base.clone() };
        let cmp = compare(&base, &fresh, 0.05);
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].contains("sync fraction"));
        // Tiny absolute movement on a near-zero baseline is slack, not a
        // regression.
        let quiet_base = BenchReport { sync_fraction: 0.0001, ..base.clone() };
        let quiet_fresh = BenchReport { sync_fraction: 0.004, ..base };
        assert!(compare(&quiet_base, &quiet_fresh, 0.05).passed());
    }

    #[test]
    fn fingerprint_mismatch_is_always_a_failure() {
        let base = sample();
        let fresh = BenchReport { config_fingerprint: 1, ..base.clone() };
        let cmp = compare(&base, &fresh, 0.05);
        assert!(!cmp.passed());
        assert!(cmp.regressions[0].contains("fingerprint"));
    }

    #[test]
    fn fingerprint_tracks_config_and_params() {
        let a = SamhitaConfig::default();
        let b = SamhitaConfig { page_size: a.page_size * 2, ..a.clone() };
        assert_ne!(fingerprint(&a, "x"), fingerprint(&b, "x"));
        assert_ne!(fingerprint(&a, "x"), fingerprint(&a, "y"));
        assert_eq!(fingerprint(&a, "x"), fingerprint(&a.clone(), "x"));
    }
}
