//! Per-track event buffers and run-level trace collection.
//!
//! Compute threads own a private [`TraceBuf`] (no locking on the hot path)
//! and hand it back to the [`Tracer`] when they finish. Service loops —
//! manager, memory servers, fabric observer — record through a
//! [`SharedTrack`], a mutex-wrapped buffer, because their events are pushed
//! from whichever OS thread happens to run the loop or call `Fabric::send`.
//!
//! Buffers are bounded rings: past `capacity` events the oldest are dropped
//! and counted, never blocking or reallocating without bound. A trace with
//! drops is still exportable but the invariant checker refuses it (a
//! truncated event stream cannot prove anything).

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use samhita_scl::SimTime;

use crate::event::{EventKind, TraceEvent, TrackId};

/// A bounded ring of events on one track.
#[derive(Debug)]
pub struct TraceBuf {
    track: TrackId,
    capacity: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl TraceBuf {
    /// Create a buffer for `track` holding at most `capacity` events.
    pub fn new(track: TrackId, capacity: usize) -> Self {
        TraceBuf { track, capacity, events: VecDeque::new(), dropped: 0 }
    }

    /// Record one event. O(1); drops the oldest event when full.
    #[inline]
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let _prof = samhita_prof::enter(samhita_prof::Phase::TraceEvent);
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent { at, kind });
    }

    /// The track this buffer records.
    pub fn track(&self) -> TrackId {
        self.track
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events dropped due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// A [`TraceBuf`] shared between OS threads (service loops, fabric observer).
#[derive(Clone, Debug)]
pub struct SharedTrack(Arc<Mutex<TraceBuf>>);

impl SharedTrack {
    /// Record one event.
    #[inline]
    pub fn push(&self, at: SimTime, kind: EventKind) {
        self.0.lock().push(at, kind);
    }
}

/// Collects all track buffers for one run.
#[derive(Debug, Default)]
pub struct Tracer {
    capacity: usize,
    collected: Mutex<Vec<TraceBuf>>,
    shared: Mutex<Vec<SharedTrack>>,
}

impl Tracer {
    /// Create a tracer; every track buffer is bounded to `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer { capacity, collected: Mutex::new(Vec::new()), shared: Mutex::new(Vec::new()) }
    }

    /// A private buffer for a compute-thread track; hand it back with
    /// [`Tracer::submit`] when the thread finishes.
    pub fn buf(&self, track: TrackId) -> TraceBuf {
        TraceBuf::new(track, self.capacity)
    }

    /// Register and return a shared buffer for a service track.
    pub fn shared_track(&self, track: TrackId) -> SharedTrack {
        let t = SharedTrack(Arc::new(Mutex::new(TraceBuf::new(track, self.capacity))));
        self.shared.lock().push(t.clone());
        t
    }

    /// Hand a finished thread buffer back to the tracer.
    pub fn submit(&self, buf: TraceBuf) {
        self.collected.lock().push(buf);
    }

    /// Drain everything recorded so far into a [`RunTrace`]. Shared tracks
    /// keep recording into fresh buffers afterwards.
    pub fn take(&self) -> RunTrace {
        let mut bufs = std::mem::take(&mut *self.collected.lock());
        for shared in self.shared.lock().iter() {
            let mut inner = shared.0.lock();
            let fresh = TraceBuf::new(inner.track, inner.capacity);
            bufs.push(std::mem::replace(&mut inner, fresh));
        }
        let mut dropped = 0u64;
        let mut tracks: BTreeMap<TrackId, Vec<TraceEvent>> = BTreeMap::new();
        for buf in bufs {
            dropped += buf.dropped;
            tracks.entry(buf.track).or_default().extend(buf.events);
        }
        for events in tracks.values_mut() {
            events.sort_by_key(|e| e.at);
        }
        RunTrace { tracks: tracks.into_iter().collect(), dropped }
    }
}

/// The full event record of one run: per-track event streams, each sorted by
/// virtual time, with tracks in [`TrackId`] order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunTrace {
    /// (track, events-sorted-by-stamp) pairs, sorted by track id.
    pub tracks: Vec<(TrackId, Vec<TraceEvent>)>,
    /// Events lost to buffer capacity across all tracks.
    pub dropped: u64,
}

impl RunTrace {
    /// Total recorded events across all tracks.
    pub fn len(&self) -> usize {
        self.tracks.iter().map(|(_, ev)| ev.len()).sum()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The event stream of one track, if present.
    pub fn track(&self, id: TrackId) -> Option<&[TraceEvent]> {
        self.tracks.iter().find(|(t, _)| *t == id).map(|(_, ev)| ev.as_slice())
    }

    /// FNV-1a checksum over the full JSONL export — the reproducibility
    /// fingerprint of a run: two runs with bit-identical protocol timelines
    /// (every event, on every track, at the same virtual time with the same
    /// arguments) have equal checksums. The deterministic runtime promises
    /// exactly this across repeated runs of one configuration.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in self.to_jsonl().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Build a trace directly from per-track event lists (used by tests and
    /// the checker fixtures). Events are sorted per track; tracks by id.
    pub fn from_tracks(tracks: Vec<(TrackId, Vec<TraceEvent>)>) -> Self {
        let mut map: BTreeMap<TrackId, Vec<TraceEvent>> = BTreeMap::new();
        for (id, events) in tracks {
            map.entry(id).or_default().extend(events);
        }
        for events in map.values_mut() {
            events.sort_by_key(|e| e.at);
        }
        RunTrace { tracks: map.into_iter().collect(), dropped: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let mut buf = TraceBuf::new(TrackId::Thread(0), 3);
        for i in 0..5u64 {
            buf.push(SimTime::from_ns(i), EventKind::TwinCreate { page: i });
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 2);
        assert_eq!(buf.events[0].kind, EventKind::TwinCreate { page: 2 });
    }

    #[test]
    fn tracer_merges_and_sorts_tracks() {
        let tracer = Tracer::new(1024);
        let mut t1 = tracer.buf(TrackId::Thread(1));
        let mut t0 = tracer.buf(TrackId::Thread(0));
        t1.push(SimTime::from_ns(20), EventKind::TwinCreate { page: 1 });
        t0.push(SimTime::from_ns(10), EventKind::TwinCreate { page: 0 });
        let mgr = tracer.shared_track(TrackId::Manager);
        mgr.push(SimTime::from_ns(5), EventKind::MgrServe { op: "acquire", tid: 0 });
        tracer.submit(t1);
        tracer.submit(t0);
        let trace = tracer.take();
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.dropped, 0);
        // Tracks come out in TrackId order: Thread(0), Thread(1), Manager.
        let ids: Vec<TrackId> = trace.tracks.iter().map(|(t, _)| *t).collect();
        assert_eq!(ids, vec![TrackId::Thread(0), TrackId::Thread(1), TrackId::Manager]);
        // A second take sees only what was recorded since.
        assert!(tracer.take().is_empty());
    }

    #[test]
    fn take_sorts_within_track() {
        let tracer = Tracer::new(16);
        // Two buffers for the same track (e.g. two phases) interleave.
        let mut a = tracer.buf(TrackId::Thread(0));
        let mut b = tracer.buf(TrackId::Thread(0));
        a.push(SimTime::from_ns(30), EventKind::TwinCreate { page: 3 });
        b.push(SimTime::from_ns(10), EventKind::TwinCreate { page: 1 });
        a.push(SimTime::from_ns(50), EventKind::TwinCreate { page: 5 });
        tracer.submit(a);
        tracer.submit(b);
        let trace = tracer.take();
        let events = trace.track(TrackId::Thread(0)).expect("track");
        let stamps: Vec<u64> = events.iter().map(|e| e.at.as_ns()).collect();
        assert_eq!(stamps, vec![10, 30, 50]);
    }
}
