//! Log-bucketed latency histograms.
//!
//! Power-of-two buckets over nanoseconds: bucket 0 holds exactly 0 ns and
//! bucket `b` (1..=63) holds `[2^(b-1), 2^b)`. Quantiles are therefore
//! approximate — reported as the upper bound of the bucket containing the
//! quantile, clamped to the observed maximum — which is plenty for p50/p95/
//! p99 summaries while keeping `record` branch-free and allocation-free so
//! it can run unconditionally on the hot path without perturbing anything.

const BUCKETS: usize = 64;

/// A log2-bucketed histogram of nanosecond latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: [0; BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

fn bucket_of(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

fn bucket_bound(b: usize) -> u64 {
    if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl LatencyHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample, in ns.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean latency in ns (0 if empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (0 < q <= 1) in ns: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th sample, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bound(b).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median (approximate), in ns.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile (approximate), in ns.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile (approximate), in ns.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// One-line summary: `n=…  p50=…  p95=…  p99=…  max=…` with µs units.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        fn us(ns: u64) -> String {
            format!("{:.1}us", ns as f64 / 1000.0)
        }
        format!(
            "n={}  p50={}  p95={}  p99={}  max={}",
            self.count,
            us(self.p50_ns()),
            us(self.p95_ns()),
            us(self.p99_ns()),
            us(self.max_ns)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 100_000);
        assert_eq!(h.mean_ns(), (100 + 200 + 300 + 400 + 100_000) / 5);
        // p50 lands in the bucket of the 3rd sample (300 → [256, 512)).
        let p50 = h.p50_ns();
        assert!((256..=511).contains(&p50), "p50 = {p50}");
        // p99 lands in the max's bucket, clamped to the observed max.
        assert_eq!(h.p99_ns(), 100_000);
    }

    #[test]
    fn single_sample_quantiles_clamp_to_max() {
        let mut h = LatencyHistogram::new();
        h.record(777);
        assert_eq!(h.p50_ns(), 777);
        assert_eq!(h.p99_ns(), 777);
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in [10u64, 20, 30] {
            a.record(ns);
        }
        for ns in [1_000u64, 2_000] {
            b.record(ns);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.max_ns(), 2_000);
        let mut all = LatencyHistogram::new();
        for ns in [10u64, 20, 30, 1_000, 2_000] {
            all.record(ns);
        }
        assert_eq!(merged, all);
    }
}
