//! Log-bucketed latency histograms.
//!
//! Power-of-two buckets over nanoseconds: bucket 0 holds exactly 0 ns and
//! bucket `b` (1..=63) holds `[2^(b-1), 2^b)`. Quantiles are therefore
//! approximate — reported as the upper bound of the bucket containing the
//! quantile, clamped to the observed maximum — which is plenty for p50/p95/
//! p99 summaries while keeping `record` branch-free and allocation-free so
//! it can run unconditionally on the hot path without perturbing anything.

const BUCKETS: usize = 64;

/// A log2-bucketed histogram of nanosecond latencies.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencyHistogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { counts: [0; BUCKETS], count: 0, sum_ns: 0, max_ns: 0 }
    }
}

fn bucket_of(ns: u64) -> usize {
    ((64 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

fn bucket_bound(b: usize) -> u64 {
    if b >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

impl LatencyHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.counts[bucket_of(ns)] += 1;
        self.count += 1;
        self.sum_ns = self.sum_ns.saturating_add(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns = self.sum_ns.saturating_add(other.sum_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample, in ns.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Mean latency in ns (0 if empty).
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (0 < q <= 1) in ns: the upper bound of the
    /// bucket holding the `ceil(q * count)`-th sample, clamped to the
    /// observed maximum. Returns 0 for an empty histogram.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_bound(b).min(self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median (approximate), in ns.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th percentile (approximate), in ns.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th percentile (approximate), in ns.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Serialize as a JSON object. Bucket counts are written sparsely as
    /// `[bucket, count]` pairs — most of the 64 buckets are empty.
    pub fn to_json(&self) -> String {
        let pairs: Vec<String> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(b, &c)| format!("[{b},{c}]"))
            .collect();
        format!(
            "{{\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"counts\":[{}]}}",
            self.count,
            self.sum_ns,
            self.max_ns,
            pairs.join(",")
        )
    }

    /// Parse a histogram serialized by [`LatencyHistogram::to_json`].
    pub fn from_json(input: &str) -> Result<Self, String> {
        let v = crate::json::JsonValue::parse(input)?;
        let field = |name: &str| {
            v.get(name).and_then(|n| n.as_u64()).ok_or_else(|| format!("missing field {name:?}"))
        };
        let mut h = LatencyHistogram {
            counts: [0; BUCKETS],
            count: field("count")?,
            sum_ns: field("sum_ns")?,
            max_ns: field("max_ns")?,
        };
        let pairs = v
            .get("counts")
            .and_then(|c| c.as_array())
            .ok_or_else(|| "missing field \"counts\"".to_string())?;
        for pair in pairs {
            let pair = pair.as_array().ok_or_else(|| "counts entry not a pair".to_string())?;
            let (b, c) =
                match (pair.first().and_then(|x| x.as_u64()), pair.get(1).and_then(|x| x.as_u64()))
                {
                    (Some(b), Some(c)) if pair.len() == 2 && (b as usize) < BUCKETS => {
                        (b as usize, c)
                    }
                    _ => return Err(format!("malformed counts entry {pair:?}")),
                };
            h.counts[b] = c;
        }
        if h.counts.iter().sum::<u64>() != h.count {
            return Err("bucket counts do not sum to count".to_string());
        }
        Ok(h)
    }

    /// One-line summary: `n=…  p50=…  p95=…  p99=…  max=…` with µs units.
    pub fn summary(&self) -> String {
        if self.count == 0 {
            return "n=0".to_string();
        }
        fn us(ns: u64) -> String {
            format!("{:.1}us", ns as f64 / 1000.0)
        }
        format!(
            "n={}  p50={}  p95={}  p99={}  max={}",
            self.count,
            us(self.p50_ns()),
            us(self.p95_ns()),
            us(self.p99_ns()),
            us(self.max_ns)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_bound(1), 1);
        assert_eq!(bucket_bound(2), 3);
        assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.p50_ns(), 0);
        assert_eq!(h.p99_ns(), 0);
        assert_eq!(h.max_ns(), 0);
        assert_eq!(h.mean_ns(), 0);
        assert_eq!(h.summary(), "n=0");
    }

    #[test]
    fn quantiles_bracket_the_data() {
        let mut h = LatencyHistogram::new();
        for ns in [100u64, 200, 300, 400, 100_000] {
            h.record(ns);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max_ns(), 100_000);
        assert_eq!(h.mean_ns(), (100 + 200 + 300 + 400 + 100_000) / 5);
        // p50 lands in the bucket of the 3rd sample (300 → [256, 512)).
        let p50 = h.p50_ns();
        assert!((256..=511).contains(&p50), "p50 = {p50}");
        // p99 lands in the max's bucket, clamped to the observed max.
        assert_eq!(h.p99_ns(), 100_000);
    }

    #[test]
    fn single_sample_quantiles_clamp_to_max() {
        let mut h = LatencyHistogram::new();
        h.record(777);
        assert_eq!(h.p50_ns(), 777);
        assert_eq!(h.p99_ns(), 777);
    }

    #[test]
    fn empty_summary_and_percentiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.summary(), "n=0");
        for q in [0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_ns(q), 0);
        }
    }

    #[test]
    fn merge_of_disjoint_buckets() {
        // a occupies only low buckets, b only high ones: merging must keep
        // both populations and every quantile must land in the right one.
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for _ in 0..90 {
            a.record(8); // bucket [8, 16)
        }
        for _ in 0..10 {
            b.record(1 << 20); // bucket [2^20, 2^21)
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 100);
        assert_eq!(merged.max_ns(), 1 << 20);
        assert!(merged.p50_ns() < 16, "p50 = {}", merged.p50_ns());
        assert_eq!(merged.p95_ns(), 1 << 20);
        // Merging into empty is identity in both directions.
        let mut from_empty = LatencyHistogram::new();
        from_empty.merge(&merged);
        assert_eq!(from_empty, merged);
        let mut with_empty = merged.clone();
        with_empty.merge(&LatencyHistogram::new());
        assert_eq!(with_empty, merged);
    }

    #[test]
    fn json_round_trip() {
        let mut h = LatencyHistogram::new();
        for ns in [0u64, 1, 3, 900, 900, 1 << 30, u64::MAX] {
            h.record(ns);
        }
        let json = h.to_json();
        crate::export::validate_json(&json).expect("valid json");
        assert_eq!(LatencyHistogram::from_json(&json).unwrap(), h);
        // An empty histogram round-trips too.
        let empty = LatencyHistogram::new();
        assert_eq!(LatencyHistogram::from_json(&empty.to_json()).unwrap(), empty);
    }

    #[test]
    fn from_json_rejects_inconsistent_input() {
        assert!(LatencyHistogram::from_json("{}").is_err());
        assert!(LatencyHistogram::from_json("[1,2]").is_err());
        // Bucket counts that do not sum to `count`.
        let bad = "{\"count\":5,\"sum_ns\":10,\"max_ns\":4,\"counts\":[[2,1]]}";
        assert!(LatencyHistogram::from_json(bad).is_err());
        // Out-of-range bucket index.
        let oob = "{\"count\":1,\"sum_ns\":1,\"max_ns\":1,\"counts\":[[64,1]]}";
        assert!(LatencyHistogram::from_json(oob).is_err());
    }

    #[test]
    fn merge_is_additive() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for ns in [10u64, 20, 30] {
            a.record(ns);
        }
        for ns in [1_000u64, 2_000] {
            b.record(ns);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        assert_eq!(merged.max_ns(), 2_000);
        let mut all = LatencyHistogram::new();
        for ns in [10u64, 20, 30, 1_000, 2_000] {
            all.record(ns);
        }
        assert_eq!(merged, all);
    }
}
