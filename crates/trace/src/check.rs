//! Trace-driven RegC invariant checker.
//!
//! Replays a [`RunTrace`] and verifies protocol invariants that must hold on
//! the *virtual* timeline of any correct run:
//!
//! 1. **Lock mutual exclusion** — hold intervals `[acquire, release]` for
//!    the same lock never overlap across threads. Release stamps are taken
//!    after the consistency flush and strictly before the next grant can be
//!    issued (the manager reserves `free_at >= release arrival`, the local
//!    bypass charges its cost on both sides), so on a correct run intervals
//!    are disjoint with at most boundary contact.
//! 2. **Invalidation causality** — every `Invalidate {page, writer}` at time
//!    `t` is preceded by a `DiffFlush {page}` on the writer's track at some
//!    time `<= t`: write notices are published from flushed diffs, never
//!    from un-flushed state.
//! 3. **Diff-byte conservation** — bytes flushed as diffs by threads equal
//!    bytes applied as diffs by memory servers (threads are the only diff
//!    producers). Fine-grain bytes may only be *under*-counted on the thread
//!    side (the host control client also writes through the fine path), so
//!    servers must apply at least what threads flushed.
//! 4. **Barrier episode alignment** — for each barrier episode, no thread is
//!    released before the last participant has arrived:
//!    `min(release stamps) >= max(arrive stamps)`.
//!
//! The checker refuses traces with dropped events — a truncated stream
//! proves nothing — and reports each violation with precise virtual-time
//! diagnostics.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::{EventKind, TrackId};
use crate::tracer::RunTrace;

/// What a clean check verified, for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CheckSummary {
    /// Distinct locks observed.
    pub locks: usize,
    /// Total lock hold intervals checked for overlap.
    pub lock_holds: u64,
    /// Invalidations whose causal flush was found.
    pub invalidations: u64,
    /// Barrier episodes checked for alignment.
    pub barrier_episodes: u64,
    /// Diff bytes conserved between flushers and servers.
    pub diff_bytes: u64,
    /// Fine-grain bytes flushed by threads (servers may apply more).
    pub fine_bytes: u64,
    /// Lease reclamations audited against the holder's actual hold.
    pub lease_reclaims: u64,
}

impl fmt::Display for CheckSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} holds on {} locks, {} invalidations, {} barrier episodes, \
             {} diff bytes conserved, {} fine bytes accounted, {} lease reclaims",
            self.lock_holds,
            self.locks,
            self.invalidations,
            self.barrier_episodes,
            self.diff_bytes,
            self.fine_bytes,
            self.lease_reclaims
        )
    }
}

/// A violated invariant, with virtual-time diagnostics. All times in ns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// The trace lost events to buffer capacity; nothing can be proven.
    Truncated { dropped: u64 },
    /// Two threads held the same lock at overlapping virtual times.
    LockOverlap {
        lock: u32,
        holder: u32,
        held_from: u64,
        held_to: u64,
        intruder: u32,
        acquired_at: u64,
    },
    /// A lock event without its counterpart on the same thread.
    UnpairedLock { lock: u32, tid: u32, at: u64, what: &'static str },
    /// The standby reclaimed a lease from a thread that never held the lock
    /// at that point in virtual time.
    ReclaimWithoutHold { lock: u32, holder: u32, at: u64 },
    /// An invalidation with no causally-ordered diff flush by the writer.
    UnorderedInvalidate {
        page: u64,
        reader: u32,
        writer: u32,
        at: u64,
        earliest_flush: Option<u64>,
    },
    /// Threads flushed a different number of diff bytes than servers applied.
    DiffBytesMismatch { flushed: u64, applied: u64 },
    /// Servers applied fewer fine-grain bytes than threads flushed.
    FineBytesLoss { flushed: u64, applied: u64 },
    /// A barrier released a thread before the last participant arrived.
    BarrierOverlap { barrier: u32, episode: u64, last_arrive: u64, first_release: u64 },
    /// A barrier arrive without a matching release on the same thread.
    UnpairedBarrier { barrier: u32, tid: u32, at: u64 },
    /// Threads disagree on how many episodes a barrier ran.
    BarrierArity { barrier: u32, tid: u32, episodes: u64, expected: u64 },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Truncated { dropped } => write!(
                f,
                "trace truncated: {dropped} events dropped by ring capacity; \
                 invariants cannot be verified on a partial stream"
            ),
            Violation::LockOverlap { lock, holder, held_from, held_to, intruder, acquired_at } => {
                write!(
                    f,
                    "mutual exclusion violated on lock {lock}: thread {intruder} acquired at \
                     {acquired_at}ns while thread {holder} held it during [{held_from}ns, \
                     {held_to}ns]"
                )
            }
            Violation::UnpairedLock { lock, tid, at, what } => {
                write!(f, "unpaired lock event on lock {lock}: thread {tid} {what} at {at}ns")
            }
            Violation::ReclaimWithoutHold { lock, holder, at } => write!(
                f,
                "bogus lease reclaim of lock {lock} at {at}ns: thread {holder} never held it \
                 at that point"
            ),
            Violation::UnorderedInvalidate { page, reader, writer, at, earliest_flush } => {
                match earliest_flush {
                    Some(flush) => write!(
                        f,
                        "out-of-order invalidation of page {page}: thread {reader} invalidated \
                         at {at}ns but writer thread {writer} first flushed a diff at {flush}ns \
                         (flush must causally precede the notice)"
                    ),
                    None => write!(
                        f,
                        "orphan invalidation of page {page}: thread {reader} invalidated at \
                         {at}ns but writer thread {writer} never flushed a diff for it"
                    ),
                }
            }
            Violation::DiffBytesMismatch { flushed, applied } => write!(
                f,
                "diff bytes not conserved: threads flushed {flushed} bytes but memory servers \
                 applied {applied} bytes"
            ),
            Violation::FineBytesLoss { flushed, applied } => write!(
                f,
                "fine-grain bytes lost: threads flushed {flushed} bytes but memory servers \
                 applied only {applied} bytes"
            ),
            Violation::BarrierOverlap { barrier, episode, last_arrive, first_release } => write!(
                f,
                "barrier {barrier} episode {episode} misaligned: a thread was released at \
                 {first_release}ns before the last arrival at {last_arrive}ns"
            ),
            Violation::UnpairedBarrier { barrier, tid, at } => write!(
                f,
                "unpaired barrier event on barrier {barrier}: thread {tid} arrived at {at}ns \
                 with no release"
            ),
            Violation::BarrierArity { barrier, tid, episodes, expected } => write!(
                f,
                "barrier {barrier} episode-count mismatch: thread {tid} ran {episodes} episodes \
                 but other participants ran {expected}"
            ),
        }
    }
}

impl RunTrace {
    /// Verify the RegC protocol invariants (see module docs). Returns a
    /// summary of what was proven, or every violation found.
    pub fn check_invariants(&self) -> Result<CheckSummary, Vec<Violation>> {
        let mut violations = Vec::new();
        if self.dropped > 0 {
            violations.push(Violation::Truncated { dropped: self.dropped });
            return Err(violations);
        }
        let mut summary = CheckSummary::default();
        self.check_locks(&mut summary, &mut violations);
        self.check_invalidations(&mut summary, &mut violations);
        self.check_byte_conservation(&mut summary, &mut violations);
        self.check_barriers(&mut summary, &mut violations);
        if violations.is_empty() {
            Ok(summary)
        } else {
            Err(violations)
        }
    }

    fn check_locks(&self, summary: &mut CheckSummary, violations: &mut Vec<Violation>) {
        // (acquire, release, tid) intervals per lock, from per-thread pairing.
        let mut intervals: BTreeMap<u32, Vec<(u64, u64, u32)>> = BTreeMap::new();
        for (track, events) in &self.tracks {
            let TrackId::Thread(tid) = *track else { continue };
            let mut open: BTreeMap<u32, u64> = BTreeMap::new();
            for e in events {
                match e.kind {
                    EventKind::LockAcquire { lock, .. } => {
                        if let Some(prev) = open.insert(lock, e.at.as_ns()) {
                            violations.push(Violation::UnpairedLock {
                                lock,
                                tid,
                                at: prev,
                                what: "re-acquired without releasing the hold begun",
                            });
                        }
                    }
                    EventKind::LockRelease { lock } => match open.remove(&lock) {
                        Some(acq) => {
                            intervals.entry(lock).or_default().push((acq, e.at.as_ns(), tid));
                        }
                        None => violations.push(Violation::UnpairedLock {
                            lock,
                            tid,
                            at: e.at.as_ns(),
                            what: "released without holding",
                        }),
                    },
                    _ => {}
                }
            }
            // A hold still open at thread exit excludes everyone forever.
            for (lock, acq) in open {
                intervals.entry(lock).or_default().push((acq, u64::MAX, tid));
            }
        }
        // Lease reclamations (standby track) forcibly end the named holder's
        // hold at the reclaim stamp; the deposed holder's own release, if it
        // ever arrives, is stale and must not extend the interval. A reclaim
        // whose end is already earlier is a release that was in flight when
        // the standby swept — legal, nothing to truncate.
        for (track, events) in &self.tracks {
            if !matches!(track, TrackId::MgrStandby | TrackId::Manager) {
                continue;
            }
            for e in events {
                let EventKind::LeaseReclaim { lock, holder } = e.kind else { continue };
                let at = e.at.as_ns();
                let hold = intervals.get_mut(&lock).and_then(|holds| {
                    holds
                        .iter_mut()
                        .filter(|(acq, _, tid)| *tid == holder && *acq <= at)
                        .max_by_key(|(acq, _, _)| *acq)
                });
                match hold {
                    Some((_, end, _)) => {
                        *end = (*end).min(at);
                        summary.lease_reclaims += 1;
                    }
                    None => violations.push(Violation::ReclaimWithoutHold { lock, holder, at }),
                }
            }
        }
        summary.locks = intervals.len();
        for (lock, mut holds) in intervals {
            holds.sort_unstable();
            summary.lock_holds += holds.len() as u64;
            for pair in holds.windows(2) {
                let (a1, r1, t1) = pair[0];
                let (a2, _, t2) = pair[1];
                // Boundary contact (a2 == r1) is legal: the release stamp is
                // taken before the wire send, strictly before the next grant.
                if a2 < r1 {
                    violations.push(Violation::LockOverlap {
                        lock,
                        holder: t1,
                        held_from: a1,
                        held_to: r1,
                        intruder: t2,
                        acquired_at: a2,
                    });
                }
            }
        }
    }

    fn check_invalidations(&self, summary: &mut CheckSummary, violations: &mut Vec<Violation>) {
        // Writer-side flush stamps per (writer, page), sorted by track order.
        let mut flushes: BTreeMap<(u32, u64), Vec<u64>> = BTreeMap::new();
        for (track, events) in &self.tracks {
            let TrackId::Thread(tid) = *track else { continue };
            for e in events {
                if let EventKind::DiffFlush { page, .. } = e.kind {
                    flushes.entry((tid, page)).or_default().push(e.at.as_ns());
                }
            }
        }
        for (track, events) in &self.tracks {
            let TrackId::Thread(reader) = *track else { continue };
            for e in events {
                let EventKind::Invalidate { page, writer } = e.kind else { continue };
                let at = e.at.as_ns();
                let ok = flushes
                    .get(&(writer, page))
                    .is_some_and(|stamps| stamps.first().is_some_and(|&f| f <= at));
                if ok {
                    summary.invalidations += 1;
                } else {
                    violations.push(Violation::UnorderedInvalidate {
                        page,
                        reader,
                        writer,
                        at,
                        earliest_flush: flushes
                            .get(&(writer, page))
                            .and_then(|s| s.first().copied()),
                    });
                }
            }
        }
    }

    fn check_byte_conservation(&self, summary: &mut CheckSummary, violations: &mut Vec<Violation>) {
        let (mut diff_flushed, mut fine_flushed) = (0u64, 0u64);
        let (mut diff_applied, mut fine_applied) = (0u64, 0u64);
        for (track, events) in &self.tracks {
            for e in events {
                match (track, &e.kind) {
                    (TrackId::Thread(_), EventKind::DiffFlush { bytes, .. }) => {
                        diff_flushed += bytes;
                    }
                    (TrackId::Thread(_), EventKind::FineFlush { bytes, .. }) => {
                        fine_flushed += bytes;
                    }
                    (TrackId::MemServer(_), EventKind::ApplyDiff { bytes, .. }) => {
                        diff_applied += bytes;
                    }
                    (TrackId::MemServer(_), EventKind::ApplyFine { bytes, .. }) => {
                        fine_applied += bytes;
                    }
                    _ => {}
                }
            }
        }
        if diff_flushed != diff_applied {
            violations.push(Violation::DiffBytesMismatch {
                flushed: diff_flushed,
                applied: diff_applied,
            });
        } else {
            summary.diff_bytes = diff_flushed;
        }
        // The host control client also writes through ApplyFine, so servers
        // may legitimately apply more fine bytes than threads flushed.
        if fine_applied < fine_flushed {
            violations
                .push(Violation::FineBytesLoss { flushed: fine_flushed, applied: fine_applied });
        } else {
            summary.fine_bytes = fine_flushed;
        }
    }

    fn check_barriers(&self, summary: &mut CheckSummary, violations: &mut Vec<Violation>) {
        // Per (barrier, tid): the ordered list of (arrive, release) pairs.
        let mut pairs: BTreeMap<u32, BTreeMap<u32, Vec<(u64, u64)>>> = BTreeMap::new();
        for (track, events) in &self.tracks {
            let TrackId::Thread(tid) = *track else { continue };
            let mut pending: BTreeMap<u32, u64> = BTreeMap::new();
            for e in events {
                match e.kind {
                    EventKind::BarrierArrive { barrier } => {
                        pending.insert(barrier, e.at.as_ns());
                    }
                    EventKind::BarrierRelease { barrier, .. } => {
                        if let Some(arrive) = pending.remove(&barrier) {
                            pairs
                                .entry(barrier)
                                .or_default()
                                .entry(tid)
                                .or_default()
                                .push((arrive, e.at.as_ns()));
                        }
                    }
                    _ => {}
                }
            }
            for (barrier, at) in pending {
                violations.push(Violation::UnpairedBarrier { barrier, tid, at });
            }
        }
        for (barrier, by_tid) in pairs {
            // All participants must have run the same number of episodes —
            // barriers in this system are whole-group (fixed parties).
            let expected = by_tid.values().map(|v| v.len() as u64).max().unwrap_or(0);
            let mut aligned = true;
            for (tid, eps) in &by_tid {
                if eps.len() as u64 != expected {
                    violations.push(Violation::BarrierArity {
                        barrier,
                        tid: *tid,
                        episodes: eps.len() as u64,
                        expected,
                    });
                    aligned = false;
                }
            }
            if !aligned {
                continue;
            }
            for k in 0..expected as usize {
                let last_arrive = by_tid.values().map(|eps| eps[k].0).max().expect("participants");
                let first_release =
                    by_tid.values().map(|eps| eps[k].1).min().expect("participants");
                if first_release < last_arrive {
                    violations.push(Violation::BarrierOverlap {
                        barrier,
                        episode: k as u64,
                        last_arrive,
                        first_release,
                    });
                } else {
                    summary.barrier_episodes += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use samhita_scl::SimTime;

    fn ev(at: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_ns(at), kind }
    }

    /// A small well-formed trace: two threads trade a lock, run one barrier
    /// episode, and thread 1 invalidates a page thread 0 flushed.
    fn clean_trace() -> RunTrace {
        RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(100, EventKind::LockAcquire { lock: 0, wait_ns: 50 }),
                    ev(150, EventKind::TwinCreate { page: 9 }),
                    ev(200, EventKind::DiffFlush { page: 9, bytes: 64 }),
                    ev(250, EventKind::LockRelease { lock: 0 }),
                    ev(300, EventKind::BarrierArrive { barrier: 0 }),
                    ev(500, EventKind::BarrierRelease { barrier: 0, wait_ns: 200 }),
                ],
            ),
            (
                TrackId::Thread(1),
                vec![
                    ev(400, EventKind::LockAcquire { lock: 0, wait_ns: 300 }),
                    ev(410, EventKind::Invalidate { page: 9, writer: 0 }),
                    ev(450, EventKind::LockRelease { lock: 0 }),
                    ev(460, EventKind::BarrierArrive { barrier: 0 }),
                    ev(520, EventKind::BarrierRelease { barrier: 0, wait_ns: 60 }),
                ],
            ),
            (TrackId::MemServer(0), vec![ev(230, EventKind::ApplyDiff { page: 9, bytes: 64 })]),
        ])
    }

    #[test]
    fn clean_trace_passes_with_accurate_summary() {
        let summary = clean_trace().check_invariants().expect("clean");
        assert_eq!(summary.locks, 1);
        assert_eq!(summary.lock_holds, 2);
        assert_eq!(summary.invalidations, 1);
        assert_eq!(summary.barrier_episodes, 1);
        assert_eq!(summary.diff_bytes, 64);
        // Display is a one-liner mentioning what was proven.
        assert!(summary.to_string().contains("2 holds on 1 locks"));
    }

    /// Injected-violation fixture 1: overlapping lock holds.
    #[test]
    fn rejects_mutual_exclusion_violation_with_diagnostics() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(100, EventKind::LockAcquire { lock: 3, wait_ns: 0 }),
                    ev(500, EventKind::LockRelease { lock: 3 }),
                ],
            ),
            (
                TrackId::Thread(1),
                vec![
                    // Acquired at 300 while thread 0 still holds until 500.
                    ev(300, EventKind::LockAcquire { lock: 3, wait_ns: 0 }),
                    ev(600, EventKind::LockRelease { lock: 3 }),
                ],
            ),
        ]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert_eq!(violations.len(), 1);
        let v = &violations[0];
        assert_eq!(
            *v,
            Violation::LockOverlap {
                lock: 3,
                holder: 0,
                held_from: 100,
                held_to: 500,
                intruder: 1,
                acquired_at: 300,
            }
        );
        let msg = v.to_string();
        assert!(msg.contains("lock 3"), "diagnostic names the lock: {msg}");
        assert!(msg.contains("thread 1 acquired at 300ns"), "names the intruder: {msg}");
        assert!(msg.contains("[100ns, 500ns]"), "names the hold interval: {msg}");
    }

    /// Injected-violation fixture 2: invalidation precedes the writer's flush.
    #[test]
    fn rejects_out_of_order_invalidation_with_diagnostics() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                // Flush happens only at t=900…
                vec![ev(900, EventKind::DiffFlush { page: 42, bytes: 32 })],
            ),
            (
                TrackId::Thread(1),
                // …but the reader saw the invalidation at t=400.
                vec![ev(400, EventKind::Invalidate { page: 42, writer: 0 })],
            ),
            (TrackId::MemServer(0), vec![ev(950, EventKind::ApplyDiff { page: 42, bytes: 32 })]),
        ]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert_eq!(violations.len(), 1);
        assert_eq!(
            violations[0],
            Violation::UnorderedInvalidate {
                page: 42,
                reader: 1,
                writer: 0,
                at: 400,
                earliest_flush: Some(900),
            }
        );
        let msg = violations[0].to_string();
        assert!(msg.contains("page 42"), "diagnostic names the page: {msg}");
        assert!(msg.contains("invalidated at 400ns"), "names the notice time: {msg}");
        assert!(msg.contains("flushed a diff at 900ns"), "names the flush time: {msg}");
    }

    #[test]
    fn rejects_orphan_invalidation() {
        let trace = RunTrace::from_tracks(vec![(
            TrackId::Thread(1),
            vec![ev(400, EventKind::Invalidate { page: 5, writer: 0 })],
        )]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert!(matches!(
            violations[0],
            Violation::UnorderedInvalidate { page: 5, earliest_flush: None, .. }
        ));
        assert!(violations[0].to_string().contains("never flushed"));
    }

    #[test]
    fn rejects_unpaired_release() {
        let trace = RunTrace::from_tracks(vec![(
            TrackId::Thread(2),
            vec![ev(700, EventKind::LockRelease { lock: 1 })],
        )]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert_eq!(
            violations[0],
            Violation::UnpairedLock { lock: 1, tid: 2, at: 700, what: "released without holding" }
        );
    }

    #[test]
    fn hold_open_at_exit_excludes_later_acquires() {
        let trace = RunTrace::from_tracks(vec![
            (TrackId::Thread(0), vec![ev(100, EventKind::LockAcquire { lock: 0, wait_ns: 0 })]),
            (
                TrackId::Thread(1),
                vec![
                    ev(200, EventKind::LockAcquire { lock: 0, wait_ns: 0 }),
                    ev(300, EventKind::LockRelease { lock: 0 }),
                ],
            ),
        ]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert!(matches!(violations[0], Violation::LockOverlap { lock: 0, .. }));
    }

    #[test]
    fn rejects_diff_byte_mismatch() {
        let trace = RunTrace::from_tracks(vec![
            (TrackId::Thread(0), vec![ev(10, EventKind::DiffFlush { page: 1, bytes: 100 })]),
            (TrackId::MemServer(0), vec![ev(20, EventKind::ApplyDiff { page: 1, bytes: 60 })]),
        ]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert_eq!(violations[0], Violation::DiffBytesMismatch { flushed: 100, applied: 60 });
    }

    #[test]
    fn fine_bytes_tolerate_host_writes_but_not_loss() {
        // Servers applying more than threads flushed is fine (host writes).
        let extra = RunTrace::from_tracks(vec![
            (TrackId::Thread(0), vec![ev(10, EventKind::FineFlush { page: 1, bytes: 8 })]),
            (TrackId::MemServer(0), vec![ev(20, EventKind::ApplyFine { page: 1, bytes: 8 })]),
            (TrackId::MemServer(0), vec![ev(30, EventKind::ApplyFine { page: 2, bytes: 16 })]),
        ]);
        assert!(extra.check_invariants().is_ok());
        // Applying less is loss.
        let loss = RunTrace::from_tracks(vec![
            (TrackId::Thread(0), vec![ev(10, EventKind::FineFlush { page: 1, bytes: 32 })]),
            (TrackId::MemServer(0), vec![ev(20, EventKind::ApplyFine { page: 1, bytes: 8 })]),
        ]);
        let violations = loss.check_invariants().expect_err("must reject");
        assert_eq!(violations[0], Violation::FineBytesLoss { flushed: 32, applied: 8 });
    }

    #[test]
    fn rejects_misaligned_barrier_episode() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(100, EventKind::BarrierArrive { barrier: 0 }),
                    // Released at 150, before thread 1 arrives at 200.
                    ev(150, EventKind::BarrierRelease { barrier: 0, wait_ns: 50 }),
                ],
            ),
            (
                TrackId::Thread(1),
                vec![
                    ev(200, EventKind::BarrierArrive { barrier: 0 }),
                    ev(250, EventKind::BarrierRelease { barrier: 0, wait_ns: 50 }),
                ],
            ),
        ]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert_eq!(
            violations[0],
            Violation::BarrierOverlap {
                barrier: 0,
                episode: 0,
                last_arrive: 200,
                first_release: 150
            }
        );
        let msg = violations[0].to_string();
        assert!(msg.contains("released at 150ns"), "{msg}");
        assert!(msg.contains("last arrival at 200ns"), "{msg}");
    }

    #[test]
    fn rejects_barrier_arity_mismatch() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(100, EventKind::BarrierArrive { barrier: 0 }),
                    ev(200, EventKind::BarrierRelease { barrier: 0, wait_ns: 100 }),
                    ev(300, EventKind::BarrierArrive { barrier: 0 }),
                    ev(400, EventKind::BarrierRelease { barrier: 0, wait_ns: 100 }),
                ],
            ),
            (
                TrackId::Thread(1),
                vec![
                    ev(110, EventKind::BarrierArrive { barrier: 0 }),
                    ev(200, EventKind::BarrierRelease { barrier: 0, wait_ns: 90 }),
                ],
            ),
        ]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert!(matches!(
            violations[0],
            Violation::BarrierArity { barrier: 0, tid: 1, episodes: 1, expected: 2 }
        ));
    }

    #[test]
    fn lease_reclaim_closes_the_deposed_holders_interval() {
        // T0 acquires at 100 and only releases (stale) at 700, after the
        // standby reclaimed the lease at 500 and granted T1. Without the
        // reclaim this is a textbook overlap; with it the intervals are
        // [100, 500] and [500, 600].
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(100, EventKind::LockAcquire { lock: 4, wait_ns: 0 }),
                    ev(700, EventKind::LockRelease { lock: 4 }),
                ],
            ),
            (
                TrackId::Thread(1),
                vec![
                    ev(500, EventKind::LockAcquire { lock: 4, wait_ns: 400 }),
                    ev(600, EventKind::LockRelease { lock: 4 }),
                ],
            ),
            (TrackId::MgrStandby, vec![ev(500, EventKind::LeaseReclaim { lock: 4, holder: 0 })]),
        ]);
        let summary = trace.check_invariants().expect("reclaim resolves the overlap");
        assert_eq!(summary.lease_reclaims, 1);
        assert_eq!(summary.lock_holds, 2);
        // Sanity: the same trace without the reclaim event is rejected.
        let without = RunTrace::from_tracks(
            trace.tracks.iter().filter(|(t, _)| *t != TrackId::MgrStandby).cloned().collect(),
        );
        let violations = without.check_invariants().expect_err("overlap without reclaim");
        assert!(matches!(violations[0], Violation::LockOverlap { lock: 4, .. }));
    }

    #[test]
    fn rejects_reclaim_from_a_thread_that_never_held() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(100, EventKind::LockAcquire { lock: 2, wait_ns: 0 }),
                    ev(200, EventKind::LockRelease { lock: 2 }),
                ],
            ),
            (TrackId::MgrStandby, vec![ev(300, EventKind::LeaseReclaim { lock: 2, holder: 9 })]),
        ]);
        let violations = trace.check_invariants().expect_err("must reject");
        assert_eq!(violations[0], Violation::ReclaimWithoutHold { lock: 2, holder: 9, at: 300 });
        let msg = violations[0].to_string();
        assert!(msg.contains("lock 2"), "{msg}");
        assert!(msg.contains("thread 9 never held"), "{msg}");
    }

    #[test]
    fn refuses_truncated_traces() {
        let mut trace = clean_trace();
        trace.dropped = 17;
        let violations = trace.check_invariants().expect_err("must refuse");
        assert_eq!(violations, vec![Violation::Truncated { dropped: 17 }]);
        assert!(violations[0].to_string().contains("17 events dropped"));
    }
}
