//! Causal span graph, reconstructed post-hoc from a recorded [`RunTrace`].
//!
//! The raw trace is a set of per-track event streams; this module lifts it
//! into a graph of **spans** (intervals of virtual time during which one
//! actor was doing one class of thing) connected by **causal edges**
//! (lock handoffs, barrier releases, RPC request/service/response pairs,
//! fetch serves). Thread tracks are tiled completely: every instant of a
//! thread's measured window `[epoch, end]` lies in exactly one span, wait
//! spans coming verbatim from the trace's `wait_ns` intervals and the gaps
//! between them classified as compute. Manager and memory-server spans are
//! reconstructed from serve events and the deterministic service-cost
//! model ([`ServiceCosts`]), exactly as the metrics timeline does.
//!
//! Construction is strictly observational — it reads a finished trace and
//! the run report's per-thread windows, so building (or not building) the
//! graph cannot perturb any virtual clock. Determinism of the trace
//! therefore carries over: the same run produces the same graph,
//! byte-for-byte in any serialized form.
//!
//! Every edge is stamped at both ends (`src_at`, `dst_at`) and is
//! virtual-time monotone (`src_at <= dst_at`); candidate edges that would
//! violate monotonicity (possible only under fault-injection reordering)
//! are dropped and counted in [`SpanGraph::skipped_edges`]. Monotone edges
//! over monotone tracks make the graph acyclic by construction, which
//! [`SpanGraph::is_acyclic`] verifies independently (Kahn's algorithm).

use std::collections::HashMap;

use samhita_scl::SimTime;

use crate::event::{EventKind, TraceEvent, TrackId};
use crate::metrics::ServiceCosts;
use crate::tracer::RunTrace;

/// What a span's interval was spent on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanClass {
    /// Thread-local work (includes flush assembly; threads only).
    Compute,
    /// Stalled on a line fetch / refetch (threads only).
    Fetch,
    /// Stalled on a lock acquire (threads only).
    LockWait,
    /// Stalled at a barrier (threads only).
    BarrierWait,
    /// Stalled on a non-sync manager RPC (threads only).
    MgrWait,
    /// The manager serving one request (manager track only).
    MgrService,
    /// A memory server serving one request (server tracks only).
    ServerService,
}

impl SpanClass {
    /// Stable lowercase label used by exporters and reports.
    pub fn label(&self) -> &'static str {
        match self {
            SpanClass::Compute => "compute",
            SpanClass::Fetch => "fetch",
            SpanClass::LockWait => "lock-wait",
            SpanClass::BarrierWait => "barrier-wait",
            SpanClass::MgrWait => "mgr-wait",
            SpanClass::MgrService => "mgr-service",
            SpanClass::ServerService => "server-service",
        }
    }
}

/// Attribution payload of a span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpanDetail {
    /// Nothing specific (compute spans).
    None,
    /// A page range (fetch waits, server fetch serves).
    Page {
        /// First page of the range.
        page: u64,
        /// Pages in the range.
        pages: u32,
    },
    /// A lock id.
    Lock(u32),
    /// A barrier id.
    Barrier(u32),
    /// A manager RPC op label.
    Op(&'static str),
    /// A manager serve: which op, for which thread.
    Serve {
        /// The request's op label.
        op: &'static str,
        /// The requesting thread.
        tid: u32,
    },
}

/// One interval of one track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// The track the span lives on.
    pub track: TrackId,
    /// Interval start (virtual time).
    pub start: SimTime,
    /// Interval end (virtual time, `>= start`).
    pub end: SimTime,
    /// What the interval was spent on.
    pub class: SpanClass,
    /// Attribution payload.
    pub detail: SpanDetail,
}

impl Span {
    /// The span's length in virtual ns.
    pub fn len_ns(&self) -> u64 {
        self.end.as_ns() - self.start.as_ns()
    }
}

/// Why an edge exists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Consecutive spans of one track (same actor, time order).
    Program,
    /// A lock release enabling the next acquire of the same lock.
    LockHandoff {
        /// The lock id.
        lock: u32,
    },
    /// A barrier arrival enabling a release. `last_arrival` marks the edge
    /// from the episode's final arrival — the causally binding one.
    Barrier {
        /// The barrier id.
        barrier: u32,
        /// Whether this edge leaves the episode's last arrival.
        last_arrival: bool,
    },
    /// A request leaving a stalled thread for a service span.
    RpcRequest,
    /// A response returning from a service span to the stalled thread.
    RpcResponse,
    /// A served fetch returning data to the faulting thread.
    FetchServe {
        /// First page of the served range.
        page: u64,
    },
}

impl EdgeKind {
    /// Stable lowercase label used by exporters.
    pub fn label(&self) -> &'static str {
        match self {
            EdgeKind::Program => "program",
            EdgeKind::LockHandoff { .. } => "lock-handoff",
            EdgeKind::Barrier { .. } => "barrier",
            EdgeKind::RpcRequest => "rpc-request",
            EdgeKind::RpcResponse => "rpc-response",
            EdgeKind::FetchServe { .. } => "fetch-serve",
        }
    }
}

/// A causal edge between two spans, stamped at both ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Index of the source span in [`SpanGraph::spans`].
    pub src: usize,
    /// Index of the destination span.
    pub dst: usize,
    /// Virtual time the causal influence leaves the source.
    pub src_at: SimTime,
    /// Virtual time it reaches the destination (`>= src_at`).
    pub dst_at: SimTime,
    /// Why the edge exists.
    pub kind: EdgeKind,
}

/// One thread's measured window, from the run report
/// (`ThreadStats::{epoch_ns, end_ns}`). The span graph needs it because
/// compute spans are *gaps* — only the report knows where a thread's
/// timeline begins and ends.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ThreadWindow {
    /// The thread id (matching `TrackId::Thread`).
    pub tid: u32,
    /// Virtual time the thread's measured interval began.
    pub epoch_ns: u64,
    /// Virtual time the thread's measured interval ended.
    pub end_ns: u64,
}

/// The causal span graph of one run.
#[derive(Clone, Debug, Default)]
pub struct SpanGraph {
    /// All spans, grouped by track in track order, time order within.
    pub spans: Vec<Span>,
    /// All causal edges, each virtual-time monotone.
    pub edges: Vec<Edge>,
    /// Candidate edges dropped for violating time monotonicity (nonzero
    /// only under fault-injection reordering).
    pub skipped_edges: u64,
}

/// Service span length for one stamp-group of server events.
fn server_group_service(events: &[&TraceEvent], costs: &ServiceCosts) -> u64 {
    events
        .iter()
        .map(|e| match &e.kind {
            EventKind::ServeFetch { pages, .. } => {
                costs.fetch_ns(u64::from(*pages) * costs.page_size)
            }
            EventKind::ApplyDiff { bytes, .. } | EventKind::ApplyFine { bytes, .. } => {
                costs.apply_ns(*bytes)
            }
            EventKind::ServeWrite { .. } => costs.apply_ns(costs.page_size),
            _ => 0,
        })
        .sum()
}

/// The wait class a thread-track event closes, if any.
fn wait_class(kind: &EventKind) -> Option<(SpanClass, SpanDetail)> {
    match kind {
        EventKind::Fetch { page, pages, .. } => {
            Some((SpanClass::Fetch, SpanDetail::Page { page: *page, pages: *pages }))
        }
        EventKind::LockAcquire { lock, .. } => Some((SpanClass::LockWait, SpanDetail::Lock(*lock))),
        EventKind::BarrierRelease { barrier, .. } => {
            Some((SpanClass::BarrierWait, SpanDetail::Barrier(*barrier)))
        }
        EventKind::MgrRpc { op, .. } => Some((SpanClass::MgrWait, SpanDetail::Op(op))),
        _ => None,
    }
}

impl SpanGraph {
    /// Build the graph from a recorded trace, the run's per-thread windows,
    /// and the deterministic service-cost model.
    pub fn build(trace: &RunTrace, windows: &[ThreadWindow], costs: &ServiceCosts) -> SpanGraph {
        let _prof = samhita_prof::enter(samhita_prof::Phase::SpanGraph);
        let mut g = SpanGraph::default();
        let window_of: HashMap<u32, ThreadWindow> = windows.iter().map(|w| (w.tid, *w)).collect();

        // ---- Spans -------------------------------------------------------
        // Per-track first/last span indices, for program-order edges and
        // the lookups below.
        let mut track_ranges: Vec<(TrackId, usize, usize)> = Vec::new();
        for (track, events) in &trace.tracks {
            let first = g.spans.len();
            match track {
                TrackId::Thread(tid) => {
                    let w = window_of.get(tid).copied().unwrap_or(ThreadWindow {
                        tid: *tid,
                        epoch_ns: 0,
                        end_ns: events.last().map_or(0, |e| e.at.as_ns()),
                    });
                    g.build_thread_spans(*track, events, &w);
                }
                TrackId::Manager | TrackId::MgrStandby => {
                    for e in events {
                        if let EventKind::MgrServe { op, tid } = e.kind {
                            let start = e.at.as_ns().saturating_sub(costs.mgr_service_ns);
                            g.spans.push(Span {
                                track: *track,
                                start: SimTime::from_ns(start),
                                end: e.at,
                                class: SpanClass::MgrService,
                                detail: SpanDetail::Serve { op, tid },
                            });
                        }
                    }
                }
                TrackId::MemServer(_) => {
                    // Events of one request share a completion stamp; each
                    // stamp-group is one service span.
                    let mut i = 0;
                    while i < events.len() {
                        let mut j = i;
                        while j < events.len() && events[j].at == events[i].at {
                            j += 1;
                        }
                        let group: Vec<&TraceEvent> = events[i..j].iter().collect();
                        let svc = server_group_service(&group, costs);
                        let detail = group
                            .iter()
                            .find_map(|e| match &e.kind {
                                EventKind::ServeFetch { page, pages } => {
                                    Some(SpanDetail::Page { page: *page, pages: *pages })
                                }
                                _ => None,
                            })
                            .unwrap_or(SpanDetail::None);
                        let start = events[i].at.as_ns().saturating_sub(svc);
                        g.spans.push(Span {
                            track: *track,
                            start: SimTime::from_ns(start),
                            end: events[i].at,
                            class: SpanClass::ServerService,
                            detail,
                        });
                        i = j;
                    }
                }
                TrackId::Fabric => {}
            }
            track_ranges.push((*track, first, g.spans.len()));
        }

        // ---- Program-order edges ----------------------------------------
        for &(_, first, last) in &track_ranges {
            for i in first..last.saturating_sub(1) {
                let (a, b) = (g.spans[i], g.spans[i + 1]);
                g.push_edge(i, i + 1, a.end, b.start.max(a.end), EdgeKind::Program);
            }
        }

        // ---- Causal edges ------------------------------------------------
        g.build_lock_edges(trace);
        g.build_barrier_edges(trace);
        g.build_rpc_edges();
        g.build_fetch_edges();
        g
    }

    /// Tile one thread's window `[epoch, end]` with wait spans (from the
    /// trace's `wait_ns` intervals) and compute gaps.
    fn build_thread_spans(&mut self, track: TrackId, events: &[TraceEvent], w: &ThreadWindow) {
        let mut cursor = w.epoch_ns;
        for e in events {
            let Some(wait) = e.kind.wait_ns() else { continue };
            if wait == 0 {
                continue;
            }
            let Some((class, detail)) = wait_class(&e.kind) else { continue };
            let end = e.at.as_ns();
            let start = end.saturating_sub(wait).max(cursor);
            if end <= cursor || start >= end {
                continue; // fully clamped away (overlap or pre-epoch)
            }
            if start > cursor {
                self.spans.push(Span {
                    track,
                    start: SimTime::from_ns(cursor),
                    end: SimTime::from_ns(start),
                    class: SpanClass::Compute,
                    detail: SpanDetail::None,
                });
            }
            self.spans.push(Span {
                track,
                start: SimTime::from_ns(start),
                end: SimTime::from_ns(end),
                class,
                detail,
            });
            cursor = end;
        }
        if cursor < w.end_ns {
            self.spans.push(Span {
                track,
                start: SimTime::from_ns(cursor),
                end: SimTime::from_ns(w.end_ns),
                class: SpanClass::Compute,
                detail: SpanDetail::None,
            });
        }
    }

    fn push_edge(
        &mut self,
        src: usize,
        dst: usize,
        src_at: SimTime,
        dst_at: SimTime,
        kind: EdgeKind,
    ) {
        if src_at <= dst_at {
            self.edges.push(Edge { src, dst, src_at, dst_at, kind });
        } else {
            self.skipped_edges += 1;
        }
    }

    /// The index of the span on `track` covering instant `at` (preferring
    /// the span *ending* at `at` when `at` is a boundary).
    fn span_covering(&self, track: TrackId, at: SimTime) -> Option<usize> {
        // Spans are grouped by track and time-ordered; a linear scan per
        // lookup would be quadratic, so binary-search within the track.
        let lo = self.spans.partition_point(|s| s.track < track);
        let hi = self.spans.partition_point(|s| s.track <= track);
        let spans = &self.spans[lo..hi];
        let idx = spans.partition_point(|s| s.end < at);
        if idx < spans.len() && spans[idx].start <= at {
            Some(lo + idx)
        } else {
            None
        }
    }

    /// Lock-handoff edges: each acquire's grant is enabled by the latest
    /// release of the same lock at or before the grant instant.
    fn build_lock_edges(&mut self, trace: &RunTrace) {
        // All releases per lock, time-sorted: (at, releaser-track).
        let mut releases: HashMap<u32, Vec<(SimTime, TrackId)>> = HashMap::new();
        for (track, events) in &trace.tracks {
            if !matches!(track, TrackId::Thread(_)) {
                continue;
            }
            for e in events {
                if let EventKind::LockRelease { lock } = e.kind {
                    releases.entry(lock).or_default().push((e.at, *track));
                }
            }
        }
        for v in releases.values_mut() {
            v.sort();
        }
        // Each LockWait span is one acquire ending at the grant.
        for i in 0..self.spans.len() {
            let s = self.spans[i];
            let (SpanClass::LockWait, SpanDetail::Lock(lock)) = (s.class, s.detail) else {
                continue;
            };
            let Some(rels) = releases.get(&lock) else { continue };
            let idx = rels.partition_point(|(at, _)| *at <= s.end);
            if idx == 0 {
                continue; // first acquire: no prior release
            }
            let (rel_at, rel_track) = rels[idx - 1];
            if let Some(src) = self.span_covering(rel_track, rel_at) {
                if src != i {
                    self.push_edge(src, i, rel_at, s.end, EdgeKind::LockHandoff { lock });
                }
            }
        }
    }

    /// Barrier edges: per episode, the last arrival causally releases every
    /// waiter — one edge per waiter (O(parties), not O(parties²)), with the
    /// last arrival's own edge flagged.
    fn build_barrier_edges(&mut self, trace: &RunTrace) {
        // Per barrier: arrivals and releases with per-thread occurrence
        // index — the k-th episode of barrier b is the set of each thread's
        // k-th (arrive, release) pair.
        type Episode = (Vec<(SimTime, TrackId)>, Vec<usize>); // (arrivals, waitspans)
        let mut episodes: HashMap<(u32, u64), Episode> = HashMap::new();
        let mut arrive_count: HashMap<(TrackId, u32), u64> = HashMap::new();
        for (track, events) in &trace.tracks {
            if !matches!(track, TrackId::Thread(_)) {
                continue;
            }
            for e in events {
                if let EventKind::BarrierArrive { barrier } = e.kind {
                    let k = arrive_count.entry((*track, barrier)).or_insert(0);
                    episodes.entry((barrier, *k)).or_default().0.push((e.at, *track));
                    *k += 1;
                }
            }
        }
        let mut release_count: HashMap<(TrackId, u32), u64> = HashMap::new();
        for i in 0..self.spans.len() {
            let s = self.spans[i];
            let (SpanClass::BarrierWait, SpanDetail::Barrier(b)) = (s.class, s.detail) else {
                continue;
            };
            let k = release_count.entry((s.track, b)).or_insert(0);
            if let Some(ep) = episodes.get_mut(&(b, *k)) {
                ep.1.push(i);
            }
            *k += 1;
        }
        let mut keys: Vec<(u32, u64)> = episodes.keys().copied().collect();
        keys.sort();
        for key in keys {
            let (arrivals, waits) = episodes[&key].clone();
            let Some(&(last_at, last_track)) = arrivals.iter().max_by_key(|(at, tr)| (*at, *tr))
            else {
                continue;
            };
            let Some(src) = self.span_covering(last_track, last_at) else { continue };
            for dst in waits {
                let flag = self.spans[dst].track == last_track;
                if src == dst {
                    continue;
                }
                self.push_edge(
                    src,
                    dst,
                    last_at,
                    self.spans[dst].end,
                    EdgeKind::Barrier { barrier: key.0, last_arrival: flag },
                );
            }
        }
    }

    /// RPC edges: thread wait spans paired with manager service spans by
    /// `(tid, op)` in time order; request flows wait-start → service-start,
    /// response service-end → wait-end.
    fn build_rpc_edges(&mut self) {
        // Manager spans per (tid, op), time-ordered (spans already are).
        let mut serves: HashMap<(u32, &'static str), Vec<usize>> = HashMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            if let (SpanClass::MgrService, SpanDetail::Serve { op, tid }) = (s.class, s.detail) {
                serves.entry((tid, op)).or_default().push(i);
            }
        }
        let mut next: HashMap<(u32, &'static str), usize> = HashMap::new();
        for i in 0..self.spans.len() {
            let s = self.spans[i];
            let TrackId::Thread(tid) = s.track else { continue };
            let op = match (s.class, s.detail) {
                (SpanClass::MgrWait, SpanDetail::Op(op)) => op,
                (SpanClass::LockWait, _) => "acquire",
                (SpanClass::BarrierWait, _) => "barrier-wait",
                _ => continue,
            };
            let Some(list) = serves.get(&(tid, op)) else { continue };
            let cursor = next.entry((tid, op)).or_insert(0);
            if *cursor >= list.len() {
                continue;
            }
            let serve = list[*cursor];
            *cursor += 1;
            let sv = self.spans[serve];
            self.push_edge(i, serve, s.start, sv.start, EdgeKind::RpcRequest);
            self.push_edge(serve, i, sv.end, s.end, EdgeKind::RpcResponse);
        }
    }

    /// Fetch edges: a thread's fetch stall is served by the server span
    /// whose group fetched the same first page, latest completion at or
    /// before the stall's end.
    fn build_fetch_edges(&mut self) {
        let mut serves: HashMap<u64, Vec<(SimTime, usize)>> = HashMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            if let (SpanClass::ServerService, SpanDetail::Page { page, .. }) = (s.class, s.detail) {
                serves.entry(page).or_default().push((s.end, i));
            }
        }
        for v in serves.values_mut() {
            v.sort();
        }
        for i in 0..self.spans.len() {
            let s = self.spans[i];
            if s.class != SpanClass::Fetch || !matches!(s.track, TrackId::Thread(_)) {
                continue;
            }
            let SpanDetail::Page { page, .. } = s.detail else { continue };
            let Some(list) = serves.get(&page) else { continue };
            let idx = list.partition_point(|(end, _)| *end <= s.end);
            if idx == 0 {
                continue;
            }
            let (_, serve) = list[idx - 1];
            let sv = self.spans[serve];
            self.push_edge(i, serve, s.start, sv.start, EdgeKind::RpcRequest);
            self.push_edge(serve, i, sv.end, s.end, EdgeKind::FetchServe { page });
        }
    }

    /// Total spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the graph holds no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Verify every edge is virtual-time monotone (`src_at <= dst_at`,
    /// both stamps within their span's interval is not required — a
    /// handoff can leave mid-span). Returns the first violation.
    pub fn check_monotone(&self) -> Result<(), String> {
        for (i, e) in self.edges.iter().enumerate() {
            if e.src_at > e.dst_at {
                return Err(format!(
                    "edge {i} ({:?}) goes backwards: {} > {}",
                    e.kind,
                    e.src_at.as_ns(),
                    e.dst_at.as_ns()
                ));
            }
        }
        Ok(())
    }

    /// Acyclicity of the *temporal* causality graph. Edges connect stamped
    /// instants, and a span may legitimately both cause and be caused by
    /// another at different instants (an RPC wait span sends a request to
    /// the service span and later receives its response), so whole-span
    /// cycles are expected. A genuine causal cycle would need every edge
    /// stamp around the loop equal (edges are monotone, `src_at <=
    /// dst_at`), so it suffices to run Kahn's algorithm over the
    /// **zero-delay** subgraph; combined with [`SpanGraph::check_monotone`]
    /// this proves the instant-level graph is a DAG.
    pub fn is_acyclic(&self) -> bool {
        let n = self.spans.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            if e.src_at != e.dst_at {
                continue;
            }
            if e.src == e.dst {
                return false;
            }
            out[e.src].push(e.dst);
            indeg[e.dst] += 1;
        }
        let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(i) = queue.pop() {
            seen += 1;
            for &j in &out[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    queue.push(j);
                }
            }
        }
        seen == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use samhita_scl::SimTime;

    fn costs() -> ServiceCosts {
        ServiceCosts {
            mgr_service_ns: 300,
            fetch_base_ns: 400,
            apply_base_ns: 150,
            per_kib_ns: 100,
            page_size: 1024,
        }
    }

    fn ev(at_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_ns(at_ns), kind }
    }

    /// Two threads contend a lock; the graph must tile both windows and
    /// produce a handoff edge from t0's release to t1's acquire.
    #[test]
    fn lock_handoff_edge_and_tiling() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(1_000, EventKind::LockAcquire { lock: 0, wait_ns: 200 }),
                    ev(2_000, EventKind::LockRelease { lock: 0 }),
                ],
            ),
            (
                TrackId::Thread(1),
                vec![ev(2_500, EventKind::LockAcquire { lock: 0, wait_ns: 1_500 })],
            ),
        ]);
        let windows = [
            ThreadWindow { tid: 0, epoch_ns: 0, end_ns: 3_000 },
            ThreadWindow { tid: 1, epoch_ns: 0, end_ns: 3_000 },
        ];
        let g = SpanGraph::build(&trace, &windows, &costs());
        // Thread 0: compute [0,800], lock-wait [800,1000], compute [1000,3000].
        // Thread 1: lock-wait [1000,2500], compute [2500,3000].
        for w in &windows {
            let total: u64 = g
                .spans
                .iter()
                .filter(|s| s.track == TrackId::Thread(w.tid))
                .map(Span::len_ns)
                .sum();
            assert_eq!(total, w.end_ns - w.epoch_ns, "tid {} not tiled", w.tid);
        }
        let handoff: Vec<&Edge> = g
            .edges
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::LockHandoff { lock: 0 }))
            .collect();
        assert_eq!(handoff.len(), 1);
        let e = handoff[0];
        assert_eq!(g.spans[e.src].track, TrackId::Thread(0));
        assert_eq!(g.spans[e.dst].track, TrackId::Thread(1));
        assert_eq!(e.src_at.as_ns(), 2_000);
        assert_eq!(e.dst_at.as_ns(), 2_500);
        assert!(g.is_acyclic());
        g.check_monotone().unwrap();
    }

    /// A barrier episode links the last arrival to every waiter, flagging
    /// its own edge.
    #[test]
    fn barrier_edges_leave_last_arrival() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(1_000, EventKind::BarrierArrive { barrier: 0 }),
                    ev(3_000, EventKind::BarrierRelease { barrier: 0, wait_ns: 2_000 }),
                ],
            ),
            (
                TrackId::Thread(1),
                vec![
                    ev(2_500, EventKind::BarrierArrive { barrier: 0 }),
                    ev(3_000, EventKind::BarrierRelease { barrier: 0, wait_ns: 500 }),
                ],
            ),
        ]);
        let windows = [
            ThreadWindow { tid: 0, epoch_ns: 0, end_ns: 3_500 },
            ThreadWindow { tid: 1, epoch_ns: 0, end_ns: 3_500 },
        ];
        let g = SpanGraph::build(&trace, &windows, &costs());
        let barrier: Vec<&Edge> =
            g.edges.iter().filter(|e| matches!(e.kind, EdgeKind::Barrier { .. })).collect();
        assert_eq!(barrier.len(), 2, "one edge per waiter");
        for e in &barrier {
            assert_eq!(g.spans[e.src].track, TrackId::Thread(1), "last arrival is tid 1");
            assert_eq!(e.src_at.as_ns(), 2_500);
        }
        let flagged = barrier
            .iter()
            .filter(|e| matches!(e.kind, EdgeKind::Barrier { last_arrival: true, .. }))
            .count();
        assert_eq!(flagged, 1);
        assert!(g.is_acyclic());
    }

    /// An RPC pairs the thread's stall with the manager's service span in
    /// both directions; a fetch pairs with the serving server span.
    #[test]
    fn rpc_and_fetch_edges_bind_to_service_spans() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(
                        2_000,
                        EventKind::Fetch {
                            page: 7,
                            pages: 1,
                            kind: crate::event::FetchKind::Demand,
                            wait_ns: 1_200,
                        },
                    ),
                    ev(3_000, EventKind::MgrRpc { op: "alloc-shared", wait_ns: 600 }),
                ],
            ),
            (TrackId::Manager, vec![ev(2_800, EventKind::MgrServe { op: "alloc-shared", tid: 0 })]),
            (TrackId::MemServer(0), vec![ev(1_700, EventKind::ServeFetch { page: 7, pages: 1 })]),
        ]);
        let windows = [ThreadWindow { tid: 0, epoch_ns: 0, end_ns: 3_200 }];
        let g = SpanGraph::build(&trace, &windows, &costs());
        assert_eq!(g.skipped_edges, 0);
        let kinds: Vec<&'static str> = g.edges.iter().map(|e| e.kind.label()).collect();
        assert!(kinds.contains(&"rpc-request"));
        assert!(kinds.contains(&"rpc-response"));
        assert!(kinds.contains(&"fetch-serve"));
        // The mgr service span is [2500, 2800] (300 ns service).
        let mgr = g.spans.iter().find(|s| s.class == SpanClass::MgrService).unwrap();
        assert_eq!((mgr.start.as_ns(), mgr.end.as_ns()), (2_500, 2_800));
        // The server span is [1200, 1700]: 400 + 1024*100/1024 = 500 ns.
        let srv = g.spans.iter().find(|s| s.class == SpanClass::ServerService).unwrap();
        assert_eq!((srv.start.as_ns(), srv.end.as_ns()), (1_200, 1_700));
        assert!(g.is_acyclic());
        g.check_monotone().unwrap();
    }
}
