//! A minimal value-producing JSON parser.
//!
//! No JSON library is available offline (the vendored `serde` is a no-op
//! shim), so everything machine-readable in this workspace is emitted by
//! hand and read back through this parser. It is the counterpart of
//! [`crate::export::validate_json`]: where the validator only vouches for
//! well-formedness, this module builds a [`JsonValue`] tree so reports can
//! be compared field by field (the `bench-diff` regression gate, histogram
//! round-trips).
//!
//! Scope is deliberately narrow — exactly the JSON this workspace writes:
//! objects, arrays, strings without exotic escapes (`\"` and `\\` are
//! enough; `\uXXXX` is preserved verbatim), numbers, booleans, null.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, held as `f64` (integers up to 2^53 are exact,
    /// far beyond any counter this workspace serializes into reports).
    Number(f64),
    /// A string (escape sequences beyond `\"` and `\\` kept verbatim).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys sorted, duplicates keep the last value.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Parse a complete JSON document.
    pub fn parse(input: &str) -> Result<JsonValue, String> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let v = value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Member lookup on an object; `None` for other kinds or missing keys.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escape a string for embedding in hand-written JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos).map(JsonValue::String),
        Some(b't') => literal(b, pos, "true").map(|_| JsonValue::Bool(true)),
        Some(b'f') => literal(b, pos, "false").map(|_| JsonValue::Bool(false)),
        Some(b'n') => literal(b, pos, "null").map(|_| JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("malformed literal at offset {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut members = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(b, pos);
        let key = string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        let val = value(b, pos)?;
        members.insert(key, val);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at offset {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut elems = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(elems));
    }
    loop {
        skip_ws(b, pos);
        elems.push(value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(elems));
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at offset {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => match b.get(*pos + 1) {
                Some(b'"') => {
                    out.push('"');
                    *pos += 2;
                }
                Some(b'\\') => {
                    out.push('\\');
                    *pos += 2;
                }
                Some(b'n') => {
                    out.push('\n');
                    *pos += 2;
                }
                Some(b'r') => {
                    out.push('\r');
                    *pos += 2;
                }
                Some(b't') => {
                    out.push('\t');
                    *pos += 2;
                }
                Some(&e) => {
                    // Preserve unhandled escapes (e.g. \uXXXX) verbatim.
                    out.push('\\');
                    out.push(e as char);
                    *pos += 2;
                }
                None => return Err("dangling escape".to_string()),
            },
            _ => {
                // Copy the whole UTF-8 sequence starting here.
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?);
            }
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if *pos == start || (*pos == start + 1 && b[start] == b'-') {
        return Err(format!("malformed number at offset {start}"));
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|e| format!("number {text:?} at offset {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" false ").unwrap(), JsonValue::Bool(false));
        assert_eq!(JsonValue::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(JsonValue::parse("-3.5e-2").unwrap().as_f64(), Some(-0.035));
        assert_eq!(JsonValue::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = JsonValue::parse(r#"{"a":[1,2,{"b":-3}],"c":null,"d":{"e":"f"}}"#).unwrap();
        let arr = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].get("b").and_then(JsonValue::as_f64), Some(-3.0));
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
        assert_eq!(v.get("d").and_then(|d| d.get("e")).and_then(JsonValue::as_str), Some("f"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{\"a\":1,}").is_err());
        assert!(JsonValue::parse("[1, 2").is_err());
        assert!(JsonValue::parse("{} extra").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn escape_round_trips() {
        let raw = "a \"quoted\"\tline\nwith \\ backslash";
        let doc = format!("\"{}\"", escape(raw));
        crate::export::validate_json(&doc).unwrap();
        assert_eq!(JsonValue::parse(&doc).unwrap().as_str(), Some(raw));
    }

    #[test]
    fn as_u64_rejects_fractional_and_negative() {
        assert_eq!(JsonValue::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("-1").unwrap().as_u64(), None);
        assert_eq!(JsonValue::parse("0").unwrap().as_u64(), Some(0));
    }
}
