//! Trace exporters: JSONL and Chrome trace-event JSON.
//!
//! No JSON library is available offline, so both exporters emit JSON by
//! hand. The vocabulary keeps it safe: every string written is either a
//! static identifier from the event vocabulary or a track label, none of
//! which contain characters needing escapes. A minimal [`validate_json`]
//! parser backs the tests (and the `trace-dump` tool) to guarantee the
//! output is well-formed anyway.
//!
//! The Chrome format targets Perfetto / `chrome://tracing`: one track per
//! compute thread plus manager / memory-server / fabric tracks, named via
//! `"M"` metadata records. Events that close a stall interval (fetch waits,
//! lock waits, barrier waits, manager RPCs) are rendered as `"X"` complete
//! spans covering the wait; everything else is an `"i"` instant.

use crate::event::{EventKind, TraceEvent};
use crate::metrics::ServiceCosts;
use crate::span::{EdgeKind, SpanClass, SpanDetail, SpanGraph, ThreadWindow};
use crate::tracer::RunTrace;

/// (key, already-valid-JSON-value) argument pairs for one event.
fn args_of(kind: &EventKind) -> Vec<(&'static str, String)> {
    fn s(v: &str) -> String {
        format!("\"{v}\"")
    }
    match kind {
        EventKind::Fetch { page, pages, kind, wait_ns } => vec![
            ("page", page.to_string()),
            ("pages", pages.to_string()),
            ("kind", s(kind.label())),
            ("wait_ns", wait_ns.to_string()),
        ],
        EventKind::PrefetchIssue { page, pages } => {
            vec![("page", page.to_string()), ("pages", pages.to_string())]
        }
        EventKind::TwinCreate { page } => vec![("page", page.to_string())],
        EventKind::DiffFlush { page, bytes } | EventKind::FineFlush { page, bytes } => {
            vec![("page", page.to_string()), ("bytes", bytes.to_string())]
        }
        EventKind::Invalidate { page, writer } => {
            vec![("page", page.to_string()), ("writer", writer.to_string())]
        }
        EventKind::Evict { line, dirty_pages } => {
            vec![("line", line.to_string()), ("dirty_pages", dirty_pages.to_string())]
        }
        EventKind::LockRequest { lock } | EventKind::LockRelease { lock } => {
            vec![("lock", lock.to_string())]
        }
        EventKind::LockAcquire { lock, wait_ns } => {
            vec![("lock", lock.to_string()), ("wait_ns", wait_ns.to_string())]
        }
        EventKind::BarrierArrive { barrier } => vec![("barrier", barrier.to_string())],
        EventKind::BarrierRelease { barrier, wait_ns } => {
            vec![("barrier", barrier.to_string()), ("wait_ns", wait_ns.to_string())]
        }
        EventKind::MgrRpc { op, wait_ns } => {
            vec![("op", s(op)), ("wait_ns", wait_ns.to_string())]
        }
        EventKind::MgrServe { op, tid } => {
            vec![("op", s(op)), ("tid", tid.to_string())]
        }
        EventKind::ApplyDiff { page, bytes } | EventKind::ApplyFine { page, bytes } => {
            vec![("page", page.to_string()), ("bytes", bytes.to_string())]
        }
        EventKind::ServeFetch { page, pages } => {
            vec![("page", page.to_string()), ("pages", pages.to_string())]
        }
        EventKind::ServeWrite { page } => vec![("page", page.to_string())],
        EventKind::FabricSend { src, dst, class, bytes } => vec![
            ("src", src.to_string()),
            ("dst", dst.to_string()),
            ("class", s(class.label())),
            ("bytes", bytes.to_string()),
        ],
        EventKind::FaultInjected { src, dst, kind } => {
            vec![("src", src.to_string()), ("dst", dst.to_string()), ("kind", s(kind))]
        }
        EventKind::Retry { op, attempt } => {
            vec![("op", s(op)), ("attempt", attempt.to_string())]
        }
        EventKind::Failover { from, to } => {
            vec![("from", from.to_string()), ("to", to.to_string())]
        }
        EventKind::BatchFlush { server, parts, bytes } => vec![
            ("server", server.to_string()),
            ("parts", parts.to_string()),
            ("bytes", bytes.to_string()),
        ],
        EventKind::MgrFailover { op } => vec![("op", s(op))],
        EventKind::LeaseReclaim { lock, holder } => {
            vec![("lock", lock.to_string()), ("holder", holder.to_string())]
        }
    }
}

/// Coarse category for the Chrome `cat` field, so Perfetto can filter.
fn category(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::Fetch { .. }
        | EventKind::PrefetchIssue { .. }
        | EventKind::Evict { .. }
        | EventKind::ServeFetch { .. }
        | EventKind::ServeWrite { .. } => "mem",
        EventKind::TwinCreate { .. }
        | EventKind::DiffFlush { .. }
        | EventKind::FineFlush { .. }
        | EventKind::Invalidate { .. }
        | EventKind::ApplyDiff { .. }
        | EventKind::ApplyFine { .. }
        | EventKind::BatchFlush { .. } => "regc",
        EventKind::LockRequest { .. }
        | EventKind::LockAcquire { .. }
        | EventKind::LockRelease { .. }
        | EventKind::BarrierArrive { .. }
        | EventKind::BarrierRelease { .. } => "sync",
        EventKind::MgrRpc { .. } | EventKind::MgrServe { .. } => "mgr",
        EventKind::FabricSend { .. } => "fabric",
        EventKind::FaultInjected { .. }
        | EventKind::Retry { .. }
        | EventKind::Failover { .. }
        | EventKind::MgrFailover { .. }
        | EventKind::LeaseReclaim { .. } => "fault",
    }
}

fn args_json(kind: &EventKind) -> String {
    let body: Vec<String> =
        args_of(kind).into_iter().map(|(k, v)| format!("\"{k}\":{v}")).collect();
    format!("{{{}}}", body.join(","))
}

impl RunTrace {
    /// Export as JSON Lines: one event per line, tracks in order, each line
    /// a flat object `{"track": …, "at_ns": …, "event": …, <args>}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (track, events) in &self.tracks {
            for TraceEvent { at, kind } in events {
                out.push_str(&format!(
                    "{{\"track\":\"{}\",\"at_ns\":{},\"event\":\"{}\"",
                    track.label(),
                    at.as_ns(),
                    kind.name()
                ));
                for (k, v) in args_of(kind) {
                    out.push_str(&format!(",\"{k}\":{v}"));
                }
                out.push_str("}\n");
            }
        }
        out
    }

    /// Export as Chrome trace-event JSON (the "JSON object format"), which
    /// opens directly in Perfetto and `chrome://tracing`.
    pub fn to_chrome_json(&self) -> String {
        let mut records: Vec<String> = Vec::with_capacity(self.len() + self.tracks.len() + 1);
        records.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"samhita\"}}"
                .to_string(),
        );
        for (track, _) in &self.tracks {
            records.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.chrome_tid(),
                track.label()
            ));
        }
        for (track, events) in &self.tracks {
            let tid = track.chrome_tid();
            for TraceEvent { at, kind } in events {
                let args = args_json(kind);
                let cat = category(kind);
                let name = kind.name();
                let rec = match kind.wait_ns() {
                    // A stall interval: render as a complete span ending at
                    // the stamp. ts is in microseconds (fractional ok).
                    Some(wait_ns) => {
                        let start_ns = at.as_ns().saturating_sub(wait_ns);
                        format!(
                            "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"X\",\
                             \"pid\":0,\"tid\":{tid},\"ts\":{:.3},\"dur\":{:.3},\
                             \"args\":{args}}}",
                            start_ns as f64 / 1000.0,
                            wait_ns as f64 / 1000.0
                        )
                    }
                    None => format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\
                         \"pid\":0,\"tid\":{tid},\"ts\":{:.3},\"s\":\"t\",\
                         \"args\":{args}}}",
                        at.as_ns() as f64 / 1000.0
                    ),
                };
                records.push(rec);
            }
        }
        format!("{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n", records.join(",\n"))
    }

    /// Export as Chrome trace-event JSON **with causality**: the span graph
    /// is built from the trace (plus the run's thread windows and service
    /// costs), thread tracks are fully tiled with `"X"` slices (compute and
    /// wait spans), manager/server service spans land as `"X"` slices on
    /// *their own* tracks — not the requester's — and every causal edge
    /// (lock handoffs, barrier releases, RPC request/response pairs, fetch
    /// serves) becomes a Perfetto flow arrow (`"ph":"s"` / `"ph":"f"`,
    /// `id` = edge index). Non-wait events remain `"i"` instants.
    ///
    /// [`RunTrace::to_jsonl`] (the checksum basis) is untouched by this
    /// richer export.
    pub fn to_chrome_json_with(&self, windows: &[ThreadWindow], costs: &ServiceCosts) -> String {
        let graph = SpanGraph::build(self, windows, costs);
        let mut records: Vec<String> =
            Vec::with_capacity(graph.spans.len() + 2 * graph.edges.len() + self.len());
        records.push(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{\"name\":\"samhita\"}}"
                .to_string(),
        );
        for (track, _) in &self.tracks {
            records.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{},\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.chrome_tid(),
                track.label()
            ));
        }
        for span in &graph.spans {
            let args = match span.detail {
                SpanDetail::None => String::new(),
                SpanDetail::Page { page, pages } => format!("\"page\":{page},\"pages\":{pages}"),
                SpanDetail::Lock(lock) => format!("\"lock\":{lock}"),
                SpanDetail::Barrier(b) => format!("\"barrier\":{b}"),
                SpanDetail::Op(op) => format!("\"op\":\"{op}\""),
                SpanDetail::Serve { op, tid } => format!("\"op\":\"{op}\",\"tid\":{tid}"),
            };
            let cat = match span.class {
                SpanClass::MgrService => "mgr",
                SpanClass::ServerService => "mem",
                _ => "thread",
            };
            records.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{cat}\",\"ph\":\"X\",\"pid\":0,\
                 \"tid\":{},\"ts\":{:.3},\"dur\":{:.3},\"args\":{{{args}}}}}",
                span.class.label(),
                span.track.chrome_tid(),
                span.start.as_ns() as f64 / 1000.0,
                (span.end.as_ns() - span.start.as_ns()) as f64 / 1000.0
            ));
        }
        for (id, e) in graph.edges.iter().enumerate() {
            if matches!(e.kind, EdgeKind::Program) {
                continue; // implicit in track layout
            }
            let name = e.kind.label();
            let src_tid = graph.spans[e.src].track.chrome_tid();
            let dst_tid = graph.spans[e.dst].track.chrome_tid();
            records.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":{id},\
                 \"pid\":0,\"tid\":{src_tid},\"ts\":{:.3}}}",
                e.src_at.as_ns() as f64 / 1000.0
            ));
            records.push(format!(
                "{{\"name\":\"{name}\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\
                 \"id\":{id},\"pid\":0,\"tid\":{dst_tid},\"ts\":{:.3}}}",
                e.dst_at.as_ns() as f64 / 1000.0
            ));
        }
        // Non-wait events stay as instants; wait-closing events are already
        // rendered as graph wait spans with identical geometry.
        for (track, events) in &self.tracks {
            let tid = track.chrome_tid();
            for TraceEvent { at, kind } in events {
                if matches!(kind.wait_ns(), Some(w) if w > 0) {
                    continue;
                }
                records.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"i\",\"pid\":0,\
                     \"tid\":{tid},\"ts\":{:.3},\"s\":\"t\",\"args\":{}}}",
                    kind.name(),
                    category(kind),
                    at.as_ns() as f64 / 1000.0,
                    args_json(kind)
                ));
            }
        }
        format!("{{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n{}\n]}}\n", records.join(",\n"))
    }
}

/// Minimal recursive-descent JSON well-formedness check. Exists because no
/// JSON library is available offline; used by the tests and the
/// `trace-dump` tool to vouch for the hand-rolled exporters.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing bytes at offset {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        other => Err(format!("unexpected {other:?} at offset {pos}")),
    }
}

fn literal(b: &[u8], pos: &mut usize, word: &str) -> Result<(), String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(())
    } else {
        Err(format!("malformed literal at offset {pos}"))
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at offset {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or '}}', got {other:?} at offset {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            other => return Err(format!("expected ',' or ']', got {other:?} at offset {pos}")),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected '\"' at offset {pos}"));
    }
    *pos += 1;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".to_string())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
        *pos += 1;
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e') | Some(b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+') | Some(b'-')) {
            *pos += 1;
        }
        while matches!(b.get(*pos), Some(c) if c.is_ascii_digit()) {
            *pos += 1;
        }
    }
    if *pos == start || (*pos == start + 1 && b[start] == b'-') {
        return Err(format!("malformed number at offset {start}"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{FetchKind, TrackId};
    use samhita_scl::{MsgClass, SimTime};

    fn sample_trace() -> RunTrace {
        let ns = SimTime::from_ns;
        RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    TraceEvent {
                        at: ns(1_000),
                        kind: EventKind::Fetch {
                            page: 7,
                            pages: 4,
                            kind: FetchKind::Demand,
                            wait_ns: 800,
                        },
                    },
                    TraceEvent { at: ns(2_000), kind: EventKind::TwinCreate { page: 7 } },
                    TraceEvent {
                        at: ns(3_000),
                        kind: EventKind::DiffFlush { page: 7, bytes: 128 },
                    },
                    TraceEvent {
                        at: ns(4_000),
                        kind: EventKind::LockAcquire { lock: 0, wait_ns: 500 },
                    },
                ],
            ),
            (
                TrackId::MemServer(0),
                vec![TraceEvent {
                    at: ns(3_500),
                    kind: EventKind::ApplyDiff { page: 7, bytes: 128 },
                }],
            ),
            (
                TrackId::Fabric,
                vec![TraceEvent {
                    at: ns(900),
                    kind: EventKind::FabricSend {
                        src: 0,
                        dst: 9,
                        class: MsgClass::Data,
                        bytes: 64,
                    },
                }],
            ),
        ])
    }

    #[test]
    fn jsonl_lines_are_individually_valid() {
        let out = sample_trace().to_jsonl();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 6);
        for line in lines {
            validate_json(line).unwrap_or_else(|e| panic!("invalid line {line}: {e}"));
        }
        assert!(out.contains("\"event\":\"twin-create\""));
        assert!(out.contains("\"track\":\"mem server 0\""));
        assert!(out.contains("\"class\":\"data\""));
    }

    #[test]
    fn chrome_export_is_valid_json_with_named_tracks() {
        let out = sample_trace().to_chrome_json();
        validate_json(&out).expect("valid chrome json");
        assert!(out.contains("\"traceEvents\""));
        assert!(out.contains("\"process_name\""));
        assert!(out.contains("\"name\":\"thread 0\""));
        assert!(out.contains("\"name\":\"mem server 0\""));
        assert!(out.contains("\"name\":\"fabric\""));
        // The fetch wait renders as a complete span: ts = (1000-800)/1000 µs.
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ts\":0.200"));
        assert!(out.contains("\"dur\":0.800"));
        // Instants carry a scope.
        assert!(out.contains("\"ph\":\"i\""));
    }

    #[test]
    fn chrome_export_with_flows_binds_services_to_their_tracks() {
        let ns = SimTime::from_ns;
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    TraceEvent {
                        at: ns(2_000),
                        kind: EventKind::LockAcquire { lock: 0, wait_ns: 500 },
                    },
                    TraceEvent { at: ns(3_000), kind: EventKind::LockRelease { lock: 0 } },
                ],
            ),
            (
                TrackId::Thread(1),
                vec![TraceEvent {
                    at: ns(3_400),
                    kind: EventKind::LockAcquire { lock: 0, wait_ns: 1_000 },
                }],
            ),
            (
                TrackId::Manager,
                vec![TraceEvent {
                    at: ns(1_900),
                    kind: EventKind::MgrServe { op: "acquire", tid: 0 },
                }],
            ),
        ]);
        let windows = [
            ThreadWindow { tid: 0, epoch_ns: 0, end_ns: 4_000 },
            ThreadWindow { tid: 1, epoch_ns: 0, end_ns: 4_000 },
        ];
        let costs = ServiceCosts {
            mgr_service_ns: 300,
            fetch_base_ns: 400,
            apply_base_ns: 150,
            per_kib_ns: 100,
            page_size: 1024,
        };
        let out = trace.to_chrome_json_with(&windows, &costs);
        validate_json(&out).expect("valid chrome json");
        // Flow arrows come in begin/end pairs with matching ids.
        assert!(out.contains("\"ph\":\"s\""));
        assert!(out.contains("\"ph\":\"f\""));
        assert!(out.contains("\"name\":\"lock-handoff\""));
        // The manager service span renders on the manager's track (tid
        // 1000), not the requester's: [1600, 1900] -> ts 1.600 dur 0.300.
        assert!(out.contains(
            "\"name\":\"mgr-service\",\"cat\":\"mgr\",\"ph\":\"X\",\"pid\":0,\
             \"tid\":1000,\"ts\":1.600,\"dur\":0.300"
        ));
        // Thread tracks are tiled: compute slices exist.
        assert!(out.contains("\"name\":\"compute\""));
        // The plain export is untouched by the richer one.
        assert_eq!(trace.to_chrome_json(), trace.to_chrome_json());
    }

    #[test]
    fn validator_rejects_malformed_json() {
        assert!(validate_json("{\"a\":1,}").is_err());
        assert!(validate_json("{\"a\" 1}").is_err());
        assert!(validate_json("[1, 2").is_err());
        assert!(validate_json("{} extra").is_err());
        assert!(validate_json("\"unterminated").is_err());
        assert!(validate_json("{\"a\":[1,2,{\"b\":-3.5e-2}],\"c\":null}").is_ok());
    }
}
