//! Virtual-time critical-path extraction.
//!
//! The critical path of a run is the chain of causally-dependent intervals
//! whose lengths sum to the makespan: shorten anything *on* the path and
//! the run gets faster; shorten anything off it and nothing changes. This
//! module extracts the path from a recorded [`RunTrace`] by a **backward
//! zig-zag walk**: start at the end of the makespan-defining thread and
//! repeatedly ask "why was this thread busy at instant `t`?" —
//!
//! * inside a **fetch stall**, the blocker is the serving memory server:
//!   the tail `[done − service, done]` of the serve is server service time,
//!   the contiguous chain of abutting serves before it is **queue wait**,
//!   the remainder is wire/fetch time; the walk resumes at the stall start;
//! * inside a **lock stall**, the blocker is the previous holder: the walk
//!   jumps to the releasing thread at the release instant (the manager's
//!   serve tail and its queue chain are carved out first);
//! * inside a **barrier stall**, the blocker is the episode's **last
//!   arrival**: the walk jumps to that thread at its arrival instant;
//! * inside a **manager RPC stall**, the manager's serve tail and queue
//!   chain are carved out and the walk resumes at the stall start;
//! * everywhere else the thread was **computing** and the walk steps back
//!   to the previous stall.
//!
//! Every instant of `[epoch, end]` of the makespan thread's window is
//! attributed to exactly one class, so the class totals sum to the
//! makespan **exactly** — asserted by construction, tested at P∈{1,8,64}.
//! In bypass (local-sync) runs there are no manager serve events, so lock
//! and barrier stalls stay whole — the decomposition degrades gracefully.
//!
//! Extraction is post-hoc and purely observational: it can never perturb
//! a virtual clock, and its output is deterministic byte-for-byte.

use std::collections::HashMap;

use crate::event::{EventKind, TrackId};
use crate::metrics::ServiceCosts;
use crate::span::ThreadWindow;
use crate::tracer::RunTrace;

/// Critical-path time classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PathClass {
    /// Thread-local work (includes flush assembly).
    Compute,
    /// Fetch wire time (request/response in flight).
    Fetch,
    /// Waiting for a lock holder.
    LockWait,
    /// Waiting for barrier stragglers.
    BarrierWait,
    /// Manager RPC wire time.
    MgrWait,
    /// The manager serving the blocking request.
    MgrService,
    /// A memory server serving the blocking request.
    ServerService,
    /// The blocking request queued behind other requests at a service.
    QueueWait,
}

impl PathClass {
    /// Stable lowercase label, also the JSON key.
    pub fn label(&self) -> &'static str {
        match self {
            PathClass::Compute => "compute",
            PathClass::Fetch => "fetch",
            PathClass::LockWait => "lock-wait",
            PathClass::BarrierWait => "barrier-wait",
            PathClass::MgrWait => "mgr-wait",
            PathClass::MgrService => "mgr-service",
            PathClass::ServerService => "server-service",
            PathClass::QueueWait => "queue-wait",
        }
    }

    /// All classes, in report order.
    pub const ALL: [PathClass; 8] = [
        PathClass::Compute,
        PathClass::Fetch,
        PathClass::LockWait,
        PathClass::BarrierWait,
        PathClass::MgrWait,
        PathClass::MgrService,
        PathClass::ServerService,
        PathClass::QueueWait,
    ];
}

/// One attributed interval of the critical path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSegment {
    /// The thread whose timeline the walk was on.
    pub tid: u32,
    /// The attributed class.
    pub class: PathClass,
    /// Interval start, virtual ns.
    pub start_ns: u64,
    /// Interval end, virtual ns (`> start_ns`).
    pub end_ns: u64,
    /// Attribution: the page / lock / barrier / op the interval hung on
    /// (empty for compute).
    pub detail: String,
}

impl PathSegment {
    /// Segment length in virtual ns.
    pub fn len_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// The extracted critical path of one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CriticalPathReport {
    /// The makespan the walk covered, in virtual ns.
    pub makespan_ns: u64,
    /// The thread defining the makespan (where the walk started).
    pub tid: u32,
    /// Per-class totals, indexed like [`PathClass::ALL`]; they sum to
    /// `makespan_ns` exactly.
    pub class_ns: [u64; 8],
    /// The full path in time order (earliest first).
    pub segments: Vec<PathSegment>,
}

impl CriticalPathReport {
    /// Total attributed time — equals `makespan_ns` by construction.
    pub fn total_ns(&self) -> u64 {
        self.class_ns.iter().sum()
    }

    /// One class's total.
    pub fn class_total(&self, class: PathClass) -> u64 {
        self.class_ns[PathClass::ALL.iter().position(|c| *c == class).expect("ALL covers")]
    }

    /// The `k` longest segments, longest first (ties: earlier start, then
    /// lower tid — fully deterministic).
    pub fn top_segments(&self, k: usize) -> Vec<&PathSegment> {
        let mut v: Vec<&PathSegment> = self.segments.iter().collect();
        v.sort_by(|a, b| {
            b.len_ns().cmp(&a.len_ns()).then(a.start_ns.cmp(&b.start_ns)).then(a.tid.cmp(&b.tid))
        });
        v.truncate(k);
        v
    }

    /// Deterministic JSON: class totals plus the top-`k` segments.
    pub fn to_json(&self, k: usize) -> String {
        let mut out = format!(
            "{{\"makespan_ns\":{},\"total_ns\":{},\"tid\":{},\"classes\":{{",
            self.makespan_ns,
            self.total_ns(),
            self.tid
        );
        for (i, class) in PathClass::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", class.label(), self.class_ns[i]));
        }
        out.push_str(&format!("}},\"n_segments\":{},\"top_segments\":[", self.segments.len()));
        for (i, s) in self.top_segments(k).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"tid\":{},\"class\":\"{}\",\"start_ns\":{},\"end_ns\":{},\"detail\":\"{}\"}}",
                s.tid,
                s.class.label(),
                s.start_ns,
                s.end_ns,
                s.detail
            ));
        }
        out.push_str("]}");
        out
    }

    /// Compact human-readable composition line.
    pub fn summary(&self) -> String {
        let mut out = format!("critical path {}ns:", self.makespan_ns);
        for (i, class) in PathClass::ALL.iter().enumerate() {
            let ns = self.class_ns[i];
            if ns == 0 {
                continue;
            }
            let pct = if self.makespan_ns > 0 {
                ns as f64 * 100.0 / self.makespan_ns as f64
            } else {
                0.0
            };
            out.push_str(&format!(" {} {:.1}%", class.label(), pct));
        }
        out
    }
}

/// A stall interval of one thread, from the trace.
#[derive(Clone, Copy, Debug)]
struct WaitIv {
    start: u64,
    end: u64,
    kind: WaitKind,
}

#[derive(Clone, Copy, Debug)]
enum WaitKind {
    Fetch { page: u64 },
    Lock { lock: u32 },
    Barrier { barrier: u32 },
    Mgr { op: &'static str },
}

/// One reconstructed service interval (manager or server):
/// `[start, done]`, with `chain_lo` the start of the maximal chain of
/// abutting serves ending at this one — the queue region a request served
/// at `done` waited through is `[chain_lo, start]`.
#[derive(Clone, Copy, Debug)]
struct Serve {
    start: u64,
    done: u64,
    chain_lo: u64,
}

/// Pre-indexed trace data the walk queries.
struct Index {
    /// tid → disjoint stall intervals, time-ordered.
    waits: HashMap<u32, Vec<WaitIv>>,
    /// lock → (release instant, releasing tid), time-ordered.
    releases: HashMap<u32, Vec<(u64, u32)>>,
    /// barrier → (arrival instant, arriving tid), time-ordered.
    arrivals: HashMap<u32, Vec<(u64, u32)>>,
    /// Manager serves, time-ordered by completion.
    mgr: Vec<Serve>,
    /// (tid, op) → indices into `mgr`, time-ordered.
    mgr_by: HashMap<(u32, &'static str), Vec<usize>>,
    /// Per-server serves, time-ordered by completion.
    servers: Vec<Vec<Serve>>,
    /// page → (done, server, index into that server's serves).
    fetch_by_page: HashMap<u64, Vec<(u64, usize, usize)>>,
}

fn chain(serves: &mut [Serve]) {
    for i in 0..serves.len() {
        serves[i].chain_lo = if i > 0 && serves[i - 1].done == serves[i].start {
            serves[i - 1].chain_lo
        } else {
            serves[i].start
        };
    }
}

impl Index {
    fn build(trace: &RunTrace, costs: &ServiceCosts) -> Index {
        let mut ix = Index {
            waits: HashMap::new(),
            releases: HashMap::new(),
            arrivals: HashMap::new(),
            mgr: Vec::new(),
            mgr_by: HashMap::new(),
            servers: Vec::new(),
            fetch_by_page: HashMap::new(),
        };
        for (track, events) in &trace.tracks {
            match track {
                TrackId::Thread(tid) => {
                    let waits = ix.waits.entry(*tid).or_default();
                    let mut cursor = 0u64;
                    for e in events {
                        match e.kind {
                            EventKind::LockRelease { lock } => {
                                ix.releases.entry(lock).or_default().push((e.at.as_ns(), *tid));
                            }
                            EventKind::BarrierArrive { barrier } => {
                                ix.arrivals.entry(barrier).or_default().push((e.at.as_ns(), *tid));
                            }
                            _ => {}
                        }
                        let Some(wait) = e.kind.wait_ns() else { continue };
                        if wait == 0 {
                            continue;
                        }
                        let kind = match e.kind {
                            EventKind::Fetch { page, .. } => WaitKind::Fetch { page },
                            EventKind::LockAcquire { lock, .. } => WaitKind::Lock { lock },
                            EventKind::BarrierRelease { barrier, .. } => {
                                WaitKind::Barrier { barrier }
                            }
                            EventKind::MgrRpc { op, .. } => WaitKind::Mgr { op },
                            _ => continue,
                        };
                        let end = e.at.as_ns();
                        let start = end.saturating_sub(wait).max(cursor);
                        if start < end {
                            waits.push(WaitIv { start, end, kind });
                            cursor = end;
                        }
                    }
                }
                TrackId::Manager | TrackId::MgrStandby => {
                    for e in events {
                        if let EventKind::MgrServe { op, tid } = e.kind {
                            let done = e.at.as_ns();
                            let idx = ix.mgr.len();
                            ix.mgr.push(Serve {
                                start: done.saturating_sub(costs.mgr_service_ns),
                                done,
                                chain_lo: 0,
                            });
                            ix.mgr_by.entry((tid, op)).or_default().push(idx);
                        }
                    }
                }
                TrackId::MemServer(s) => {
                    while ix.servers.len() <= *s as usize {
                        ix.servers.push(Vec::new());
                    }
                    let si = *s as usize;
                    let mut i = 0;
                    while i < events.len() {
                        let mut j = i;
                        let mut svc = 0u64;
                        let mut first_page = None;
                        while j < events.len() && events[j].at == events[i].at {
                            svc += match &events[j].kind {
                                EventKind::ServeFetch { page, pages } => {
                                    if first_page.is_none() {
                                        first_page = Some(*page);
                                    }
                                    costs.fetch_ns(u64::from(*pages) * costs.page_size)
                                }
                                EventKind::ApplyDiff { bytes, .. }
                                | EventKind::ApplyFine { bytes, .. } => costs.apply_ns(*bytes),
                                EventKind::ServeWrite { .. } => costs.apply_ns(costs.page_size),
                                _ => 0,
                            };
                            j += 1;
                        }
                        let done = events[i].at.as_ns();
                        let idx = ix.servers[si].len();
                        ix.servers[si].push(Serve {
                            start: done.saturating_sub(svc),
                            done,
                            chain_lo: 0,
                        });
                        if let Some(p) = first_page {
                            ix.fetch_by_page.entry(p).or_default().push((done, si, idx));
                        }
                        i = j;
                    }
                }
                TrackId::Fabric => {}
            }
        }
        chain(&mut ix.mgr);
        for s in &mut ix.servers {
            chain(s);
        }
        for v in ix.fetch_by_page.values_mut() {
            v.sort();
        }
        // Release/arrival lists are appended track by track: time-sorted
        // within each thread but interleaved across threads. The walk
        // binary-searches them, so sort globally by instant.
        for v in ix.releases.values_mut() {
            v.sort();
        }
        for v in ix.arrivals.values_mut() {
            v.sort();
        }
        ix
    }

    /// Latest manager serve for `(tid, op)` completing at or before `t`.
    fn mgr_serve_before(&self, tid: u32, op: &'static str, t: u64) -> Option<Serve> {
        let list = self.mgr_by.get(&(tid, op))?;
        let idx = list.partition_point(|&i| self.mgr[i].done <= t);
        if idx == 0 {
            None
        } else {
            Some(self.mgr[list[idx - 1]])
        }
    }

    /// Latest serve of `page` completing at or before `t`.
    fn fetch_serve_before(&self, page: u64, t: u64) -> Option<Serve> {
        let list = self.fetch_by_page.get(&page)?;
        let idx = list.partition_point(|&(done, _, _)| done <= t);
        if idx == 0 {
            return None;
        }
        let (_, s, i) = list[idx - 1];
        Some(self.servers[s][i])
    }
}

/// Extract the critical path. `windows` are the run report's per-thread
/// measured windows; the walk covers the makespan-defining window exactly.
pub fn critical_path(
    trace: &RunTrace,
    windows: &[ThreadWindow],
    costs: &ServiceCosts,
) -> CriticalPathReport {
    let _prof = samhita_prof::enter(samhita_prof::Phase::SpanGraph);
    let Some(w) = windows.iter().max_by_key(|w| (w.end_ns - w.epoch_ns, w.tid)) else {
        return CriticalPathReport::default();
    };
    let ix = Index::build(trace, costs);
    let floor = w.epoch_ns;
    let mut report = CriticalPathReport {
        makespan_ns: w.end_ns - w.epoch_ns,
        tid: w.tid,
        ..CriticalPathReport::default()
    };
    let mut segs: Vec<PathSegment> = Vec::new(); // backwards; reversed at the end
    let mut t = w.end_ns;
    let mut tid = w.tid;
    let empty: Vec<WaitIv> = Vec::new();

    while t > floor {
        let waits = ix.waits.get(&tid).unwrap_or(&empty);
        // The stall containing t (start < t <= end), if any.
        let idx = waits.partition_point(|iv| iv.end < t);
        let active = waits.get(idx).filter(|iv| iv.start < t && iv.end >= t).copied();
        let Some(iv) = active else {
            // Compute back to the previous stall's end (or the floor).
            let prev_end = if idx > 0 { waits[idx - 1].end } else { floor };
            let next = prev_end.clamp(floor, t - 1).max(floor);
            // `next < t`: prev_end < t by partition, floor < t by the loop.
            segs.push(PathSegment {
                tid,
                class: PathClass::Compute,
                start_ns: next,
                end_ns: t,
                detail: String::new(),
            });
            t = next;
            continue;
        };
        let s = iv.start.max(floor);
        // Resolve the blocker: (next_t, next_tid, cuts). `cuts` are
        // (boundary, class, detail) pieces covering (next_t, t] backwards:
        // piece i spans (cuts[i].0 clamped, previous boundary].
        let (next_t, next_tid, pieces) = step(&ix, tid, s, t, iv);
        debug_assert!(next_t < t && next_t >= floor.min(t));
        let mut hi = t;
        for (lo, class, detail) in pieces {
            let lo = lo.clamp(next_t, hi);
            if lo < hi {
                segs.push(PathSegment { tid, class, start_ns: lo, end_ns: hi, detail });
                hi = lo;
            }
        }
        debug_assert_eq!(hi, next_t, "pieces must tile (next_t, t]");
        t = next_t.max(floor);
        tid = next_tid;
    }

    segs.reverse();
    for seg in &segs {
        let i = PathClass::ALL.iter().position(|c| *c == seg.class).expect("ALL covers");
        report.class_ns[i] += seg.len_ns();
    }
    report.segments = segs;
    assert_eq!(
        report.total_ns(),
        report.makespan_ns,
        "critical-path attribution must tile the makespan exactly"
    );
    report
}

type Pieces = Vec<(u64, PathClass, String)>;

/// Classify the stall `iv` (clamped to `(s, t]`) and pick the walk's next
/// position. Returns `(next_t, next_tid, pieces)`; pieces are emitted
/// high-to-low, their boundaries clamped by the caller, and must reach
/// `next_t`. `next_t < t` is guaranteed (strict progress).
fn step(ix: &Index, tid: u32, s: u64, t: u64, iv: WaitIv) -> (u64, u32, Pieces) {
    match iv.kind {
        WaitKind::Fetch { page } => {
            let detail = format!("page {page}");
            let mut pieces: Pieces = Vec::new();
            if let Some(serve) = ix.fetch_serve_before(page, t) {
                // Wire tail, serve, queue chain, then request wire.
                pieces.push((serve.done, PathClass::Fetch, detail.clone()));
                pieces.push((serve.start, PathClass::ServerService, detail.clone()));
                pieces.push((
                    serve.chain_lo,
                    PathClass::QueueWait,
                    format!("server queue (page {page})"),
                ));
            }
            pieces.push((s, PathClass::Fetch, detail));
            (s, tid, pieces)
        }
        WaitKind::Mgr { op } => {
            let detail = format!("op {op}");
            let mut pieces: Pieces = Vec::new();
            if let Some(serve) = ix.mgr_serve_before(tid, op, t) {
                pieces.push((serve.done, PathClass::MgrWait, detail.clone()));
                pieces.push((serve.start, PathClass::MgrService, detail.clone()));
                pieces.push((serve.chain_lo, PathClass::QueueWait, format!("mgr queue (op {op})")));
            }
            pieces.push((s, PathClass::MgrWait, detail));
            (s, tid, pieces)
        }
        WaitKind::Lock { lock } => {
            let detail = format!("lock {lock}");
            // The latest release at or before the grant, if it falls inside
            // this stall, is the blocker: jump to the releaser.
            let rel = ix.releases.get(&lock).and_then(|rels| {
                let idx = rels.partition_point(|&(at, _)| at <= t);
                (idx > 0).then(|| rels[idx - 1])
            });
            let mut pieces: Pieces = Vec::new();
            match rel {
                Some((r, rtid)) if r > s && r < t => {
                    // Contended: the grant rode the releaser's `release`
                    // serve — carve its manager tail out of (r, t].
                    if let Some(serve) = ix.mgr_serve_before(rtid, "release", t) {
                        if serve.done >= r {
                            pieces.push((serve.done, PathClass::LockWait, detail.clone()));
                            pieces.push((serve.start, PathClass::MgrService, detail.clone()));
                            pieces.push((
                                serve.chain_lo,
                                PathClass::QueueWait,
                                format!("mgr queue (lock {lock})"),
                            ));
                        }
                    }
                    pieces.push((r, PathClass::LockWait, detail));
                    (r, rtid, pieces)
                }
                _ => {
                    // Uncontended (or bypass mode): pure round-trip — carve
                    // out our own `acquire` serve if the manager traced one.
                    if let Some(serve) = ix.mgr_serve_before(tid, "acquire", t) {
                        pieces.push((serve.done, PathClass::LockWait, detail.clone()));
                        pieces.push((serve.start, PathClass::MgrService, detail.clone()));
                        pieces.push((
                            serve.chain_lo,
                            PathClass::QueueWait,
                            format!("mgr queue (lock {lock})"),
                        ));
                    }
                    pieces.push((s, PathClass::LockWait, detail));
                    (s, tid, pieces)
                }
            }
        }
        WaitKind::Barrier { barrier } => {
            let detail = format!("barrier {barrier}");
            // The episode's last arrival (latest arrival before the
            // release) is the blocker.
            let arr = ix.arrivals.get(&barrier).and_then(|arrs| {
                let idx = arrs.partition_point(|&(at, _)| at <= t);
                (idx > 0).then(|| arrs[idx - 1])
            });
            let mut pieces: Pieces = Vec::new();
            let (jump, jtid) = match arr {
                Some((a, atid)) if a > s && a < t => (a, atid),
                _ => (s, tid),
            };
            // The release rode the last arrival's `barrier-wait` serve.
            if let Some((a, atid)) = arr {
                if let Some(serve) = ix.mgr_serve_before(atid, "barrier-wait", t) {
                    if serve.done >= a.max(s) {
                        pieces.push((serve.done, PathClass::BarrierWait, detail.clone()));
                        pieces.push((serve.start, PathClass::MgrService, detail.clone()));
                        pieces.push((
                            serve.chain_lo,
                            PathClass::QueueWait,
                            format!("mgr queue (barrier {barrier})"),
                        ));
                    }
                }
            }
            pieces.push((jump, PathClass::BarrierWait, detail));
            (jump, jtid, pieces)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;
    use samhita_scl::SimTime;

    fn costs() -> ServiceCosts {
        ServiceCosts {
            mgr_service_ns: 300,
            fetch_base_ns: 400,
            apply_base_ns: 150,
            per_kib_ns: 100,
            page_size: 1024,
        }
    }

    fn ev(at_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_ns(at_ns), kind }
    }

    /// A pure-compute thread: the whole path is compute and the totals
    /// tile the makespan exactly.
    #[test]
    fn compute_only_path_is_exact() {
        let trace = RunTrace::from_tracks(vec![(TrackId::Thread(0), vec![])]);
        let windows = [ThreadWindow { tid: 0, epoch_ns: 100, end_ns: 5_100 }];
        let r = critical_path(&trace, &windows, &costs());
        assert_eq!(r.makespan_ns, 5_000);
        assert_eq!(r.total_ns(), 5_000);
        assert_eq!(r.class_total(PathClass::Compute), 5_000);
        assert_eq!(r.segments.len(), 1);
    }

    /// A lock stall jumps to the releaser; its compute before the release
    /// lands on the path.
    #[test]
    fn lock_stall_jumps_to_releaser() {
        let trace = RunTrace::from_tracks(vec![
            (TrackId::Thread(0), vec![ev(4_000, EventKind::LockRelease { lock: 0 })]),
            (
                TrackId::Thread(1),
                vec![ev(4_500, EventKind::LockAcquire { lock: 0, wait_ns: 3_500 })],
            ),
        ]);
        let windows = [
            ThreadWindow { tid: 0, epoch_ns: 0, end_ns: 4_100 },
            ThreadWindow { tid: 1, epoch_ns: 0, end_ns: 5_000 },
        ];
        let r = critical_path(&trace, &windows, &costs());
        assert_eq!(r.tid, 1);
        assert_eq!(r.total_ns(), 5_000);
        // Path: t1 compute (5000..4500], lock wait (4000..4500] (no manager
        // events), then t0 compute (0..4000].
        assert_eq!(r.class_total(PathClass::LockWait), 500);
        assert_eq!(r.class_total(PathClass::Compute), 4_500);
        let tids: Vec<u32> = r.segments.iter().map(|s| s.tid).collect();
        assert!(tids.contains(&0), "releaser's compute must be on the path");
    }

    /// A fetch stall decomposes into wire, server service, and queue wait
    /// when the serve chain abuts an earlier serve.
    #[test]
    fn fetch_stall_decomposes_service_and_queue() {
        // Two serves back to back: [700,1200] (other) and [1200,1700] (ours,
        // page 7) — queue region [700,1200], service [1200,1700], wire tail
        // (1700..2000].
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![ev(
                    2_000,
                    EventKind::Fetch {
                        page: 7,
                        pages: 1,
                        kind: crate::event::FetchKind::Demand,
                        wait_ns: 1_500,
                    },
                )],
            ),
            (
                TrackId::MemServer(0),
                vec![
                    ev(1_200, EventKind::ServeFetch { page: 3, pages: 1 }),
                    ev(1_700, EventKind::ServeFetch { page: 7, pages: 1 }),
                ],
            ),
        ]);
        let windows = [ThreadWindow { tid: 0, epoch_ns: 0, end_ns: 2_000 }];
        let r = critical_path(&trace, &windows, &costs());
        assert_eq!(r.total_ns(), 2_000);
        assert_eq!(r.class_total(PathClass::ServerService), 500);
        assert_eq!(r.class_total(PathClass::QueueWait), 500);
        assert_eq!(r.class_total(PathClass::Fetch), 500); // 300 wire + 200 request
        assert_eq!(r.class_total(PathClass::Compute), 500);
        let json = r.to_json(5);
        crate::export::validate_json(&json).expect("valid json");
        assert!(json.contains("\"queue-wait\":500"));
    }

    /// A barrier stall jumps to the last arrival.
    #[test]
    fn barrier_stall_jumps_to_last_arrival() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(1_000, EventKind::BarrierArrive { barrier: 0 }),
                    ev(4_000, EventKind::BarrierRelease { barrier: 0, wait_ns: 3_000 }),
                ],
            ),
            (
                TrackId::Thread(1),
                vec![
                    ev(3_800, EventKind::BarrierArrive { barrier: 0 }),
                    ev(4_000, EventKind::BarrierRelease { barrier: 0, wait_ns: 200 }),
                ],
            ),
        ]);
        let windows = [
            ThreadWindow { tid: 0, epoch_ns: 0, end_ns: 4_200 },
            ThreadWindow { tid: 1, epoch_ns: 0, end_ns: 4_200 },
        ];
        let r = critical_path(&trace, &windows, &costs());
        assert_eq!(r.total_ns(), 4_200);
        // The straggler (t1) computes until 3800; barrier wait covers
        // (3800..4000] on whichever thread the walk started from.
        assert_eq!(r.class_total(PathClass::BarrierWait), 200);
        assert_eq!(r.class_total(PathClass::Compute), 4_000);
        assert!(r.segments.iter().any(|s| s.tid == 1 && s.class == PathClass::Compute));
    }

    /// Report JSON is byte-identical across two extractions.
    #[test]
    fn extraction_is_deterministic() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(1_000, EventKind::LockAcquire { lock: 0, wait_ns: 400 }),
                    ev(2_000, EventKind::LockRelease { lock: 0 }),
                ],
            ),
            (TrackId::Manager, vec![ev(900, EventKind::MgrServe { op: "acquire", tid: 0 })]),
        ]);
        let windows = [ThreadWindow { tid: 0, epoch_ns: 0, end_ns: 2_500 }];
        let a = critical_path(&trace, &windows, &costs()).to_json(10);
        let b = critical_path(&trace, &windows, &costs()).to_json(10);
        assert_eq!(a, b);
    }
}
