//! Trace event vocabulary.
//!
//! One [`TraceEvent`] records one protocol action at one virtual-time stamp.
//! Events live on *tracks*: one per compute thread, one per memory server,
//! one for the manager, and one for the fabric. Stamps on a single track are
//! monotone (each actor's virtual clock only moves forward), which the
//! exporters and the invariant checker rely on.

use samhita_scl::{MsgClass, SimTime};

/// Which actor's timeline an event belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TrackId {
    /// A compute thread, by tid.
    Thread(u32),
    /// The central manager.
    Manager,
    /// The hot-standby manager (replays the primary's log; serves only
    /// after a failover).
    MgrStandby,
    /// A memory server, by index.
    MemServer(u32),
    /// The interconnect (one aggregate track; events carry src/dst).
    Fabric,
}

impl TrackId {
    /// Human-readable track label, used by both exporters.
    pub fn label(&self) -> String {
        match self {
            TrackId::Thread(t) => format!("thread {t}"),
            TrackId::Manager => "manager".to_string(),
            TrackId::MgrStandby => "mgr standby".to_string(),
            TrackId::MemServer(i) => format!("mem server {i}"),
            TrackId::Fabric => "fabric".to_string(),
        }
    }

    /// Stable numeric id for the Chrome trace-event `tid` field: compute
    /// threads keep their tid, service tracks are offset well past any
    /// plausible thread count so Perfetto sorts them below the threads.
    pub fn chrome_tid(&self) -> u64 {
        match self {
            TrackId::Thread(t) => u64::from(*t),
            TrackId::Manager => 1000,
            TrackId::MgrStandby => 999,
            TrackId::MemServer(i) => 1001 + u64::from(*i),
            TrackId::Fabric => 2000,
        }
    }
}

/// How a page became resident, for [`EventKind::Fetch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchKind {
    /// Demand miss: a whole line was fetched synchronously.
    Demand,
    /// Re-fetch of invalidated pages within an otherwise resident line.
    Refetch,
    /// A previously issued prefetch had already arrived.
    PrefetchHit,
    /// A previously issued prefetch was still in flight and had to be waited
    /// for ("late" prefetch).
    PrefetchLate,
}

impl FetchKind {
    /// Short lowercase label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            FetchKind::Demand => "demand",
            FetchKind::Refetch => "refetch",
            FetchKind::PrefetchHit => "prefetch-hit",
            FetchKind::PrefetchLate => "prefetch-late",
        }
    }
}

/// One protocol action. Byte counts are payload bytes (what the protocol
/// moved), not wire bytes; `wait_ns` fields measure the virtual-time interval
/// the acting thread was stalled, ending at the event's stamp.
#[derive(Clone, Debug, PartialEq)]
pub enum EventKind {
    /// Pages became resident in the software cache (thread track).
    Fetch { page: u64, pages: u32, kind: FetchKind, wait_ns: u64 },
    /// An asynchronous prefetch of a line was issued (thread track).
    PrefetchIssue { page: u64, pages: u32 },
    /// A twin was created for an ordinary-region page (thread track).
    TwinCreate { page: u64 },
    /// A diff for `page` was flushed towards its home server (thread track).
    DiffFlush { page: u64, bytes: u64 },
    /// A fine-grain write set for `page` was flushed (thread track).
    FineFlush { page: u64, bytes: u64 },
    /// `page` was invalidated by a write notice from `writer` (thread track).
    Invalidate { page: u64, writer: u32 },
    /// A cache line was evicted to make room (thread track).
    Evict { line: u64, dirty_pages: u32 },
    /// Lock acquire request left for the manager / local bypass (thread track).
    LockRequest { lock: u32 },
    /// Lock grant observed; `wait_ns` spans request → grant (thread track).
    LockAcquire { lock: u32, wait_ns: u64 },
    /// Lock released, after consistency flush (thread track).
    LockRelease { lock: u32 },
    /// Thread arrived at a barrier, after consistency flush (thread track).
    BarrierArrive { barrier: u32 },
    /// Barrier released this thread; `wait_ns` spans arrive → release.
    BarrierRelease { barrier: u32, wait_ns: u64 },
    /// A non-sync manager RPC (alloc, free, create, signal…) completed;
    /// `wait_ns` spans request → response (thread track).
    MgrRpc { op: &'static str, wait_ns: u64 },
    /// The manager finished serving a request from `tid` (manager track).
    MgrServe { op: &'static str, tid: u32 },
    /// A memory server applied a diff (mem-server track).
    ApplyDiff { page: u64, bytes: u64 },
    /// A memory server applied a fine-grain update (mem-server track).
    ApplyFine { page: u64, bytes: u64 },
    /// A memory server served a line/page fetch (mem-server track).
    ServeFetch { page: u64, pages: u32 },
    /// A memory server overwrote a whole page (mem-server track).
    ServeWrite { page: u64 },
    /// A message entered the interconnect (fabric track).
    FabricSend { src: u64, dst: u64, class: MsgClass, bytes: u64 },
    /// The fault plan perturbed a send: `kind` is the fate label —
    /// `drop`, `partition`, `crash`, `duplicate`, or `delay` (fabric track).
    FaultInjected { src: u64, dst: u64, kind: &'static str },
    /// A thread re-sent a protocol request after detecting loss; `attempt`
    /// counts retransmissions of that request so far (thread track).
    Retry { op: &'static str, attempt: u32 },
    /// A thread gave up on memory server `from` and re-homed its traffic to
    /// the replica `to` (thread track).
    Failover { from: u32, to: u32 },
    /// A sync-time flush coalesced `parts` diff/fine updates bound for
    /// memory server `server` into one batched message of `bytes` wire
    /// bytes (thread track). The per-page `DiffFlush`/`FineFlush` events
    /// still precede this one, so byte-conservation checks are unchanged.
    BatchFlush { server: u32, parts: u32, bytes: u64 },
    /// A thread exhausted its retries against the primary manager and
    /// re-homed all manager traffic to the hot standby; `op` is the
    /// request that detected the crash (thread track).
    MgrFailover { op: &'static str },
    /// The active standby reclaimed `lock` from `holder` because its lease
    /// expired (standby track).
    LeaseReclaim { lock: u32, holder: u32 },
}

impl EventKind {
    /// Short lowercase event name used by the exporters.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Fetch { .. } => "fetch",
            EventKind::PrefetchIssue { .. } => "prefetch-issue",
            EventKind::TwinCreate { .. } => "twin-create",
            EventKind::DiffFlush { .. } => "diff-flush",
            EventKind::FineFlush { .. } => "fine-flush",
            EventKind::Invalidate { .. } => "invalidate",
            EventKind::Evict { .. } => "evict",
            EventKind::LockRequest { .. } => "lock-request",
            EventKind::LockAcquire { .. } => "lock-acquire",
            EventKind::LockRelease { .. } => "lock-release",
            EventKind::BarrierArrive { .. } => "barrier-arrive",
            EventKind::BarrierRelease { .. } => "barrier-release",
            EventKind::MgrRpc { .. } => "mgr-rpc",
            EventKind::MgrServe { .. } => "mgr-serve",
            EventKind::ApplyDiff { .. } => "apply-diff",
            EventKind::ApplyFine { .. } => "apply-fine",
            EventKind::ServeFetch { .. } => "serve-fetch",
            EventKind::ServeWrite { .. } => "serve-write",
            EventKind::FabricSend { .. } => "fabric-send",
            EventKind::FaultInjected { .. } => "fault-injected",
            EventKind::Retry { .. } => "retry",
            EventKind::Failover { .. } => "failover",
            EventKind::BatchFlush { .. } => "batch-flush",
            EventKind::MgrFailover { .. } => "mgr-failover",
            EventKind::LeaseReclaim { .. } => "lease-reclaim",
        }
    }

    /// The stall interval this event closes, if it represents one. Used by
    /// the Chrome exporter to render a span instead of an instant.
    pub fn wait_ns(&self) -> Option<u64> {
        match self {
            EventKind::Fetch { wait_ns, .. }
            | EventKind::LockAcquire { wait_ns, .. }
            | EventKind::BarrierRelease { wait_ns, .. }
            | EventKind::MgrRpc { wait_ns, .. } => Some(*wait_ns),
            _ => None,
        }
    }
}

/// One recorded protocol action with its virtual-time stamp.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time at which the action completed on its track.
    pub at: SimTime,
    /// What happened.
    pub kind: EventKind,
}
