//! Page-granular hotspot attribution.
//!
//! The paper explains DSM overheads by pointing at *which data* causes them
//! — false sharing shows up as a handful of pages ping-ponging between
//! writers. A [`HotspotMap`] accumulates per-page protocol counters
//! (misses, refetches, invalidations, twins, diff/fine bytes) as plain
//! always-on bookkeeping: recording touches no virtual clock and costs one
//! BTreeMap update per protocol action that already pays a fetch or flush,
//! so it rides along unconditionally, like the latency histograms.
//!
//! Aggregation is page-keyed. Line-granular events (multi-page demand
//! fetches) attribute to every page of the line, so a page's `misses`
//! column answers "how often was this page brought in", regardless of line
//! geometry. The same map can also be rebuilt from a recorded event trace
//! ([`HotspotMap::from_trace`]), which the tests use to prove the always-on
//! counters and the event stream agree.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::event::{EventKind, FetchKind};
use crate::tracer::RunTrace;

/// Protocol activity attributed to one global page.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageCounters {
    /// Demand fetches that brought this page in (cold/capacity misses).
    pub misses: u64,
    /// Single-page refetches after invalidation — the false-sharing signal.
    pub refetches: u64,
    /// Invalidations received for this page.
    pub invalidations: u64,
    /// Twins created for this page.
    pub twins: u64,
    /// Diff payload flushed from this page, in bytes.
    pub diff_bytes: u64,
    /// Fine-grain payload flushed from this page, in bytes.
    pub fine_bytes: u64,
}

impl PageCounters {
    fn add(&mut self, other: &PageCounters) {
        self.misses += other.misses;
        self.refetches += other.refetches;
        self.invalidations += other.invalidations;
        self.twins += other.twins;
        self.diff_bytes += other.diff_bytes;
        self.fine_bytes += other.fine_bytes;
    }

    /// Coherence churn score used for default hotspot ranking: refetches and
    /// invalidations dominate (each is a whole-page round trip), twins count
    /// as write-side churn.
    pub fn churn(&self) -> u64 {
        self.refetches + self.invalidations + self.twins
    }
}

/// Per-page protocol counters for one thread or one whole run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HotspotMap {
    pages: BTreeMap<u64, PageCounters>,
}

impl HotspotMap {
    /// Create an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn entry(&mut self, page: u64) -> &mut PageCounters {
        self.pages.entry(page).or_default()
    }

    /// Record a demand fetch of `pages` consecutive pages starting at `page`.
    #[inline]
    pub fn record_miss(&mut self, page: u64, pages: u64) {
        for p in page..page + pages {
            self.entry(p).misses += 1;
        }
    }

    /// Record a post-invalidation refetch of one page.
    #[inline]
    pub fn record_refetch(&mut self, page: u64) {
        self.entry(page).refetches += 1;
    }

    /// Record an invalidation of one page.
    #[inline]
    pub fn record_invalidate(&mut self, page: u64) {
        self.entry(page).invalidations += 1;
    }

    /// Record a twin creation on one page.
    #[inline]
    pub fn record_twin(&mut self, page: u64) {
        self.entry(page).twins += 1;
    }

    /// Record a diff flush of `bytes` from one page.
    #[inline]
    pub fn record_diff(&mut self, page: u64, bytes: u64) {
        self.entry(page).diff_bytes += bytes;
    }

    /// Record a fine-grain flush of `bytes` from one page.
    #[inline]
    pub fn record_fine(&mut self, page: u64, bytes: u64) {
        self.entry(page).fine_bytes += bytes;
    }

    /// Fold another map into this one (per-thread maps → run map).
    pub fn merge(&mut self, other: &HotspotMap) {
        for (&page, counters) in &other.pages {
            self.entry(page).add(counters);
        }
    }

    /// Number of distinct pages with any recorded activity.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no activity was recorded.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// The counters of one page, if it saw any activity.
    pub fn page(&self, page: u64) -> Option<&PageCounters> {
        self.pages.get(&page)
    }

    /// Iterate `(page, counters)` in page order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &PageCounters)> {
        self.pages.iter().map(|(&p, c)| (p, c))
    }

    /// Sum a counter over all pages.
    pub fn total_of(&self, f: impl Fn(&PageCounters) -> u64) -> u64 {
        self.pages.values().map(f).sum()
    }

    /// The `n` pages with the largest `key`, descending (ties broken by
    /// page number, ascending, for determinism). Pages scoring 0 are
    /// omitted.
    pub fn top_by(&self, n: usize, key: impl Fn(&PageCounters) -> u64) -> Vec<(u64, PageCounters)> {
        let mut ranked: Vec<(u64, PageCounters)> =
            self.pages.iter().filter(|(_, c)| key(c) > 0).map(|(&p, c)| (p, *c)).collect();
        ranked.sort_by(|a, b| key(&b.1).cmp(&key(&a.1)).then(a.0.cmp(&b.0)));
        ranked.truncate(n);
        ranked
    }

    /// The `n` pages with the most coherence churn ([`PageCounters::churn`]).
    pub fn top_churn(&self, n: usize) -> Vec<(u64, PageCounters)> {
        self.top_by(n, PageCounters::churn)
    }

    /// Rebuild a run-wide map from a recorded event trace. Only compute
    /// thread tracks contribute (server-side Apply/Serve events mirror the
    /// thread-side flush/fetch events already counted).
    pub fn from_trace(trace: &RunTrace) -> Self {
        let mut map = HotspotMap::new();
        for (track, events) in &trace.tracks {
            if !matches!(track, crate::event::TrackId::Thread(_)) {
                continue;
            }
            for e in events {
                match e.kind {
                    EventKind::Fetch { page, pages, kind, .. } => match kind {
                        FetchKind::Demand => map.record_miss(page, pages as u64),
                        FetchKind::Refetch => map.record_refetch(page),
                        FetchKind::PrefetchHit | FetchKind::PrefetchLate => {}
                    },
                    EventKind::Invalidate { page, .. } => map.record_invalidate(page),
                    EventKind::TwinCreate { page } => map.record_twin(page),
                    EventKind::DiffFlush { page, bytes } => map.record_diff(page, bytes),
                    EventKind::FineFlush { page, bytes } => map.record_fine(page, bytes),
                    _ => {}
                }
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TrackId};
    use samhita_scl::SimTime;

    #[test]
    fn records_and_ranks() {
        let mut m = HotspotMap::new();
        m.record_miss(4, 2); // pages 4 and 5
        m.record_refetch(7);
        m.record_refetch(7);
        m.record_invalidate(7);
        m.record_twin(5);
        m.record_diff(7, 128);
        m.record_fine(9, 16);
        assert_eq!(m.len(), 4);
        assert_eq!(m.page(4).unwrap().misses, 1);
        assert_eq!(m.page(5).unwrap().misses, 1);
        assert_eq!(m.page(5).unwrap().twins, 1);
        assert_eq!(m.page(7).unwrap().refetches, 2);
        assert_eq!(m.total_of(|c| c.refetches), 2);
        let top = m.top_churn(2);
        assert_eq!(top[0].0, 7); // churn 3
        assert_eq!(top[1].0, 5); // churn 1
                                 // Pages with zero score are omitted entirely.
        assert!(m.top_by(10, |c| c.fine_bytes).iter().all(|&(p, _)| p == 9));
    }

    #[test]
    fn merge_is_additive() {
        let mut a = HotspotMap::new();
        a.record_refetch(3);
        a.record_diff(3, 100);
        let mut b = HotspotMap::new();
        b.record_refetch(3);
        b.record_miss(8, 1);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.page(3).unwrap().refetches, 2);
        assert_eq!(merged.page(3).unwrap().diff_bytes, 100);
        assert_eq!(merged.page(8).unwrap().misses, 1);
    }

    #[test]
    fn ranking_is_deterministic_on_ties() {
        let mut m = HotspotMap::new();
        m.record_refetch(9);
        m.record_refetch(2);
        m.record_refetch(5);
        let top = m.top_by(3, |c| c.refetches);
        let pages: Vec<u64> = top.iter().map(|&(p, _)| p).collect();
        assert_eq!(pages, vec![2, 5, 9]);
    }

    #[test]
    fn from_trace_matches_direct_recording() {
        let ns = SimTime::from_ns;
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    TraceEvent {
                        at: ns(10),
                        kind: EventKind::Fetch {
                            page: 4,
                            pages: 2,
                            kind: FetchKind::Demand,
                            wait_ns: 100,
                        },
                    },
                    TraceEvent {
                        at: ns(20),
                        kind: EventKind::Fetch {
                            page: 4,
                            pages: 1,
                            kind: FetchKind::Refetch,
                            wait_ns: 100,
                        },
                    },
                    TraceEvent { at: ns(30), kind: EventKind::TwinCreate { page: 4 } },
                    TraceEvent { at: ns(40), kind: EventKind::DiffFlush { page: 4, bytes: 64 } },
                    TraceEvent { at: ns(50), kind: EventKind::Invalidate { page: 5, writer: 1 } },
                ],
            ),
            // Server-side mirror events must not double count.
            (
                TrackId::MemServer(0),
                vec![TraceEvent { at: ns(45), kind: EventKind::ApplyDiff { page: 4, bytes: 64 } }],
            ),
        ]);
        let mut expect = HotspotMap::new();
        expect.record_miss(4, 2);
        expect.record_refetch(4);
        expect.record_twin(4);
        expect.record_diff(4, 64);
        expect.record_invalidate(5);
        assert_eq!(HotspotMap::from_trace(&trace), expect);
    }
}
