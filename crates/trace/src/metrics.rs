//! Time-sliced metrics timeline, derived from a recorded event trace.
//!
//! End-of-run totals answer "how much"; the timeline answers "when". A
//! [`MetricsTimeline`] buckets the virtual timeline into fixed-width
//! intervals and accumulates, per interval: misses, refetches, diff/fine
//! bytes, invalidations, fabric bytes, lock/barrier/fetch stall time, and
//! manager / memory-server busy time (reconstructed from serve events and
//! the deterministic service-cost model, [`ServiceCosts`]).
//!
//! Derivation is strictly post-hoc: the timeline reads the same event
//! stream the exporters read, after the run has finished, so enabling it
//! can never perturb virtual clocks — the tracing bit-identity guarantee
//! carries over verbatim.
//!
//! Attribution convention: every event is stamped at its *completion* time
//! (that is how the tracer records them), so an interval's stall-ns and
//! busy-ns count work that **ended** in the interval, even if it started in
//! an earlier one. For bucket widths well above individual service times
//! (the default picks ~60 buckets per run) the distinction is invisible;
//! at extreme zoom it shifts load one bucket to the right, never loses it —
//! totals are conserved exactly, which the tests assert against the
//! always-on run report counters.

use samhita_scl::{QueueSample, SimTime};
use serde::{Deserialize, Serialize};

use crate::event::{EventKind, FetchKind, TrackId};
use crate::tracer::RunTrace;

/// The deterministic service-cost model parameters needed to reconstruct
/// manager and memory-server busy time from serve events. Mirrors the
/// simulation's cost model; construct via `SamhitaConfig::service_costs()`
/// so the two can never drift apart silently.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServiceCosts {
    /// Manager service time per request, in ns.
    pub mgr_service_ns: u64,
    /// Memory-server base service time for a fetch, in ns.
    pub fetch_base_ns: u64,
    /// Memory-server base service time for a write/diff apply, in ns.
    pub apply_base_ns: u64,
    /// Per-KiB payload cost on the memory server, in ns.
    pub per_kib_ns: u64,
    /// Bytes per page (to size fetch payloads from page counts).
    pub page_size: u64,
}

impl ServiceCosts {
    /// Memory-server service time for fetching `bytes` of payload.
    pub fn fetch_ns(&self, bytes: u64) -> u64 {
        self.fetch_base_ns + bytes * self.per_kib_ns / 1024
    }

    /// Memory-server service time for applying `bytes` of payload.
    pub fn apply_ns(&self, bytes: u64) -> u64 {
        self.apply_base_ns + bytes * self.per_kib_ns / 1024
    }
}

/// Accumulated metrics of one virtual-time interval.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelineBucket {
    /// Demand line fetches completed in the interval.
    pub misses: u64,
    /// Post-invalidation page refetches completed in the interval.
    pub refetches: u64,
    /// Invalidations applied in the interval.
    pub invalidations: u64,
    /// Diff payload flushed, in bytes.
    pub diff_bytes: u64,
    /// Fine-grain payload flushed, in bytes.
    pub fine_bytes: u64,
    /// Fabric payload sent, in bytes.
    pub fabric_bytes: u64,
    /// Fetch-stall time ending in the interval, in ns (all threads).
    pub fetch_wait_ns: u64,
    /// Lock-wait time ending in the interval, in ns (all threads).
    pub lock_wait_ns: u64,
    /// Barrier-wait time ending in the interval, in ns (all threads).
    pub barrier_wait_ns: u64,
    /// Manager service time for requests completed in the interval, in ns.
    pub mgr_busy_ns: u64,
    /// Memory-server service time (all servers) for requests completed in
    /// the interval, in ns.
    pub server_busy_ns: u64,
    /// Queue wait of requests dequeued in the interval, in ns (from queue
    /// samples absorbed via [`MetricsTimeline::absorb_queue_samples`]).
    pub queue_wait_ns: u64,
    /// Deepest service queue observed in the interval (from queue samples).
    pub peak_queue_depth: u64,
}

impl TimelineBucket {
    fn add(&mut self, other: &TimelineBucket) {
        self.misses += other.misses;
        self.refetches += other.refetches;
        self.invalidations += other.invalidations;
        self.diff_bytes += other.diff_bytes;
        self.fine_bytes += other.fine_bytes;
        self.fabric_bytes += other.fabric_bytes;
        self.fetch_wait_ns += other.fetch_wait_ns;
        self.lock_wait_ns += other.lock_wait_ns;
        self.barrier_wait_ns += other.barrier_wait_ns;
        self.mgr_busy_ns += other.mgr_busy_ns;
        self.server_busy_ns += other.server_busy_ns;
        self.queue_wait_ns += other.queue_wait_ns;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
    }
}

/// A run's metrics bucketed over virtual time.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsTimeline {
    /// Interval width, in virtual ns.
    pub bucket_ns: u64,
    /// Buckets in time order; bucket `i` covers `[i*bucket_ns, (i+1)*bucket_ns)`.
    pub buckets: Vec<TimelineBucket>,
}

impl MetricsTimeline {
    /// A bucket width giving ~`n` buckets over a run of `makespan_ns`
    /// (at least 1 ns so empty runs stay well-formed).
    pub fn bucket_width_for(makespan_ns: u64, n: u64) -> u64 {
        makespan_ns.div_ceil(n.max(1)).max(1)
    }

    /// Derive the timeline from a recorded trace. `costs` reconstructs
    /// manager/server busy time from serve events; pass the run's own
    /// config costs (`SamhitaConfig::service_costs()`).
    ///
    /// # Panics
    /// Panics if `bucket_ns` is 0.
    pub fn from_trace(trace: &RunTrace, bucket_ns: u64, costs: &ServiceCosts) -> Self {
        assert!(bucket_ns > 0, "bucket width must be positive");
        let mut tl = MetricsTimeline { bucket_ns, buckets: Vec::new() };
        for (track, events) in &trace.tracks {
            for e in events {
                tl.absorb(*track, e.at, &e.kind, costs);
            }
        }
        tl
    }

    fn bucket_at(&mut self, at: SimTime) -> &mut TimelineBucket {
        let idx = (at.as_ns() / self.bucket_ns) as usize;
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, TimelineBucket::default());
        }
        &mut self.buckets[idx]
    }

    fn absorb(&mut self, track: TrackId, at: SimTime, kind: &EventKind, costs: &ServiceCosts) {
        match (track, kind) {
            (TrackId::Thread(_), EventKind::Fetch { pages: _, kind, wait_ns, .. }) => {
                let b = self.bucket_at(at);
                match kind {
                    FetchKind::Demand => b.misses += 1,
                    FetchKind::Refetch => b.refetches += 1,
                    FetchKind::PrefetchHit | FetchKind::PrefetchLate => {}
                }
                b.fetch_wait_ns += wait_ns;
            }
            (TrackId::Thread(_), EventKind::Invalidate { .. }) => {
                self.bucket_at(at).invalidations += 1;
            }
            (TrackId::Thread(_), EventKind::DiffFlush { bytes, .. }) => {
                self.bucket_at(at).diff_bytes += bytes;
            }
            (TrackId::Thread(_), EventKind::FineFlush { bytes, .. }) => {
                self.bucket_at(at).fine_bytes += bytes;
            }
            (TrackId::Thread(_), EventKind::LockAcquire { wait_ns, .. }) => {
                self.bucket_at(at).lock_wait_ns += wait_ns;
            }
            (TrackId::Thread(_), EventKind::BarrierRelease { wait_ns, .. }) => {
                self.bucket_at(at).barrier_wait_ns += wait_ns;
            }
            (TrackId::Fabric, EventKind::FabricSend { bytes, .. }) => {
                self.bucket_at(at).fabric_bytes += bytes;
            }
            (TrackId::Manager | TrackId::MgrStandby, EventKind::MgrServe { .. }) => {
                self.bucket_at(at).mgr_busy_ns += costs.mgr_service_ns;
            }
            (TrackId::MemServer(_), EventKind::ServeFetch { pages, .. }) => {
                self.bucket_at(at).server_busy_ns +=
                    costs.fetch_ns(*pages as u64 * costs.page_size);
            }
            (TrackId::MemServer(_), EventKind::ApplyDiff { bytes, .. })
            | (TrackId::MemServer(_), EventKind::ApplyFine { bytes, .. }) => {
                self.bucket_at(at).server_busy_ns += costs.apply_ns(*bytes);
            }
            (TrackId::MemServer(_), EventKind::ServeWrite { .. }) => {
                self.bucket_at(at).server_busy_ns += costs.apply_ns(costs.page_size);
            }
            _ => {}
        }
    }

    /// Fold per-request queue samples (from the run report's
    /// `mgr_queue_samples` / `server_queue_samples`) into the timeline:
    /// each sample lands in the bucket of its dequeue instant, adding its
    /// queue wait and raising the interval's peak depth. Samples are not
    /// trace events — they ride the report — hence the separate entry
    /// point.
    pub fn absorb_queue_samples(&mut self, samples: &[QueueSample]) {
        for s in samples {
            let b = self.bucket_at(SimTime::from_ns(s.at_ns));
            b.queue_wait_ns += s.queue_wait_ns;
            b.peak_queue_depth = b.peak_queue_depth.max(s.depth);
        }
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// Whether the timeline holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// Sum of all buckets — must equal what the run report counted, which
    /// the tracing tests assert (conservation).
    pub fn totals(&self) -> TimelineBucket {
        let mut t = TimelineBucket::default();
        for b in &self.buckets {
            t.add(b);
        }
        t
    }

    /// The interval index maximizing `key`, with its value; `None` when the
    /// timeline is empty or every interval scores 0. Earliest interval wins
    /// ties (deterministic).
    pub fn peak_by(&self, key: impl Fn(&TimelineBucket) -> u64) -> Option<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .map(|(i, b)| (i, key(b)))
            .filter(|&(_, v)| v > 0)
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Serialize as a JSON object (`bucket_ns` + per-interval records).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"bucket_ns\":{},\"n_buckets\":{},\"buckets\":[",
            self.bucket_ns,
            self.buckets.len()
        );
        for (i, b) in self.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"misses\":{},\"refetches\":{},\"invalidations\":{},\
                 \"diff_bytes\":{},\"fine_bytes\":{},\"fabric_bytes\":{},\
                 \"fetch_wait_ns\":{},\"lock_wait_ns\":{},\"barrier_wait_ns\":{},\
                 \"mgr_busy_ns\":{},\"server_busy_ns\":{},\
                 \"queue_wait_ns\":{},\"peak_queue_depth\":{}}}",
                b.misses,
                b.refetches,
                b.invalidations,
                b.diff_bytes,
                b.fine_bytes,
                b.fabric_bytes,
                b.fetch_wait_ns,
                b.lock_wait_ns,
                b.barrier_wait_ns,
                b.mgr_busy_ns,
                b.server_busy_ns,
                b.queue_wait_ns,
                b.peak_queue_depth
            ));
        }
        out.push_str("]}");
        out
    }

    /// A compact human-readable digest: interval width and the peak
    /// intervals of the interesting series.
    pub fn summary(&self) -> String {
        if self.buckets.is_empty() {
            return "empty timeline".to_string();
        }
        let us = |i: usize| (i as u64 * self.bucket_ns) as f64 / 1000.0;
        let mut out =
            format!("{} x {:.1}us intervals", self.buckets.len(), self.bucket_ns as f64 / 1000.0);
        if let Some((i, v)) = self.peak_by(|b| b.misses + b.refetches) {
            out.push_str(&format!("; peak fetch activity {} @ {:.1}us", v, us(i)));
        }
        if let Some((i, v)) = self.peak_by(|b| b.fabric_bytes) {
            out.push_str(&format!("; peak fabric {}B @ {:.1}us", v, us(i)));
        }
        if let Some((i, v)) = self.peak_by(|b| b.server_busy_ns) {
            out.push_str(&format!(
                "; peak server busy {:.1}us @ {:.1}us",
                v as f64 / 1000.0,
                us(i)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn costs() -> ServiceCosts {
        ServiceCosts {
            mgr_service_ns: 300,
            fetch_base_ns: 400,
            apply_base_ns: 150,
            per_kib_ns: 100,
            page_size: 1024,
        }
    }

    fn ev(at_ns: u64, kind: EventKind) -> TraceEvent {
        TraceEvent { at: SimTime::from_ns(at_ns), kind }
    }

    #[test]
    fn buckets_by_completion_time() {
        let trace = RunTrace::from_tracks(vec![
            (
                TrackId::Thread(0),
                vec![
                    ev(
                        500,
                        EventKind::Fetch {
                            page: 1,
                            pages: 2,
                            kind: FetchKind::Demand,
                            wait_ns: 400,
                        },
                    ),
                    ev(
                        1_500,
                        EventKind::Fetch {
                            page: 1,
                            pages: 1,
                            kind: FetchKind::Refetch,
                            wait_ns: 300,
                        },
                    ),
                    ev(1_600, EventKind::DiffFlush { page: 1, bytes: 64 }),
                ],
            ),
            (TrackId::Manager, vec![ev(900, EventKind::MgrServe { op: "acquire", tid: 0 })]),
            (TrackId::MemServer(0), vec![ev(2_100, EventKind::ServeFetch { page: 1, pages: 2 })]),
        ]);
        let tl = MetricsTimeline::from_trace(&trace, 1_000, &costs());
        assert_eq!(tl.len(), 3);
        assert_eq!(tl.buckets[0].misses, 1);
        assert_eq!(tl.buckets[0].fetch_wait_ns, 400);
        assert_eq!(tl.buckets[0].mgr_busy_ns, 300);
        assert_eq!(tl.buckets[1].refetches, 1);
        assert_eq!(tl.buckets[1].diff_bytes, 64);
        // ServeFetch of 2 pages x 1 KiB: 400 + 2048*100/1024 = 600 ns.
        assert_eq!(tl.buckets[2].server_busy_ns, 600);
        let t = tl.totals();
        assert_eq!(t.misses, 1);
        assert_eq!(t.refetches, 1);
        assert_eq!(t.fetch_wait_ns, 700);
    }

    #[test]
    fn peaks_and_summary() {
        let trace = RunTrace::from_tracks(vec![(
            TrackId::Fabric,
            vec![
                ev(
                    100,
                    EventKind::FabricSend {
                        src: 0,
                        dst: 1,
                        class: samhita_scl::MsgClass::Data,
                        bytes: 10,
                    },
                ),
                ev(
                    2_500,
                    EventKind::FabricSend {
                        src: 0,
                        dst: 1,
                        class: samhita_scl::MsgClass::Data,
                        bytes: 99,
                    },
                ),
            ],
        )]);
        let tl = MetricsTimeline::from_trace(&trace, 1_000, &costs());
        assert_eq!(tl.peak_by(|b| b.fabric_bytes), Some((2, 99)));
        assert_eq!(tl.peak_by(|b| b.misses), None);
        assert!(tl.summary().contains("peak fabric 99B"));
        assert_eq!(MetricsTimeline::default().summary(), "empty timeline");
    }

    #[test]
    fn timeline_json_is_valid_and_round_trips_counts() {
        let trace = RunTrace::from_tracks(vec![(
            TrackId::Thread(0),
            vec![ev(10, EventKind::FineFlush { page: 3, bytes: 24 })],
        )]);
        let tl = MetricsTimeline::from_trace(&trace, 100, &costs());
        let json = tl.to_json();
        crate::export::validate_json(&json).expect("valid json");
        let v = crate::json::JsonValue::parse(&json).unwrap();
        assert_eq!(v.get("bucket_ns").and_then(|n| n.as_u64()), Some(100));
        let buckets = v.get("buckets").and_then(|b| b.as_array()).unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].get("fine_bytes").and_then(|n| n.as_u64()), Some(24));
    }

    #[test]
    fn queue_samples_land_in_their_dequeue_bucket() {
        let trace = RunTrace::from_tracks(vec![(
            TrackId::Thread(0),
            vec![ev(10, EventKind::FineFlush { page: 3, bytes: 24 })],
        )]);
        let mut tl = MetricsTimeline::from_trace(&trace, 1_000, &costs());
        tl.absorb_queue_samples(&[
            QueueSample { at_ns: 500, depth: 3, queue_wait_ns: 200 },
            QueueSample { at_ns: 700, depth: 1, queue_wait_ns: 50 },
            QueueSample { at_ns: 1_500, depth: 7, queue_wait_ns: 900 },
        ]);
        assert_eq!(tl.buckets[0].queue_wait_ns, 250);
        assert_eq!(tl.buckets[0].peak_queue_depth, 3);
        assert_eq!(tl.buckets[1].queue_wait_ns, 900);
        assert_eq!(tl.buckets[1].peak_queue_depth, 7);
        let t = tl.totals();
        assert_eq!(t.queue_wait_ns, 1_150);
        assert_eq!(t.peak_queue_depth, 7);
        let json = tl.to_json();
        crate::export::validate_json(&json).expect("valid json");
        assert!(json.contains("\"peak_queue_depth\":7"));
    }

    #[test]
    fn bucket_width_for_is_safe_on_degenerate_inputs() {
        assert_eq!(MetricsTimeline::bucket_width_for(0, 60), 1);
        assert_eq!(MetricsTimeline::bucket_width_for(600, 60), 10);
        assert_eq!(MetricsTimeline::bucket_width_for(601, 60), 11);
        assert_eq!(MetricsTimeline::bucket_width_for(100, 0), 100);
    }
}
