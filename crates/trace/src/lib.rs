//! Event-level tracing for the Samhita reproduction.
//!
//! Every protocol action — line fetches, prefetches, invalidations, twin
//! creation, diff/fine flushes, lock and barrier episodes, manager RPCs,
//! fabric sends — can be recorded as a [`TraceEvent`] stamped with the
//! *virtual* time at which it occurred. Recording is strictly observational:
//! events are pushed into per-track ring buffers ([`TraceBuf`]) and never
//! feed back into the simulation, so a traced run produces bit-identical
//! virtual clocks to an untraced one.
//!
//! On top of the raw event stream this crate provides
//!
//! * exporters ([`RunTrace::to_jsonl`], [`RunTrace::to_chrome_json`]) — the
//!   Chrome trace-event JSON opens directly in Perfetto / `chrome://tracing`
//!   with one track per compute thread plus manager / memory-server / fabric
//!   tracks;
//! * log-bucketed [`LatencyHistogram`]s for fetch, lock-wait and barrier-wait
//!   latencies (p50/p95/p99/max);
//! * a post-hoc [`MetricsTimeline`] — per-interval miss/refetch/byte/wait
//!   counters and manager/server busy time bucketed over virtual time — and
//!   page-granular [`HotspotMap`] attribution for false-sharing diagnosis;
//! * a value-producing [`JsonValue`] parser backing machine-readable report
//!   comparison (no JSON library is available offline);
//! * a trace-driven RegC invariant checker ([`RunTrace::check_invariants`])
//!   that verifies mutual exclusion of lock hold intervals on the virtual
//!   timeline, causal ordering of invalidations behind their flushes,
//!   diff-byte conservation between flushers and memory servers, and barrier
//!   episode alignment.

pub mod check;
pub mod critpath;
pub mod event;
pub mod export;
pub mod hist;
pub mod hotspot;
pub mod json;
pub mod metrics;
pub mod span;
pub mod tracer;

pub use check::{CheckSummary, Violation};
pub use critpath::{critical_path, CriticalPathReport, PathClass, PathSegment};
pub use event::{EventKind, FetchKind, TraceEvent, TrackId};
pub use export::validate_json;
pub use hist::LatencyHistogram;
pub use hotspot::{HotspotMap, PageCounters};
pub use json::JsonValue;
pub use metrics::{MetricsTimeline, ServiceCosts, TimelineBucket};
pub use span::{Edge, EdgeKind, Span, SpanClass, SpanDetail, SpanGraph, ThreadWindow};
pub use tracer::{RunTrace, SharedTrack, TraceBuf, Tracer};
