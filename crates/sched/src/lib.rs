//! Deterministic virtual-time scheduler.
//!
//! The simulator's compute and service threads are real OS threads, but
//! under this scheduler **exactly one of them runs at a time**: every task
//! is gated by a per-task *baton* (a condvar-protected slot), and the
//! scheduler hands the baton to the unique task with the globally minimal
//! `(virtual_time, tie_break, task_id)` key among those ready to run. The
//! tie-break is a seeded `splitmix64` hash of the task id, so ties at equal
//! virtual time resolve the same way in every run with the same seed —
//! and differently across seeds, which is what makes schedule-sensitivity
//! testable.
//!
//! This is a *conservative* discrete-event design: a task yields with a
//! candidate virtual time (the earliest instant at which it could next
//! act), and the scheduler only grants the baton to the minimal candidate.
//! Because a task granted at time `g` holds the smallest candidate, every
//! message any other task may later send is stamped `>= g`; the granted
//! task can therefore safely consume anything with effective time `<= g`.
//! Candidates may be *under*-estimates (that only changes which
//! deterministic order is picked, never causality); they must never be
//! over-estimates.
//!
//! Service threads (memory servers, the manager) are born *free-running*:
//! until their first baton grant they may drain their channels concurrently
//! with the host's setup sends. Determinism across that window is the
//! receiver's responsibility (see the deterministic receive path in the
//! fabric crate, which keys ordering off per-sender-monotone effective
//! times and channel order, both of which are stable under partial drains).

#![warn(missing_docs)]

use parking_lot::{Condvar, Mutex};
use std::cell::RefCell;
use std::fmt;
use std::sync::Arc;

/// `splitmix64` — the canonical 64-bit finalizer used to derive a
/// reproducible per-task tie-break from the scheduler seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The per-task hand-off gate. The slot carries the grant's virtual-time
/// candidate, so a resuming task learns *when* it was scheduled without a
/// second rendezvous with the scheduler lock.
struct Baton {
    slot: Mutex<Option<u64>>,
    cv: Condvar,
}

impl Baton {
    fn new() -> Self {
        Baton { slot: Mutex::new(None), cv: Condvar::new() }
    }

    /// Hand the baton over, carrying the grant's candidate time.
    fn grant(&self, at: u64) {
        let mut slot = self.slot.lock();
        debug_assert!(slot.is_none(), "baton granted twice without an intervening block");
        *slot = Some(at);
        self.cv.notify_one();
    }

    /// Wait for the baton and take it; returns the grant's candidate time.
    fn block(&self) -> u64 {
        let mut slot = self.slot.lock();
        loop {
            if let Some(at) = slot.take() {
                return at;
            }
            self.cv.wait(&mut slot);
        }
    }

    /// Discard an unconsumed grant. A task can be granted while still
    /// free-running its birth window (the grant sits in the slot, untaken);
    /// when that task then re-announces its state (yield/park/suspend/exit)
    /// the pending grant is stale and must not be mistaken for a fresh one
    /// by the next `block`.
    fn clear(&self) {
        let _ = self.slot.lock().take();
    }
}

/// Where a task stands with respect to the baton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TaskState {
    /// Holds (or has been granted and will imminently take) the baton.
    Running,
    /// Wants the baton no earlier than the contained virtual time.
    Ready(u64),
    /// Blocked with no wake-up scheduled; some other task must `wake_at` it.
    Parked,
    /// Finished; never schedulable again.
    Done,
}

struct Task {
    state: TaskState,
    /// Seeded tie-break, fixed at registration.
    tie: u64,
    baton: Arc<Baton>,
}

struct Inner {
    tasks: Vec<Task>,
    /// The task currently holding (or granted) the baton, if any.
    running: Option<usize>,
    /// Baton grants issued so far (picks plus quiescent resume takes).
    /// Observability only: never consulted by the pick policy.
    grants: u64,
}

/// The deterministic scheduler: a shared registry of tasks plus the single
/// global pick policy. Create one per simulated run via [`Scheduler::new`].
pub struct Scheduler {
    seed: u64,
    inner: Mutex<Inner>,
}

thread_local! {
    static CURRENT: RefCell<Option<TaskRef>> = const { RefCell::new(None) };
}

impl Scheduler {
    /// A fresh scheduler whose tie-breaks derive from `seed`.
    pub fn new(seed: u64) -> Arc<Scheduler> {
        Arc::new(Scheduler {
            seed,
            inner: Mutex::new(Inner { tasks: Vec::new(), running: None, grants: 0 }),
        })
    }

    /// The seed the tie-breaks derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Total baton grants issued so far — a measure of how often the
    /// machine context-switched in virtual time. Purely observational.
    pub fn grants(&self) -> u64 {
        self.inner.lock().grants
    }

    /// The task bound to the calling OS thread, if it was started through
    /// this scheduler family ([`TaskRef::start`] binds, task exit unbinds).
    /// Plain threads (unit tests, the OS-thread runtime) see `None`, which
    /// is how dual-mode code keys off the deterministic path.
    pub fn current() -> Option<TaskRef> {
        CURRENT.with(|c| c.borrow().clone())
    }

    fn register(self: &Arc<Self>, state: TaskState) -> TaskRef {
        let baton = Arc::new(Baton::new());
        let mut inner = self.inner.lock();
        let id = inner.tasks.len();
        let tie = splitmix64(self.seed ^ (id as u64 + 1));
        if state == TaskState::Running {
            assert!(inner.running.is_none(), "two tasks registered Running");
            inner.running = Some(id);
        }
        inner.tasks.push(Task { state, tie, baton: baton.clone() });
        TaskRef { sched: self.clone(), id, baton }
    }

    /// Register the calling context as the task that currently holds the
    /// baton (the host). Exactly one task may be Running at registration.
    pub fn register_running(self: &Arc<Self>) -> TaskRef {
        self.register(TaskState::Running)
    }

    /// Register a task ready to run no earlier than virtual time `at`.
    pub fn register_ready(self: &Arc<Self>, at: u64) -> TaskRef {
        self.register(TaskState::Ready(at))
    }

    /// Register a task blocked until somebody wakes it.
    pub fn register_parked(self: &Arc<Self>) -> TaskRef {
        self.register(TaskState::Parked)
    }

    /// Grant the baton to the Ready task with the minimal
    /// `(candidate, tie, id)` key, if any. Caller holds the inner lock and
    /// must have cleared `running` (or be about to re-grant to itself — the
    /// pick may select the caller; the hand-off is uniform either way).
    fn pick(&self, inner: &mut Inner) {
        let _prof = samhita_prof::enter(samhita_prof::Phase::SchedStep);
        debug_assert!(inner.running.is_none());
        let mut best: Option<(u64, u64, usize)> = None;
        for (id, t) in inner.tasks.iter().enumerate() {
            if let TaskState::Ready(at) = t.state {
                let key = (at, t.tie, id);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
        }
        if let Some((at, _, id)) = best {
            inner.tasks[id].state = TaskState::Running;
            inner.running = Some(id);
            inner.grants += 1;
            inner.tasks[id].baton.grant(at);
        }
        // No Ready task: the machine quiesces until the (suspended) host
        // resumes, or a free-running newborn parks and later gets woken.
    }
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Scheduler")
            .field("seed", &self.seed)
            .field("tasks", &inner.tasks.len())
            .field("running", &inner.running)
            .finish()
    }
}

/// A handle on one registered task. Clonable and sharable: wake-ups arrive
/// from whichever task is currently running.
pub struct TaskRef {
    sched: Arc<Scheduler>,
    id: usize,
    baton: Arc<Baton>,
}

impl Clone for TaskRef {
    fn clone(&self) -> Self {
        TaskRef { sched: self.sched.clone(), id: self.id, baton: self.baton.clone() }
    }
}

impl fmt::Debug for TaskRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TaskRef").field("id", &self.id).finish()
    }
}

impl TaskRef {
    /// This task's registration index (also the final tie-break key).
    pub fn id(&self) -> usize {
        self.id
    }

    /// First block of a newly spawned OS thread: wait for the first baton
    /// grant, bind this task to the calling thread (so [`Scheduler::current`]
    /// finds it), and return the grant's virtual-time candidate.
    pub fn start(&self) -> u64 {
        let at = self.baton.block();
        CURRENT.with(|c| *c.borrow_mut() = Some(self.clone()));
        at
    }

    /// Make this task schedulable no earlier than virtual time `t`. Merging
    /// is by minimum: an already-Ready task keeps the earlier of the two
    /// candidates; Running and Done tasks ignore wakes (a Running task will
    /// re-announce its own candidate when it next yields). Never hands the
    /// baton directly — only the scheduler pick does that.
    pub fn wake_at(&self, t: u64) {
        let mut inner = self.sched.inner.lock();
        let task = &mut inner.tasks[self.id];
        match task.state {
            TaskState::Parked => task.state = TaskState::Ready(t),
            TaskState::Ready(c) => task.state = TaskState::Ready(c.min(t)),
            TaskState::Running | TaskState::Done => {}
        }
    }

    /// Give up the baton until virtual time `t` (merged by minimum with any
    /// pending wake), let the minimal-candidate task run, and block until
    /// re-granted. Returns the grant's candidate: the caller may consume
    /// anything with effective time `<=` that value.
    pub fn yield_until(&self, t: u64) -> u64 {
        {
            let mut inner = self.sched.inner.lock();
            let task = &mut inner.tasks[self.id];
            match task.state {
                TaskState::Running => task.state = TaskState::Ready(t),
                TaskState::Ready(c) => task.state = TaskState::Ready(c.min(t)),
                // Still in the birth free-run window (never granted): keep
                // whatever a racing wake recorded, add our own candidate.
                TaskState::Parked => task.state = TaskState::Ready(t),
                TaskState::Done => unreachable!("yield after exit"),
            }
            if inner.running == Some(self.id) {
                self.baton.clear();
                inner.running = None;
                self.sched.pick(&mut inner);
            }
        }
        self.baton.block()
    }

    /// Block with no wake-up scheduled; some other task must [`wake_at`]
    /// this one. Returns the grant's candidate time once re-granted.
    ///
    /// In the birth free-run window (thread spawned but never granted) the
    /// task keeps a racing wake's Ready state rather than downgrading it.
    ///
    /// [`wake_at`]: TaskRef::wake_at
    pub fn park(&self) -> u64 {
        {
            let mut inner = self.sched.inner.lock();
            if inner.running == Some(self.id) {
                self.baton.clear();
                inner.tasks[self.id].state = TaskState::Parked;
                inner.running = None;
                self.sched.pick(&mut inner);
            }
            // else: birth window — leave Parked/Ready(racing wake) alone.
        }
        self.baton.block()
    }

    /// Release the baton *without blocking*: the host calls this before
    /// joining worker threads so the workers can be scheduled while the
    /// host is off doing real (non-simulated) work. Pair with [`resume`].
    ///
    /// Between `suspend` and `resume` the host must not send or receive on
    /// the simulated fabric.
    ///
    /// [`resume`]: TaskRef::resume
    pub fn suspend(&self) {
        let mut inner = self.sched.inner.lock();
        if inner.running == Some(self.id) {
            self.baton.clear();
            inner.tasks[self.id].state = TaskState::Parked;
            inner.running = None;
            self.sched.pick(&mut inner);
        } else {
            inner.tasks[self.id].state = TaskState::Parked;
        }
    }

    /// Re-acquire the baton after a [`suspend`]. Idempotent: a no-op if
    /// this task already runs. If the machine is quiescent (nothing Ready,
    /// nothing Running) the baton is taken immediately; otherwise the task
    /// queues at `u64::MAX` so every pending finite-candidate event drains
    /// before the host proceeds.
    ///
    /// [`suspend`]: TaskRef::suspend
    pub fn resume(&self) {
        {
            let mut inner = self.sched.inner.lock();
            if inner.running == Some(self.id) {
                // Discard a grant issued while this task was briefly parked
                // by `suspend`: it is already running again.
                self.baton.clear();
                return;
            }
            if inner.running.is_none() {
                let any_ready = inner.tasks.iter().any(|t| matches!(t.state, TaskState::Ready(_)));
                if !any_ready {
                    // Quiescent: nothing can be in flight (wakes only come
                    // from running tasks), so take the baton directly.
                    inner.tasks[self.id].state = TaskState::Running;
                    inner.running = Some(self.id);
                    inner.grants += 1;
                    return;
                }
                inner.tasks[self.id].state = TaskState::Ready(u64::MAX);
                self.sched.pick(&mut inner);
            } else {
                inner.tasks[self.id].state = TaskState::Ready(u64::MAX);
            }
        }
        self.baton.block();
    }

    /// Retire this task. If it held the baton the next minimal candidate is
    /// granted. Unbinds [`Scheduler::current`] when called on the calling
    /// thread's own task. Safe to call for a task that never started.
    pub fn exit(&self) {
        let mut inner = self.sched.inner.lock();
        inner.tasks[self.id].state = TaskState::Done;
        if inner.running == Some(self.id) {
            self.baton.clear();
            inner.running = None;
            self.sched.pick(&mut inner);
        }
        drop(inner);
        CURRENT.with(|c| {
            let mut cur = c.borrow_mut();
            if cur.as_ref().is_some_and(|t| t.id == self.id) {
                *cur = None;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    /// Workers yield at distinct virtual times; the recorded order must be
    /// exactly ascending-by-candidate regardless of spawn order.
    #[test]
    fn grants_follow_virtual_time_order() {
        let sched = Scheduler::new(1);
        let host = sched.register_running();
        let order = Arc::new(Mutex::new(Vec::new()));
        // Register in reverse so registration order != virtual-time order.
        let tasks: Vec<TaskRef> = (0..4).map(|i| sched.register_ready(100 - i * 10)).collect();
        let mut joins = Vec::new();
        for (i, task) in tasks.iter().enumerate() {
            let task = task.clone();
            let order = order.clone();
            joins.push(thread::spawn(move || {
                let granted = task.start();
                order.lock().push((i, granted));
                task.exit();
            }));
        }
        host.suspend();
        for j in joins {
            j.join().unwrap();
        }
        host.resume();
        assert_eq!(*order.lock(), vec![(3, 70), (2, 80), (1, 90), (0, 100)]);
    }

    /// Equal candidates: order is fixed per seed, and some seed pair orders
    /// them differently (the tie-break is really seeded, not id order).
    #[test]
    fn ties_break_by_seed_reproducibly() {
        let run = |seed: u64| {
            let sched = Scheduler::new(seed);
            let host = sched.register_running();
            let order = Arc::new(Mutex::new(Vec::new()));
            let tasks: Vec<TaskRef> = (0..6).map(|_| sched.register_ready(42)).collect();
            let mut joins = Vec::new();
            for (i, task) in tasks.iter().enumerate() {
                let task = task.clone();
                let order = order.clone();
                joins.push(thread::spawn(move || {
                    task.start();
                    order.lock().push(i);
                    task.exit();
                }));
            }
            host.suspend();
            for j in joins {
                j.join().unwrap();
            }
            host.resume();
            let o = order.lock().clone();
            o
        };
        assert_eq!(run(7), run(7), "same seed must give the same tie order");
        assert!(
            (0..32u64).any(|s| run(s) != run(s + 32)),
            "some seed pair must order ties differently"
        );
    }

    /// A parked task woken by a running one resumes at the wake's time; the
    /// waker keeps running until it yields past that time.
    #[test]
    fn park_wake_handoff_carries_virtual_time() {
        let sched = Scheduler::new(3);
        let host = sched.register_running();
        let a = sched.register_ready(0);
        let b = sched.register_parked();
        let log = Arc::new(Mutex::new(Vec::new()));

        let (la, lb) = (log.clone(), log.clone());
        let (a2, b2) = (a.clone(), b.clone());
        let ta = thread::spawn(move || {
            let g = a2.start();
            la.lock().push(("a-start", g));
            b2.wake_at(500);
            let g = a2.yield_until(900);
            la.lock().push(("a-resume", g));
            a2.exit();
        });
        let tb = thread::spawn(move || {
            let g = b.start();
            lb.lock().push(("b-start", g));
            b.exit();
        });
        host.suspend();
        ta.join().unwrap();
        tb.join().unwrap();
        host.resume();
        assert_eq!(
            *log.lock(),
            vec![("a-start", 0), ("b-start", 500), ("a-resume", 900)],
            "the wake must run at 500, before a's 900 candidate"
        );
    }

    /// yield_until may re-grant the caller when it stays minimal.
    #[test]
    fn yield_can_regrant_self() {
        let sched = Scheduler::new(9);
        let host = sched.register_running();
        let a = sched.register_ready(0);
        let _parked = sched.register_parked();
        let t = thread::spawn(move || {
            let g0 = a.start();
            let g1 = a.yield_until(10);
            a.exit();
            (g0, g1)
        });
        host.suspend();
        let (g0, g1) = t.join().unwrap();
        host.resume();
        assert_eq!((g0, g1), (0, 10));
    }

    /// resume() is idempotent and drains pending work first.
    #[test]
    fn resume_waits_for_ready_tasks_and_is_idempotent() {
        let sched = Scheduler::new(11);
        let host = sched.register_running();
        let done = Arc::new(AtomicUsize::new(0));
        let workers: Vec<TaskRef> = (0..3).map(|i| sched.register_ready(i * 5)).collect();
        let mut joins = Vec::new();
        for w in &workers {
            let w = w.clone();
            let done = done.clone();
            joins.push(thread::spawn(move || {
                w.start();
                done.fetch_add(1, Ordering::SeqCst);
                w.exit();
            }));
        }
        host.suspend();
        host.resume(); // must wait for (or outlast) the three workers
        assert_eq!(done.load(Ordering::SeqCst), 3, "resume must drain finite candidates first");
        host.resume(); // idempotent: already running
        for j in joins {
            j.join().unwrap();
        }
    }

    /// current() binds on start and unbinds on exit; alien threads see None.
    #[test]
    fn current_is_bound_per_thread() {
        assert!(Scheduler::current().is_none());
        let sched = Scheduler::new(5);
        let host = sched.register_running();
        let a = sched.register_ready(0);
        let t = thread::spawn(move || {
            assert!(Scheduler::current().is_none());
            a.start();
            let cur = Scheduler::current().expect("bound after start");
            assert_eq!(cur.id(), a.id());
            a.exit();
            assert!(Scheduler::current().is_none(), "unbound after exit");
        });
        host.suspend();
        t.join().unwrap();
        host.resume();
        assert!(Scheduler::current().is_none(), "host thread never bound");
    }

    /// A wake targeting a Running or Done task is ignored; a second wake at
    /// an earlier time lowers a Ready candidate.
    #[test]
    fn wake_merging_rules() {
        let sched = Scheduler::new(13);
        let host = sched.register_running();
        let a = sched.register_parked();
        a.wake_at(100);
        a.wake_at(40); // earlier wake wins
        a.wake_at(70); // later wake ignored
        let a2 = a.clone();
        let t = thread::spawn(move || {
            let g = a2.start();
            a2.exit();
            g
        });
        host.suspend();
        assert_eq!(t.join().unwrap(), 40);
        host.resume();
        a.wake_at(0); // Done: ignored, must not panic or grant
    }
}
