//! Link cost models.
//!
//! Every hop in the simulated fabric is described by a [`LinkModel`] — the
//! classic linear `α + β·n` communication model extended with a per-message
//! software/NIC overhead term (the `o` of LogP). The SCL charges a message of
//! `n` wire bytes:
//!
//! ```text
//! t = latency + per_msg_overhead + n * 8 / gbits_per_sec
//! ```
//!
//! Multi-hop routes add latencies and overheads and take the minimum
//! bandwidth along the route (store-and-forward pipelining is ignored; for
//! the small number of hops in our topologies this is a second-order effect).

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Linear cost model for one link (or one precomputed multi-hop route).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkModel {
    /// One-way propagation + port latency, in nanoseconds.
    pub latency_ns: u64,
    /// Sustained bandwidth in gigabits per second.
    pub gbits_per_sec: f64,
    /// Per-message software / NIC processing overhead, in nanoseconds.
    pub per_msg_overhead_ns: u64,
}

impl LinkModel {
    /// A link with effectively infinite speed; used for co-located endpoints
    /// in degenerate test topologies.
    pub const INSTANT: LinkModel =
        LinkModel { latency_ns: 0, gbits_per_sec: f64::INFINITY, per_msg_overhead_ns: 0 };

    /// Virtual time to move `bytes` across this link as a single message.
    #[inline]
    pub fn transfer_ns(&self, bytes: usize) -> SimTime {
        let serialization = if self.gbits_per_sec.is_finite() && self.gbits_per_sec > 0.0 {
            (bytes as f64 * 8.0 / self.gbits_per_sec).round() as u64
        } else {
            0
        };
        SimTime::from_ns(self.latency_ns + self.per_msg_overhead_ns + serialization)
    }

    /// Combine two links traversed in sequence into one effective route
    /// model: latencies and overheads add, bandwidth is the bottleneck.
    pub fn chain(&self, next: &LinkModel) -> LinkModel {
        LinkModel {
            latency_ns: self.latency_ns + next.latency_ns,
            gbits_per_sec: self.gbits_per_sec.min(next.gbits_per_sec),
            per_msg_overhead_ns: self.per_msg_overhead_ns + next.per_msg_overhead_ns,
        }
    }

    /// Effective bandwidth in bytes per nanosecond (for diagnostics).
    #[inline]
    pub fn bytes_per_ns(&self) -> f64 {
        self.gbits_per_sec / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_linear_in_bytes() {
        let m = LinkModel {
            latency_ns: 1000,
            gbits_per_sec: 8.0, // 1 byte per ns
            per_msg_overhead_ns: 100,
        };
        assert_eq!(m.transfer_ns(0).as_ns(), 1100);
        assert_eq!(m.transfer_ns(4096).as_ns(), 1100 + 4096);
        // doubling the payload doubles only the serialization term
        let d1 = m.transfer_ns(1000).as_ns() - m.transfer_ns(0).as_ns();
        let d2 = m.transfer_ns(2000).as_ns() - m.transfer_ns(0).as_ns();
        assert_eq!(d2, 2 * d1);
    }

    #[test]
    fn instant_link_is_free() {
        assert_eq!(LinkModel::INSTANT.transfer_ns(1 << 20), SimTime::ZERO);
    }

    #[test]
    fn chain_adds_latency_and_takes_min_bandwidth() {
        let fast = LinkModel { latency_ns: 100, gbits_per_sec: 64.0, per_msg_overhead_ns: 10 };
        let slow = LinkModel { latency_ns: 900, gbits_per_sec: 32.0, per_msg_overhead_ns: 300 };
        let route = fast.chain(&slow);
        assert_eq!(route.latency_ns, 1000);
        assert_eq!(route.per_msg_overhead_ns, 310);
        assert_eq!(route.gbits_per_sec, 32.0);
    }

    #[test]
    fn bigger_messages_take_longer() {
        let m = crate::profiles::ib_qdr();
        assert!(m.transfer_ns(65536) > m.transfer_ns(4096));
    }
}
