//! Fabric profiles.
//!
//! Named [`LinkModel`]s for the interconnects the paper discusses. Absolute
//! parameters are engineering estimates for the 2013-era hardware; what
//! matters for reproduction is their *relative* cost structure:
//!
//! * QDR InfiniBand (the evaluation fabric): ~1.3 µs end-to-end latency
//!   through HCA + switch, 32 Gb/s data rate, a few hundred ns of verbs
//!   software overhead per message.
//! * PCI Express gen2 x16 (host ↔ Xeon Phi): lower latency, higher raw
//!   bandwidth, but with a *verbs-proxy* software path whose per-message
//!   overhead is high — the situation §V of the paper wants to escape.
//! * SCIF: the same physical PCIe but with the direct SCIF software stack,
//!   i.e. the per-message overhead drops substantially (§V's proposal).
//! * 10 GbE: a pessimistic baseline used only in ablations.

use crate::model::LinkModel;

/// Quad-data-rate InfiniBand through one switch (HCA–switch–HCA), as in the
/// paper's six-node evaluation cluster.
pub fn ib_qdr() -> LinkModel {
    LinkModel { latency_ns: 1_300, gbits_per_sec: 32.0, per_msg_overhead_ns: 300 }
}

/// PCI Express gen2 x16 crossed via an InfiniBand *verbs proxy*, the software
/// path a stock Samhita build would use between host and coprocessor.
pub fn pcie_verbs_proxy() -> LinkModel {
    LinkModel { latency_ns: 900, gbits_per_sec: 48.0, per_msg_overhead_ns: 1_100 }
}

/// PCI Express gen2 x16 driven directly through SCIF (the paper's proposed
/// SCL port): same wire, much cheaper software path.
pub fn scif() -> LinkModel {
    LinkModel { latency_ns: 550, gbits_per_sec: 48.0, per_msg_overhead_ns: 200 }
}

/// 10-gigabit Ethernet with a kernel sockets stack; the kind of interconnect
/// that made 1990s DSMs unattractive. Ablation use only.
pub fn ethernet_10g() -> LinkModel {
    LinkModel { latency_ns: 9_000, gbits_per_sec: 10.0, per_msg_overhead_ns: 2_500 }
}

/// Traffic between two endpoints placed on the *same* node (e.g. manager and
/// memory server co-located on the host): a shared-memory handoff.
pub fn intra_node() -> LinkModel {
    LinkModel { latency_ns: 80, gbits_per_sec: 200.0, per_msg_overhead_ns: 40 }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_ordering_of_profiles() {
        // Latency: intra-node < SCIF < verbs proxy < IB < 10GbE.
        assert!(intra_node().latency_ns < scif().latency_ns);
        assert!(scif().latency_ns < pcie_verbs_proxy().latency_ns);
        assert!(pcie_verbs_proxy().latency_ns < ib_qdr().latency_ns);
        assert!(ib_qdr().latency_ns < ethernet_10g().latency_ns);
    }

    #[test]
    fn scif_beats_verbs_proxy_on_small_messages() {
        // The whole point of the paper's §V SCIF proposal: small-message cost
        // drops because the software overhead drops.
        let small = 64;
        assert!(scif().transfer_ns(small) < pcie_verbs_proxy().transfer_ns(small));
    }

    #[test]
    fn scif_and_proxy_share_wire_bandwidth() {
        assert_eq!(scif().gbits_per_sec, pcie_verbs_proxy().gbits_per_sec);
    }
}
