//! Fabric traffic statistics.
//!
//! Counters are lock-free (`Relaxed` atomics — they are statistics, not
//! synchronization) and classified by [`MsgClass`] so the benchmark harness
//! can report data movement vs. control/synchronization traffic separately,
//! mirroring the paper's compute-time / synchronization-time split.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Coarse classification of fabric traffic.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// Page / cache-line payloads (demand fetches, prefetches).
    Data,
    /// Consistency traffic: diffs and fine-grain updates.
    Update,
    /// Synchronization RPCs (locks, barriers, condition variables).
    Sync,
    /// Allocation and other management RPCs.
    Control,
}

impl MsgClass {
    /// All classes, in display order.
    pub const ALL: [MsgClass; 4] =
        [MsgClass::Data, MsgClass::Update, MsgClass::Sync, MsgClass::Control];

    /// Short lowercase label, for trace exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Data => "data",
            MsgClass::Update => "update",
            MsgClass::Sync => "sync",
            MsgClass::Control => "control",
        }
    }

    fn index(self) -> usize {
        match self {
            MsgClass::Data => 0,
            MsgClass::Update => 1,
            MsgClass::Sync => 2,
            MsgClass::Control => 3,
        }
    }
}

/// Live counters attached to a fabric.
#[derive(Debug, Default)]
pub struct FabricStats {
    msgs: [AtomicU64; 4],
    bytes: [AtomicU64; 4],
    drops: [AtomicU64; 4],
    dups: [AtomicU64; 4],
    delays: [AtomicU64; 4],
}

impl FabricStats {
    /// Record one message of `bytes` payload in class `class`.
    #[inline]
    pub fn record(&self, class: MsgClass, bytes: usize) {
        let i = class.index();
        self.msgs[i].fetch_add(1, Ordering::Relaxed);
        self.bytes[i].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Record one injected fault, by the fate label the fault plan produced
    /// (`"drop"`, `"partition"`, `"crash"`, `"duplicate"`, `"delay"`).
    /// Losses of any cause count as drops.
    #[inline]
    pub fn record_fault(&self, class: MsgClass, label: &str) {
        let i = class.index();
        match label {
            "duplicate" => self.dups[i].fetch_add(1, Ordering::Relaxed),
            "delay" => self.delays[i].fetch_add(1, Ordering::Relaxed),
            _ => self.drops[i].fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> FabricStatsSnapshot {
        let mut s = FabricStatsSnapshot::default();
        for class in MsgClass::ALL {
            let i = class.index();
            s.msgs[i] = self.msgs[i].load(Ordering::Relaxed);
            s.bytes[i] = self.bytes[i].load(Ordering::Relaxed);
            s.drops[i] = self.drops[i].load(Ordering::Relaxed);
            s.dups[i] = self.dups[i].load(Ordering::Relaxed);
            s.delays[i] = self.delays[i].load(Ordering::Relaxed);
        }
        s
    }
}

/// A point-in-time copy of [`FabricStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricStatsSnapshot {
    msgs: [u64; 4],
    bytes: [u64; 4],
    drops: [u64; 4],
    dups: [u64; 4],
    delays: [u64; 4],
}

impl FabricStatsSnapshot {
    /// Messages recorded in `class`.
    pub fn msgs(&self, class: MsgClass) -> u64 {
        self.msgs[class.index()]
    }

    /// Payload bytes recorded in `class`.
    pub fn bytes(&self, class: MsgClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Messages of `class` lost to injected faults (drops, partitions,
    /// crashes).
    pub fn drops(&self, class: MsgClass) -> u64 {
        self.drops[class.index()]
    }

    /// Messages of `class` duplicated by injected faults.
    pub fn dups(&self, class: MsgClass) -> u64 {
        self.dups[class.index()]
    }

    /// Messages of `class` hit by an injected latency spike.
    pub fn delays(&self, class: MsgClass) -> u64 {
        self.delays[class.index()]
    }

    /// Total messages across all classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total payload bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Total messages lost to injected faults, all classes.
    pub fn total_drops(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Total messages duplicated by injected faults, all classes.
    pub fn total_dups(&self) -> u64 {
        self.dups.iter().sum()
    }

    /// Total messages hit by injected latency spikes, all classes.
    pub fn total_delays(&self) -> u64 {
        self.delays.iter().sum()
    }

    /// Total injected faults of any kind, all classes.
    pub fn total_faults(&self) -> u64 {
        self.drops.iter().sum::<u64>()
            + self.dups.iter().sum::<u64>()
            + self.delays.iter().sum::<u64>()
    }

    /// Counter-wise difference (`self - earlier`), for per-phase accounting.
    pub fn delta(&self, earlier: &FabricStatsSnapshot) -> FabricStatsSnapshot {
        let mut out = FabricStatsSnapshot::default();
        for i in 0..4 {
            out.msgs[i] = self.msgs[i].saturating_sub(earlier.msgs[i]);
            out.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
            out.drops[i] = self.drops[i].saturating_sub(earlier.drops[i]);
            out.dups[i] = self.dups[i].saturating_sub(earlier.dups[i]);
            out.delays[i] = self.delays[i].saturating_sub(earlier.delays[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = FabricStats::default();
        s.record(MsgClass::Data, 4096);
        s.record(MsgClass::Data, 4096);
        s.record(MsgClass::Sync, 16);
        let snap = s.snapshot();
        assert_eq!(snap.msgs(MsgClass::Data), 2);
        assert_eq!(snap.bytes(MsgClass::Data), 8192);
        assert_eq!(snap.msgs(MsgClass::Sync), 1);
        assert_eq!(snap.msgs(MsgClass::Update), 0);
        assert_eq!(snap.total_msgs(), 3);
        assert_eq!(snap.total_bytes(), 8208);
    }

    #[test]
    fn delta_subtracts_counterwise() {
        let s = FabricStats::default();
        s.record(MsgClass::Control, 100);
        let before = s.snapshot();
        s.record(MsgClass::Control, 50);
        s.record(MsgClass::Update, 8);
        let d = s.snapshot().delta(&before);
        assert_eq!(d.msgs(MsgClass::Control), 1);
        assert_eq!(d.bytes(MsgClass::Control), 50);
        assert_eq!(d.msgs(MsgClass::Update), 1);
    }

    #[test]
    fn fault_counters_classify_by_cause() {
        let s = FabricStats::default();
        s.record_fault(MsgClass::Data, "drop");
        s.record_fault(MsgClass::Data, "partition");
        s.record_fault(MsgClass::Sync, "crash");
        s.record_fault(MsgClass::Update, "duplicate");
        s.record_fault(MsgClass::Data, "delay");
        let snap = s.snapshot();
        assert_eq!(snap.drops(MsgClass::Data), 2, "drops and partitions are both losses");
        assert_eq!(snap.drops(MsgClass::Sync), 1);
        assert_eq!(snap.dups(MsgClass::Update), 1);
        assert_eq!(snap.delays(MsgClass::Data), 1);
        assert_eq!(snap.total_drops(), 3);
        assert_eq!(snap.total_faults(), 5);
        let d = snap.delta(&FabricStatsSnapshot::default());
        assert_eq!(d, snap, "delta from zero is the identity");
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let s = Arc::new(FabricStats::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(MsgClass::Data, 8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.msgs(MsgClass::Data), 4000);
        assert_eq!(snap.bytes(MsgClass::Data), 32000);
    }
}
