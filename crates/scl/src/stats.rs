//! Fabric traffic statistics.
//!
//! Counters are lock-free (`Relaxed` atomics — they are statistics, not
//! synchronization) and classified by [`MsgClass`] so the benchmark harness
//! can report data movement vs. control/synchronization traffic separately,
//! mirroring the paper's compute-time / synchronization-time split.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// Coarse classification of fabric traffic.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MsgClass {
    /// Page / cache-line payloads (demand fetches, prefetches).
    Data,
    /// Consistency traffic: diffs and fine-grain updates.
    Update,
    /// Synchronization RPCs (locks, barriers, condition variables).
    Sync,
    /// Allocation and other management RPCs.
    Control,
}

impl MsgClass {
    /// All classes, in display order.
    pub const ALL: [MsgClass; 4] =
        [MsgClass::Data, MsgClass::Update, MsgClass::Sync, MsgClass::Control];

    /// Short lowercase label, for trace exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Data => "data",
            MsgClass::Update => "update",
            MsgClass::Sync => "sync",
            MsgClass::Control => "control",
        }
    }

    fn index(self) -> usize {
        match self {
            MsgClass::Data => 0,
            MsgClass::Update => 1,
            MsgClass::Sync => 2,
            MsgClass::Control => 3,
        }
    }
}

/// Live counters attached to a fabric.
#[derive(Debug, Default)]
pub struct FabricStats {
    msgs: [AtomicU64; 4],
    bytes: [AtomicU64; 4],
}

impl FabricStats {
    /// Record one message of `bytes` payload in class `class`.
    #[inline]
    pub fn record(&self, class: MsgClass, bytes: usize) {
        let i = class.index();
        self.msgs[i].fetch_add(1, Ordering::Relaxed);
        self.bytes[i].fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// Snapshot the counters.
    pub fn snapshot(&self) -> FabricStatsSnapshot {
        let mut s = FabricStatsSnapshot::default();
        for class in MsgClass::ALL {
            let i = class.index();
            s.msgs[i] = self.msgs[i].load(Ordering::Relaxed);
            s.bytes[i] = self.bytes[i].load(Ordering::Relaxed);
        }
        s
    }
}

/// A point-in-time copy of [`FabricStats`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricStatsSnapshot {
    msgs: [u64; 4],
    bytes: [u64; 4],
}

impl FabricStatsSnapshot {
    /// Messages recorded in `class`.
    pub fn msgs(&self, class: MsgClass) -> u64 {
        self.msgs[class.index()]
    }

    /// Payload bytes recorded in `class`.
    pub fn bytes(&self, class: MsgClass) -> u64 {
        self.bytes[class.index()]
    }

    /// Total messages across all classes.
    pub fn total_msgs(&self) -> u64 {
        self.msgs.iter().sum()
    }

    /// Total payload bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Counter-wise difference (`self - earlier`), for per-phase accounting.
    pub fn delta(&self, earlier: &FabricStatsSnapshot) -> FabricStatsSnapshot {
        let mut out = FabricStatsSnapshot::default();
        for i in 0..4 {
            out.msgs[i] = self.msgs[i].saturating_sub(earlier.msgs[i]);
            out.bytes[i] = self.bytes[i].saturating_sub(earlier.bytes[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = FabricStats::default();
        s.record(MsgClass::Data, 4096);
        s.record(MsgClass::Data, 4096);
        s.record(MsgClass::Sync, 16);
        let snap = s.snapshot();
        assert_eq!(snap.msgs(MsgClass::Data), 2);
        assert_eq!(snap.bytes(MsgClass::Data), 8192);
        assert_eq!(snap.msgs(MsgClass::Sync), 1);
        assert_eq!(snap.msgs(MsgClass::Update), 0);
        assert_eq!(snap.total_msgs(), 3);
        assert_eq!(snap.total_bytes(), 8208);
    }

    #[test]
    fn delta_subtracts_counterwise() {
        let s = FabricStats::default();
        s.record(MsgClass::Control, 100);
        let before = s.snapshot();
        s.record(MsgClass::Control, 50);
        s.record(MsgClass::Update, 8);
        let d = s.snapshot().delta(&before);
        assert_eq!(d.msgs(MsgClass::Control), 1);
        assert_eq!(d.bytes(MsgClass::Control), 50);
        assert_eq!(d.msgs(MsgClass::Update), 1);
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        use std::sync::Arc;
        let s = Arc::new(FabricStats::default());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        s.record(MsgClass::Data, 8);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = s.snapshot();
        assert_eq!(snap.msgs(MsgClass::Data), 4000);
        assert_eq!(snap.bytes(MsgClass::Data), 32000);
    }
}
