//! Endpoints: the receiving half of a fabric attachment.
//!
//! An endpoint has two receive disciplines. Unbound (the default), `recv`
//! blocks on the physical channel and yields messages in arrival order —
//! correct for single-threaded runs and plain-thread tests. Bound to a
//! deterministic-scheduler task (see [`Endpoint::bind_task`]), `recv`
//! instead delivers messages in **virtual-time order**: arrivals are staged
//! in a min-heap keyed by per-sender-monotone effective delivery time, and
//! the owning task yields to the scheduler until the earliest staged message
//! is provably final (no lower-keyed message can still be sent). That makes
//! multi-sender receive order a pure function of virtual time + seed, never
//! of OS scheduling.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};
use parking_lot::Mutex;
use samhita_sched::TaskRef;

use crate::error::SclError;
use crate::fabric::Fabric;
use crate::fault::SendFate;
use crate::resource::DepthGauge;
use crate::stats::MsgClass;
use crate::time::SimTime;
use crate::topology::{EndpointId, NodeId};

/// A staged message on the deterministic receive path, ordered by
/// `(effective_time, arrival_seq)`. The effective time is the envelope's
/// delivery time made monotone per sender, so per-sender FIFO order (which
/// the protocol's idempotency machinery relies on) survives reordering.
struct DetItem<M> {
    eff: u64,
    seq: u64,
    env: Envelope<M>,
}

impl<M> PartialEq for DetItem<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.eff, self.seq) == (other.eff, other.seq)
    }
}
impl<M> Eq for DetItem<M> {}
impl<M> PartialOrd for DetItem<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for DetItem<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.eff, self.seq).cmp(&(other.eff, other.seq))
    }
}

/// Deterministic receive state, present only on bound endpoints.
struct DetState<M> {
    task: TaskRef,
    heap: BinaryHeap<Reverse<DetItem<M>>>,
    /// Last effective time handed out per sender; effective times are
    /// `max(deliver_at, last_eff[src])` so one sender's messages never
    /// reorder against each other (an ordering key only — the envelope
    /// keeps its true delivery time).
    last_eff: HashMap<EndpointId, u64>,
    /// Arrival counter: ties at equal effective time resolve in physical
    /// channel order, which is deterministic under serialized execution.
    seq: u64,
    closed: bool,
}

impl<M> DetState<M> {
    /// Pull everything physically available into the staging heap.
    fn drain(&mut self, rx: &Receiver<Envelope<M>>) {
        let _prof = samhita_prof::enter(samhita_prof::Phase::ChannelRecv);
        loop {
            match rx.try_recv() {
                Ok(env) => {
                    let last = self.last_eff.entry(env.src).or_insert(0);
                    let eff = env.deliver_at.as_ns().max(*last);
                    *last = eff;
                    let seq = self.seq;
                    self.seq += 1;
                    self.heap.push(Reverse(DetItem { eff, seq, env }));
                }
                Err(TryRecvError::Empty) => return,
                Err(TryRecvError::Disconnected) => {
                    self.closed = true;
                    return;
                }
            }
        }
    }
}

/// A message in flight (or just delivered).
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending endpoint.
    pub src: EndpointId,
    /// Virtual time at which the sender posted the message.
    pub sent_at: SimTime,
    /// Virtual time at which the message reaches the receiver. Receivers
    /// must advance their clock to at least this before acting on `msg`.
    pub deliver_at: SimTime,
    /// Set by fault injection: the message was lost on the wire. Receivers
    /// must discard the payload without acting on it; a lost *response*
    /// arriving is how a client's virtual-time retransmission timeout fires
    /// without any wall-clock timer.
    pub lost: bool,
    /// Application payload.
    pub msg: M,
}

/// One attachment point on the fabric. Owned by exactly one component
/// thread; cloneable senders live inside the fabric.
pub struct Endpoint<M> {
    id: EndpointId,
    node: NodeId,
    rx: Receiver<Envelope<M>>,
    fabric: Arc<Fabric<M>>,
    det: Mutex<Option<DetState<M>>>,
    depth_gauge: Mutex<Option<Arc<DepthGauge>>>,
}

impl<M: Send + Clone + 'static> Endpoint<M> {
    pub(crate) fn new(
        id: EndpointId,
        node: NodeId,
        rx: Receiver<Envelope<M>>,
        fabric: Arc<Fabric<M>>,
    ) -> Self {
        Endpoint { id, node, rx, fabric, det: Mutex::new(None), depth_gauge: Mutex::new(None) }
    }

    /// Attach a backlog gauge: every successful [`Endpoint::recv`] samples
    /// how many messages remained staged (deterministic heap) or pending
    /// (physical channel) after one was taken. Sampling is observational —
    /// it never touches a virtual clock or the receive order.
    pub fn set_depth_gauge(&self, gauge: Arc<DepthGauge>) {
        *self.depth_gauge.lock() = Some(gauge);
    }

    fn sample_backlog(&self, depth: u64) {
        if let Some(g) = self.depth_gauge.lock().as_ref() {
            g.sample(depth);
        }
    }

    /// Switch this endpoint to the deterministic receive discipline, owned
    /// by scheduler task `task`: subsequent deliveries post virtual wake-ups
    /// to the task and [`Endpoint::recv`] returns messages in effective
    /// virtual-time order. Call once at bring-up, before any traffic
    /// targets this endpoint.
    pub fn bind_task(&self, task: &TaskRef) {
        *self.det.lock() = Some(DetState {
            task: task.clone(),
            heap: BinaryHeap::new(),
            last_eff: HashMap::new(),
            seq: 0,
            closed: false,
        });
        self.fabric.bind_task(self.id, task.clone());
    }

    /// Retire the scheduler task bound to this endpoint (no-op when
    /// unbound). Service loops call this on the way out so the scheduler
    /// never waits on a task whose loop has returned.
    pub fn exit_task(&self) {
        if let Some(st) = self.det.lock().as_ref() {
            st.task.exit();
        }
    }

    /// This endpoint's fabric id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// The node this endpoint is placed on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The fabric this endpoint is attached to.
    pub fn fabric(&self) -> &Arc<Fabric<M>> {
        &self.fabric
    }

    /// Send a message; see [`Fabric::send`].
    pub fn send(
        &self,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<SimTime, SclError> {
        self.fabric.send(self.id, dst, now, wire_bytes, class, msg)
    }

    /// Send a message and learn its injected fate; see
    /// [`Fabric::send_faulted`].
    pub fn send_faulted(
        &self,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<(SimTime, SendFate), SclError> {
        self.fabric.send_faulted(self.id, dst, now, wire_bytes, class, msg)
    }

    /// Send a message that bypasses fault injection; see
    /// [`Fabric::send_reliable`].
    pub fn send_reliable(
        &self,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<SimTime, SclError> {
        self.fabric.send_reliable(self.id, dst, now, wire_bytes, class, msg)
    }

    /// Block until a message arrives. Unbound: physical arrival order.
    /// Bound to a scheduler task: messages are delivered in effective
    /// virtual-time order, and blocking is a scheduler yield, not an OS
    /// block — the wait ends when the earliest staged message is *final*,
    /// i.e. the task was granted at a virtual time `g` with the heap
    /// minimum's effective time `<= g`, so no yet-unsent message can ever
    /// sort in front of it.
    pub fn recv(&self) -> Result<Envelope<M>, SclError> {
        let mut det = self.det.lock();
        let Some(st) = det.as_mut() else {
            drop(det);
            // Unbound (OS runtime): the physical channel exposes no stable
            // occupancy to observe, so backlog gauges only report under the
            // deterministic runtime's staged heap below.
            return self.rx.recv().map_err(|_| SclError::ChannelClosed);
        };
        // Holding `det` across yields/parks is deadlock-free: senders touch
        // only the fabric slot (wake hook) and the physical channel, never
        // this mutex.
        loop {
            st.drain(&self.rx);
            if let Some(Reverse(top)) = st.heap.peek() {
                let eff = top.eff;
                let granted = st.task.yield_until(eff);
                st.drain(&self.rx);
                if let Some(Reverse(top2)) = st.heap.peek() {
                    if top2.eff <= granted {
                        let env = st.heap.pop().expect("peeked").0.env;
                        let backlog = st.heap.len() as u64;
                        self.sample_backlog(backlog);
                        return Ok(env);
                    }
                }
                // Granted below the minimum (an earlier wake-up raced in and
                // then monotonization lifted it, or a lower-keyed message
                // arrived meanwhile): loop and re-announce the new minimum.
            } else if st.closed {
                return Err(SclError::ChannelClosed);
            } else {
                st.task.park();
            }
        }
    }

    /// Block until a message arrives *or* virtual time reaches `deadline`,
    /// whichever is earlier; `Ok(None)` means the deadline fired with no
    /// deliverable message at or before it. On a bound endpoint the wait is
    /// a scheduler yield, so the deadline is exact in virtual time — this
    /// is how a standby manager sleeps until the next lock-lease expiry
    /// without any wall-clock timer. A staged message due at or before the
    /// deadline always wins over the deadline itself.
    ///
    /// Unbound (OS runtime) there is no shared virtual clock to wait on, so
    /// this degrades to a short wall-clock poll; callers on that runtime
    /// must treat `Ok(None)` as "nothing yet", not as a virtual instant.
    pub fn recv_deadline(&self, deadline: SimTime) -> Result<Option<Envelope<M>>, SclError> {
        let mut det = self.det.lock();
        let Some(st) = det.as_mut() else {
            drop(det);
            return match self.rx.recv_timeout(Duration::from_millis(1)) {
                Ok(env) => Ok(Some(env)),
                Err(RecvTimeoutError::Timeout) => Ok(None),
                Err(RecvTimeoutError::Disconnected) => Err(SclError::ChannelClosed),
            };
        };
        let dl = deadline.as_ns();
        loop {
            st.drain(&self.rx);
            let target = match st.heap.peek() {
                Some(Reverse(top)) => top.eff.min(dl),
                None if st.closed => return Err(SclError::ChannelClosed),
                None => dl,
            };
            let granted = st.task.yield_until(target);
            st.drain(&self.rx);
            if let Some(Reverse(top2)) = st.heap.peek() {
                if top2.eff <= granted {
                    let env = st.heap.pop().expect("peeked").0.env;
                    let backlog = st.heap.len() as u64;
                    self.sample_backlog(backlog);
                    return Ok(Some(env));
                }
            }
            if granted >= dl {
                return Ok(None);
            }
        }
    }

    /// Non-blocking receive. On a bound endpoint this returns the staged
    /// minimum by effective time without any finality wait — callers that
    /// mix it with deterministic `recv` must tolerate tentative order.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        let mut det = self.det.lock();
        if let Some(st) = det.as_mut() {
            st.drain(&self.rx);
            return st.heap.pop().map(|Reverse(item)| item.env);
        }
        drop(det);
        match self.rx.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive with a *wall-clock* timeout; used by service loops to
    /// poll for shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope<M>>, SclError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(SclError::ChannelClosed),
        }
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("id", &self.id).field("node", &self.node).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn try_recv_and_timeout() {
        let fabric = Fabric::<u8>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        assert!(b.try_recv().is_none());
        assert!(b.recv_timeout(Duration::from_millis(1)).unwrap().is_none());
        a.send(b.id(), SimTime::ZERO, 1, MsgClass::Control, 9).unwrap();
        assert_eq!(b.try_recv().unwrap().msg, 9);
    }

    #[test]
    fn recv_deadline_polls_on_unbound_endpoints() {
        let fabric = Fabric::<u8>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        assert!(b.recv_deadline(SimTime::from_ns(10)).unwrap().is_none());
        a.send(b.id(), SimTime::ZERO, 1, MsgClass::Control, 4).unwrap();
        assert_eq!(b.recv_deadline(SimTime::from_ns(10)).unwrap().unwrap().msg, 4);
    }

    #[test]
    fn recv_deadline_is_exact_in_virtual_time_on_bound_endpoints() {
        use samhita_sched::Scheduler;
        let sched = Scheduler::new(0);
        let host = sched.register_running();
        let fabric = Fabric::<u8>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        let task = sched.register_parked();
        b.bind_task(&task);
        let b_id = b.id();
        let h = std::thread::spawn(move || {
            task.start();
            // The message is already in flight, due no earlier than 1000 ns;
            // a 500 ns deadline fires first, with the message left staged.
            assert!(b.recv_deadline(SimTime::from_ns(500)).unwrap().is_none());
            // With a late deadline the staged message wins over it.
            let env = b.recv_deadline(SimTime::from_ms(1)).unwrap().expect("message due first");
            assert_eq!(env.msg, 7);
            assert!(env.deliver_at >= SimTime::from_ns(1000));
            task.exit();
        });
        a.send(b_id, SimTime::from_ns(1000), 8, MsgClass::Control, 7).unwrap();
        host.suspend();
        h.join().unwrap();
        host.resume();
    }

    #[test]
    fn endpoint_reports_placement() {
        let fabric = Fabric::<u8>::new(Topology::cluster(3, crate::profiles::ib_qdr()));
        let e = fabric.add_endpoint(NodeId(2));
        assert_eq!(e.node(), NodeId(2));
        assert_eq!(e.fabric().topology().len(), 3);
    }
}
