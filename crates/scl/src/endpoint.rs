//! Endpoints: the receiving half of a fabric attachment.

use std::sync::Arc;
use std::time::Duration;

use crossbeam::channel::{Receiver, RecvTimeoutError, TryRecvError};

use crate::error::SclError;
use crate::fabric::Fabric;
use crate::fault::SendFate;
use crate::stats::MsgClass;
use crate::time::SimTime;
use crate::topology::{EndpointId, NodeId};

/// A message in flight (or just delivered).
#[derive(Debug, Clone)]
pub struct Envelope<M> {
    /// Sending endpoint.
    pub src: EndpointId,
    /// Virtual time at which the sender posted the message.
    pub sent_at: SimTime,
    /// Virtual time at which the message reaches the receiver. Receivers
    /// must advance their clock to at least this before acting on `msg`.
    pub deliver_at: SimTime,
    /// Set by fault injection: the message was lost on the wire. Receivers
    /// must discard the payload without acting on it; a lost *response*
    /// arriving is how a client's virtual-time retransmission timeout fires
    /// without any wall-clock timer.
    pub lost: bool,
    /// Application payload.
    pub msg: M,
}

/// One attachment point on the fabric. Owned by exactly one component
/// thread; cloneable senders live inside the fabric.
pub struct Endpoint<M> {
    id: EndpointId,
    node: NodeId,
    rx: Receiver<Envelope<M>>,
    fabric: Arc<Fabric<M>>,
}

impl<M: Send + Clone + 'static> Endpoint<M> {
    pub(crate) fn new(
        id: EndpointId,
        node: NodeId,
        rx: Receiver<Envelope<M>>,
        fabric: Arc<Fabric<M>>,
    ) -> Self {
        Endpoint { id, node, rx, fabric }
    }

    /// This endpoint's fabric id.
    pub fn id(&self) -> EndpointId {
        self.id
    }

    /// The node this endpoint is placed on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The fabric this endpoint is attached to.
    pub fn fabric(&self) -> &Arc<Fabric<M>> {
        &self.fabric
    }

    /// Send a message; see [`Fabric::send`].
    pub fn send(
        &self,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<SimTime, SclError> {
        self.fabric.send(self.id, dst, now, wire_bytes, class, msg)
    }

    /// Send a message and learn its injected fate; see
    /// [`Fabric::send_faulted`].
    pub fn send_faulted(
        &self,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<(SimTime, SendFate), SclError> {
        self.fabric.send_faulted(self.id, dst, now, wire_bytes, class, msg)
    }

    /// Send a message that bypasses fault injection; see
    /// [`Fabric::send_reliable`].
    pub fn send_reliable(
        &self,
        dst: EndpointId,
        now: SimTime,
        wire_bytes: usize,
        class: MsgClass,
        msg: M,
    ) -> Result<SimTime, SclError> {
        self.fabric.send_reliable(self.id, dst, now, wire_bytes, class, msg)
    }

    /// Block until a message arrives (physically).
    pub fn recv(&self) -> Result<Envelope<M>, SclError> {
        self.rx.recv().map_err(|_| SclError::ChannelClosed)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.rx.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocking receive with a *wall-clock* timeout; used by service loops to
    /// poll for shutdown.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<Option<Envelope<M>>, SclError> {
        match self.rx.recv_timeout(timeout) {
            Ok(env) => Ok(Some(env)),
            Err(RecvTimeoutError::Timeout) => Ok(None),
            Err(RecvTimeoutError::Disconnected) => Err(SclError::ChannelClosed),
        }
    }
}

impl<M> std::fmt::Debug for Endpoint<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint").field("id", &self.id).field("node", &self.node).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    #[test]
    fn try_recv_and_timeout() {
        let fabric = Fabric::<u8>::new(Topology::single_node(1));
        let a = fabric.add_endpoint(NodeId(0));
        let b = fabric.add_endpoint(NodeId(0));
        assert!(b.try_recv().is_none());
        assert!(b.recv_timeout(Duration::from_millis(1)).unwrap().is_none());
        a.send(b.id(), SimTime::ZERO, 1, MsgClass::Control, 9).unwrap();
        assert_eq!(b.try_recv().unwrap().msg, 9);
    }

    #[test]
    fn endpoint_reports_placement() {
        let fabric = Fabric::<u8>::new(Topology::cluster(3, crate::profiles::ib_qdr()));
        let e = fabric.add_endpoint(NodeId(2));
        assert_eq!(e.node(), NodeId(2));
        assert_eq!(e.fabric().topology().len(), 3);
    }
}
