//! Virtual time.
//!
//! All timing in the simulator is expressed as [`SimTime`], a nanosecond
//! count since the start of a run. The same type is used for instants and
//! durations; the arithmetic impls below are saturating so that cost-model
//! rounding can never wrap.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A virtual instant or duration, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

impl SimTime {
    /// The origin of virtual time (also the zero duration).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from a nanosecond count.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from a microsecond count.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from a millisecond count.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// The value in (fractional) microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The value in (fractional) milliseconds.
    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// The value in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `self - other`, clamping at zero instead of wrapping.
    #[inline]
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    /// Scale a duration by a dimensionless factor, rounding to nearest ns.
    #[inline]
    pub fn scaled(self, factor: f64) -> SimTime {
        debug_assert!(factor >= 0.0, "negative time scale");
        SimTime((self.0 as f64 * factor).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl From<u64> for SimTime {
    #[inline]
    fn from(ns: u64) -> Self {
        SimTime(ns)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_us_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_ns(1500).as_ns(), 1500);
        assert_eq!(SimTime::from_us(2).as_ns(), 2000);
        assert_eq!(SimTime::from_ms(3).as_ns(), 3_000_000);
        assert_eq!(SimTime::from(7u64).as_ns(), 7);
    }

    #[test]
    fn arithmetic_saturates() {
        let a = SimTime::from_ns(u64::MAX);
        assert_eq!((a + SimTime::from_ns(10)).as_ns(), u64::MAX);
        assert_eq!(SimTime::from_ns(5).saturating_sub(SimTime::from_ns(9)), SimTime::ZERO);
    }

    #[test]
    fn max_min_and_scaled() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(SimTime::from_ns(100).scaled(2.5).as_ns(), 250);
        assert_eq!(SimTime::from_ns(3).scaled(0.5).as_ns(), 2); // round-to-nearest
    }

    #[test]
    fn sums_and_ordering() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&n| SimTime::from_ns(n)).sum();
        assert_eq!(total.as_ns(), 6);
        assert!(SimTime::from_ns(1) < SimTime::from_ns(2));
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_ms(1200).to_string(), "1.200s");
    }

    #[test]
    fn unit_conversions() {
        let t = SimTime::from_ns(1_500_000);
        assert!((t.as_ms_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_us_f64() - 1500.0).abs() < 1e-9);
        assert!((t.as_secs_f64() - 0.0015).abs() < 1e-12);
    }
}
