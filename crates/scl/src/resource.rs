//! Virtual queueing resources.
//!
//! A [`VirtualResource`] models a shared service point with a single server
//! queue in *virtual* time: requests reserve `(start, done)` windows where
//! `start = max(arrival, clock)` and the clock advances to `done`. A memory
//! server uses one of these for its DRAM/CPU service path, which is what
//! makes hot-spotting observable — many compute threads missing into the
//! same server queue up behind each other, and striping allocations across
//! servers (the paper's third allocation strategy) relieves exactly this.
//!
//! Note on approximation: because real threads deliver requests in physical
//! order, a request with a *later* virtual arrival can occasionally be
//! serviced before an earlier one. The reservation is still conservative
//! (no two service windows overlap); see `DESIGN.md §2` for why this is an
//! acceptable error for barrier-coupled workloads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// Completed-but-unexpired reservations kept for depth estimation. Done
/// times are monotone, so the deque stays sorted; the bound only matters
/// for pathological arrival reordering and caps memory, not correctness of
/// the (already approximate) depth estimate.
const OUTSTANDING_CAP: usize = 4096;

/// Queue-occupancy samples retained per resource for timeline absorption.
const SAMPLE_CAP: usize = 65536;

/// One queue-occupancy observation, taken at a request's virtual arrival.
/// These feed the metrics timeline; they are *not* trace events and never
/// perturb any virtual clock.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueSample {
    /// Virtual arrival time of the sampled request.
    pub at_ns: u64,
    /// Requests in the system at arrival, including the new one (so an
    /// uncontended resource samples depth 1).
    pub depth: u64,
    /// How long this request waited in queue before service began.
    pub queue_wait_ns: u64,
}

#[derive(Debug, Default)]
struct Inner {
    clock: SimTime,
    busy: SimTime,
    requests: u64,
    queue_wait: SimTime,
    peak_depth: u64,
    depth_sum: u64,
    /// Done times of reservations not yet completed at the latest arrival,
    /// ascending (done times are monotone by construction).
    outstanding: VecDeque<SimTime>,
    samples: Vec<QueueSample>,
    samples_dropped: u64,
}

/// A single-server virtual-time queue.
#[derive(Debug, Default)]
pub struct VirtualResource {
    inner: Mutex<Inner>,
}

/// Usage summary for a resource.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// Virtual time of the last service completion.
    pub clock_ns: u64,
    /// Total virtual busy time.
    pub busy_ns: u64,
    /// Number of reservations served.
    pub requests: u64,
    /// Total virtual time requests spent queued before service
    /// (`Σ start − arrival`).
    pub queue_wait_ns: u64,
    /// Maximum observed system occupancy at any arrival (1 = uncontended).
    pub peak_depth: u64,
    /// Sum of occupancies sampled at each arrival; `depth_sum / requests`
    /// is the arrival-averaged queue depth.
    pub depth_sum: u64,
}

impl VirtualResource {
    /// Create an idle resource at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve a service window of length `service` for a request arriving
    /// at `arrival`. Returns `(start, done)`.
    ///
    /// Besides the reservation itself this records queue-wait
    /// (`start − arrival`) and samples the system occupancy seen by the
    /// arrival. Depth is estimated against reservations whose `done` still
    /// lies in the future at `arrival`; because arrivals can reach the
    /// resource slightly out of virtual order (see the module note), the
    /// depth is an estimate while queue-wait is exact.
    pub fn reserve(&self, arrival: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let mut inner = self.inner.lock();
        let start = arrival.max(inner.clock);
        let done = start + service;
        inner.clock = done;
        inner.busy += service;
        inner.requests += 1;
        inner.queue_wait += start - arrival;
        while inner.outstanding.front().is_some_and(|d| *d <= arrival) {
            inner.outstanding.pop_front();
        }
        let depth = inner.outstanding.len() as u64 + 1;
        inner.peak_depth = inner.peak_depth.max(depth);
        inner.depth_sum += depth;
        inner.outstanding.push_back(done);
        if inner.outstanding.len() > OUTSTANDING_CAP {
            inner.outstanding.pop_front();
        }
        if inner.samples.len() < SAMPLE_CAP {
            let sample = QueueSample {
                at_ns: arrival.as_ns(),
                depth,
                queue_wait_ns: (start - arrival).as_ns(),
            };
            inner.samples.push(sample);
        } else {
            inner.samples_dropped += 1;
        }
        (start, done)
    }

    /// Current usage counters.
    pub fn stats(&self) -> ResourceStats {
        let inner = self.inner.lock();
        ResourceStats {
            clock_ns: inner.clock.as_ns(),
            busy_ns: inner.busy.as_ns(),
            requests: inner.requests,
            queue_wait_ns: inner.queue_wait.as_ns(),
            peak_depth: inner.peak_depth,
            depth_sum: inner.depth_sum,
        }
    }

    /// Drain the queue-occupancy samples recorded since the last call,
    /// together with the count of samples lost to the retention cap.
    pub fn take_samples(&self) -> (Vec<QueueSample>, u64) {
        let mut inner = self.inner.lock();
        let dropped = inner.samples_dropped;
        inner.samples_dropped = 0;
        (std::mem::take(&mut inner.samples), dropped)
    }

    /// Reset the queue accounting (wait totals, depth peak/sum, samples)
    /// without touching the service clock, so per-run deltas of the queue
    /// counters are exact even when one resource outlives several runs.
    pub fn reset_queue_accounting(&self) {
        let mut inner = self.inner.lock();
        inner.queue_wait = SimTime::ZERO;
        inner.peak_depth = 0;
        inner.depth_sum = 0;
        inner.samples.clear();
        inner.samples_dropped = 0;
    }
}

/// Lock-free endpoint backlog gauge: service loops sample how many staged
/// messages remained after each receive, and the host reads peak/mean after
/// the run. Published with relaxed atomics — the join that ends a run is the
/// synchronization point, exactly like the busy-time counters.
#[derive(Debug, Default)]
pub struct DepthGauge {
    peak: AtomicU64,
    sum: AtomicU64,
    samples: AtomicU64,
}

impl DepthGauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a backlog observation.
    pub fn sample(&self, depth: u64) {
        self.peak.fetch_max(depth, Ordering::Relaxed);
        self.sum.fetch_add(depth, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Largest backlog observed since the last reset.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Mean backlog over all observations since the last reset.
    pub fn mean(&self) -> f64 {
        let n = self.samples.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        self.sum.load(Ordering::Relaxed) as f64 / n as f64
    }

    /// Observations since the last reset.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Zero the gauge (called between runs).
    pub fn reset(&self) {
        self.peak.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.samples.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_queue() {
        let r = VirtualResource::new();
        let (s1, d1) = r.reserve(SimTime::from_ns(0), SimTime::from_ns(100));
        assert_eq!((s1.as_ns(), d1.as_ns()), (0, 100));
        // Arrives while the first is in service: waits.
        let (s2, d2) = r.reserve(SimTime::from_ns(50), SimTime::from_ns(100));
        assert_eq!((s2.as_ns(), d2.as_ns()), (100, 200));
        // Arrives after the queue drains: served immediately.
        let (s3, d3) = r.reserve(SimTime::from_ns(500), SimTime::from_ns(10));
        assert_eq!((s3.as_ns(), d3.as_ns()), (500, 510));
    }

    #[test]
    fn stats_track_busy_time() {
        let r = VirtualResource::new();
        r.reserve(SimTime::ZERO, SimTime::from_ns(30));
        r.reserve(SimTime::ZERO, SimTime::from_ns(70));
        let s = r.stats();
        assert_eq!(s.busy_ns, 100);
        assert_eq!(s.requests, 2);
        assert_eq!(s.clock_ns, 100);
    }

    #[test]
    fn queue_wait_and_depth_are_recorded() {
        let r = VirtualResource::new();
        r.reserve(SimTime::from_ns(0), SimTime::from_ns(100)); // depth 1, wait 0
        r.reserve(SimTime::from_ns(10), SimTime::from_ns(100)); // depth 2, wait 90
        r.reserve(SimTime::from_ns(20), SimTime::from_ns(100)); // depth 3, wait 180
        r.reserve(SimTime::from_ns(500), SimTime::from_ns(10)); // drained: depth 1, wait 0
        let s = r.stats();
        assert_eq!(s.queue_wait_ns, 90 + 180);
        assert_eq!(s.peak_depth, 3);
        assert_eq!(s.depth_sum, 1 + 2 + 3 + 1);
        let (samples, dropped) = r.take_samples();
        assert_eq!(dropped, 0);
        let depths: Vec<u64> = samples.iter().map(|q| q.depth).collect();
        assert_eq!(depths, vec![1, 2, 3, 1]);
        let waits: Vec<u64> = samples.iter().map(|q| q.queue_wait_ns).collect();
        assert_eq!(waits, vec![0, 90, 180, 0]);
        // A second drain sees nothing.
        assert!(r.take_samples().0.is_empty());
    }

    #[test]
    fn reset_queue_accounting_keeps_service_clock() {
        let r = VirtualResource::new();
        r.reserve(SimTime::from_ns(0), SimTime::from_ns(100));
        r.reserve(SimTime::from_ns(0), SimTime::from_ns(100));
        r.reset_queue_accounting();
        let s = r.stats();
        assert_eq!(s.clock_ns, 200, "service clock must survive the reset");
        assert_eq!((s.queue_wait_ns, s.peak_depth, s.depth_sum), (0, 0, 0));
        // Post-reset arrivals queue against the surviving clock.
        let (start, _) = r.reserve(SimTime::from_ns(50), SimTime::from_ns(10));
        assert_eq!(start.as_ns(), 200);
        assert_eq!(r.stats().queue_wait_ns, 150);
    }

    #[test]
    fn depth_gauge_tracks_peak_and_mean() {
        let g = DepthGauge::new();
        for d in [0u64, 3, 1, 4, 0] {
            g.sample(d);
        }
        assert_eq!(g.peak(), 4);
        assert_eq!(g.samples(), 5);
        assert!((g.mean() - 8.0 / 5.0).abs() < 1e-12);
        g.reset();
        assert_eq!((g.peak(), g.samples()), (0, 0));
        assert_eq!(g.mean(), 0.0);
    }

    #[test]
    fn windows_never_overlap_under_concurrency() {
        use std::sync::Arc;
        let r = Arc::new(VirtualResource::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut windows = Vec::new();
                    for k in 0..100u64 {
                        windows
                            .push(r.reserve(SimTime::from_ns(i * 13 + k * 7), SimTime::from_ns(5)));
                    }
                    windows
                })
            })
            .collect();
        let mut all: Vec<(SimTime, SimTime)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort();
        for pair in all.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "service windows overlap: {pair:?}");
        }
        assert_eq!(r.stats().busy_ns, 8 * 100 * 5);
    }
}
