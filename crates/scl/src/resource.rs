//! Virtual queueing resources.
//!
//! A [`VirtualResource`] models a shared service point with a single server
//! queue in *virtual* time: requests reserve `(start, done)` windows where
//! `start = max(arrival, clock)` and the clock advances to `done`. A memory
//! server uses one of these for its DRAM/CPU service path, which is what
//! makes hot-spotting observable — many compute threads missing into the
//! same server queue up behind each other, and striping allocations across
//! servers (the paper's third allocation strategy) relieves exactly this.
//!
//! Note on approximation: because real threads deliver requests in physical
//! order, a request with a *later* virtual arrival can occasionally be
//! serviced before an earlier one. The reservation is still conservative
//! (no two service windows overlap); see `DESIGN.md §2` for why this is an
//! acceptable error for barrier-coupled workloads.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

#[derive(Debug, Default)]
struct Inner {
    clock: SimTime,
    busy: SimTime,
    requests: u64,
}

/// A single-server virtual-time queue.
#[derive(Debug, Default)]
pub struct VirtualResource {
    inner: Mutex<Inner>,
}

/// Usage summary for a resource.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceStats {
    /// Virtual time of the last service completion.
    pub clock_ns: u64,
    /// Total virtual busy time.
    pub busy_ns: u64,
    /// Number of reservations served.
    pub requests: u64,
}

impl VirtualResource {
    /// Create an idle resource at virtual time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve a service window of length `service` for a request arriving
    /// at `arrival`. Returns `(start, done)`.
    pub fn reserve(&self, arrival: SimTime, service: SimTime) -> (SimTime, SimTime) {
        let mut inner = self.inner.lock();
        let start = arrival.max(inner.clock);
        let done = start + service;
        inner.clock = done;
        inner.busy += service;
        inner.requests += 1;
        (start, done)
    }

    /// Current usage counters.
    pub fn stats(&self) -> ResourceStats {
        let inner = self.inner.lock();
        ResourceStats {
            clock_ns: inner.clock.as_ns(),
            busy_ns: inner.busy.as_ns(),
            requests: inner.requests,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_requests_queue() {
        let r = VirtualResource::new();
        let (s1, d1) = r.reserve(SimTime::from_ns(0), SimTime::from_ns(100));
        assert_eq!((s1.as_ns(), d1.as_ns()), (0, 100));
        // Arrives while the first is in service: waits.
        let (s2, d2) = r.reserve(SimTime::from_ns(50), SimTime::from_ns(100));
        assert_eq!((s2.as_ns(), d2.as_ns()), (100, 200));
        // Arrives after the queue drains: served immediately.
        let (s3, d3) = r.reserve(SimTime::from_ns(500), SimTime::from_ns(10));
        assert_eq!((s3.as_ns(), d3.as_ns()), (500, 510));
    }

    #[test]
    fn stats_track_busy_time() {
        let r = VirtualResource::new();
        r.reserve(SimTime::ZERO, SimTime::from_ns(30));
        r.reserve(SimTime::ZERO, SimTime::from_ns(70));
        let s = r.stats();
        assert_eq!(s.busy_ns, 100);
        assert_eq!(s.requests, 2);
        assert_eq!(s.clock_ns, 100);
    }

    #[test]
    fn windows_never_overlap_under_concurrency() {
        use std::sync::Arc;
        let r = Arc::new(VirtualResource::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let mut windows = Vec::new();
                    for k in 0..100u64 {
                        windows
                            .push(r.reserve(SimTime::from_ns(i * 13 + k * 7), SimTime::from_ns(5)));
                    }
                    windows
                })
            })
            .collect();
        let mut all: Vec<(SimTime, SimTime)> =
            handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort();
        for pair in all.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "service windows overlap: {pair:?}");
        }
        assert_eq!(r.stats().busy_ns, 8 * 100 * 5);
    }
}
