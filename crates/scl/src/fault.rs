//! Deterministic fault injection for the simulated fabric.
//!
//! A [`FaultPlan`] is a pure function from `(seed, source endpoint, per-source
//! message sequence number, virtual send time)` to a [`SendFate`]. Nothing in
//! the decision depends on wall-clock time or physical delivery order: each
//! endpoint is owned by exactly one component thread, so its send sequence is
//! reproducible, and two runs with the same plan and the same workload inject
//! exactly the same faults at exactly the same virtual instants.
//!
//! Four fault classes are modelled, mirroring what a lossy cluster fabric
//! does to a DSM protocol:
//!
//! * **drop** — the message is lost on the wire (the envelope still travels
//!   physically, marked [`Envelope::lost`](crate::Envelope::lost), so
//!   receivers can discard it and *senders' timeouts stay virtual*);
//! * **duplicate** — the receiver sees the message twice;
//! * **delay** — a latency spike adds a fixed penalty to the delivery time;
//! * **partition / crash** — structural outages: a symmetric link partition
//!   between two nodes over a virtual-time window, or an endpoint (a memory
//!   server) that stops communicating entirely after a virtual instant —
//!   every message to *or from* it is dropped.
//!
//! The backoff arithmetic clients retry with lives here too
//! ([`RetryPolicy`]), so the whole timeout/retry story is seeded from one
//! place and property-testable in isolation.

use crate::time::SimTime;
use crate::topology::{EndpointId, NodeId};

/// SplitMix64: the standard 64-bit finalizer-style generator. Used both to
/// decide per-message fates and to derive retry jitter; hand-rolled so the
/// communication layer needs no RNG dependency.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a hash to a uniform f64 in `[0, 1)` using the top 53 bits.
#[inline]
fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// What the fabric decided to do with one send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendFate {
    /// Delivered normally.
    Delivered,
    /// Lost on the wire; the label says why (`"drop"`, `"partition"`,
    /// `"crash"`). The envelope still travels physically, marked lost.
    Dropped(&'static str),
    /// Delivered twice (two independent envelopes, same delivery time).
    Duplicated,
    /// Delivered once, after an extra latency spike.
    Delayed(SimTime),
}

impl SendFate {
    /// True if the message never (virtually) reaches the receiver.
    pub fn is_dropped(&self) -> bool {
        matches!(self, SendFate::Dropped(_))
    }

    /// Short label for trace events and counters; `None` when delivered
    /// cleanly.
    pub fn label(&self) -> Option<&'static str> {
        match self {
            SendFate::Delivered => None,
            SendFate::Dropped(why) => Some(why),
            SendFate::Duplicated => Some("duplicate"),
            SendFate::Delayed(_) => Some("delay"),
        }
    }
}

/// A symmetric link partition between two nodes over a virtual window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    /// One side of the severed link.
    pub a: NodeId,
    /// The other side.
    pub b: NodeId,
    /// First virtual instant at which sends are lost (inclusive).
    pub from: SimTime,
    /// Virtual instant at which the link heals (exclusive).
    pub until: SimTime,
}

/// A seeded, deterministic fault schedule consulted by the fabric per send.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for the per-message fate hash and nothing else.
    pub seed: u64,
    /// Probability a message is dropped.
    pub drop_p: f64,
    /// Probability a message is duplicated.
    pub dup_p: f64,
    /// Probability a message suffers a latency spike.
    pub delay_p: f64,
    /// The latency spike added to delayed messages.
    pub delay: SimTime,
    /// Timed symmetric link partitions.
    pub partitions: Vec<Partition>,
    /// Endpoints that stop communicating at a virtual instant: any send to
    /// or from a crashed endpoint at or after its crash time is lost.
    pub crashed: Vec<(EndpointId, SimTime)>,
}

impl FaultPlan {
    /// The empty plan: every send is delivered, and the fabric takes the
    /// exact same code path (and charges the exact same costs) as a build
    /// without fault injection.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan that randomly drops/duplicates/delays with the given seed.
    pub fn lossy(seed: u64, drop_p: f64, dup_p: f64, delay_p: f64, delay: SimTime) -> Self {
        FaultPlan { seed, drop_p, dup_p, delay_p, delay, ..FaultPlan::default() }
    }

    /// True if the plan can ever produce a non-[`SendFate::Delivered`] fate.
    pub fn is_active(&self) -> bool {
        self.drop_p > 0.0
            || self.dup_p > 0.0
            || self.delay_p > 0.0
            || !self.partitions.is_empty()
            || !self.crashed.is_empty()
    }

    /// Decide the fate of message `seq` from `src` (placed on `src_node`)
    /// to `dst` (on `dst_node`) posted at virtual time `now`. Structural
    /// faults (crashes, partitions) take precedence over the random roll.
    pub fn fate(
        &self,
        src: EndpointId,
        dst: EndpointId,
        src_node: NodeId,
        dst_node: NodeId,
        now: SimTime,
        seq: u64,
    ) -> SendFate {
        for &(ep, at) in &self.crashed {
            if (ep == src || ep == dst) && now >= at {
                return SendFate::Dropped("crash");
            }
        }
        for p in &self.partitions {
            let severed =
                (p.a == src_node && p.b == dst_node) || (p.a == dst_node && p.b == src_node);
            if severed && now >= p.from && now < p.until {
                return SendFate::Dropped("partition");
            }
        }
        if self.drop_p == 0.0 && self.dup_p == 0.0 && self.delay_p == 0.0 {
            return SendFate::Delivered;
        }
        let h = splitmix64(self.seed ^ splitmix64((u64::from(src.0) << 40) ^ seq));
        let u = unit_f64(h);
        if u < self.drop_p {
            SendFate::Dropped("drop")
        } else if u < self.drop_p + self.dup_p {
            SendFate::Duplicated
        } else if u < self.drop_p + self.dup_p + self.delay_p {
            SendFate::Delayed(self.delay)
        } else {
            SendFate::Delivered
        }
    }
}

/// Capped exponential backoff with seeded jitter, in virtual time.
///
/// `delay(attempt) = min(cap, base · 2^attempt + jitter(attempt))` with
/// `jitter < base`, so successive delays are monotonically non-decreasing
/// (strictly increasing until the cap), bounded by `cap`, and a pure
/// function of `(seed, attempt)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// First-retry delay (and the jitter modulus).
    pub base: SimTime,
    /// Upper bound on any single delay.
    pub cap: SimTime,
    /// Attempts before the target is declared unreachable.
    pub max_attempts: u32,
    /// Jitter seed; deterministic per (seed, attempt).
    pub seed: u64,
}

impl RetryPolicy {
    /// Virtual-time delay to wait after failed attempt number `attempt`
    /// (0-based: the delay between the first send and the first retry is
    /// `delay(0)`).
    pub fn delay(&self, attempt: u32) -> SimTime {
        let base = self.base.as_ns().max(1);
        let exp = if attempt >= 63 { u64::MAX } else { base.saturating_mul(1u64 << attempt) };
        let jitter = splitmix64(self.seed ^ (0xBACC_0FF0 + u64::from(attempt))) % base;
        SimTime::from_ns(exp.saturating_add(jitter).min(self.cap.as_ns()))
    }
}

impl Default for RetryPolicy {
    /// ~20 µs first retry, capped at 500 µs, eight attempts: at a 10% drop
    /// rate the chance of falsely declaring a live server dead is 1e-8.
    fn default() -> Self {
        RetryPolicy {
            base: SimTime::from_ns(20_000),
            cap: SimTime::from_ns(500_000),
            max_attempts: 8,
            seed: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(i: u32) -> EndpointId {
        EndpointId(i)
    }

    #[test]
    fn empty_plan_delivers_everything() {
        let p = FaultPlan::none();
        assert!(!p.is_active());
        for seq in 0..1000 {
            let f = p.fate(e(0), e(1), NodeId(0), NodeId(1), SimTime::from_ns(seq), seq);
            assert_eq!(f, SendFate::Delivered);
        }
    }

    #[test]
    fn fates_are_deterministic_and_roughly_calibrated() {
        let p = FaultPlan::lossy(42, 0.10, 0.05, 0.05, SimTime::from_us(3));
        assert!(p.is_active());
        let roll = |seq| p.fate(e(7), e(1), NodeId(0), NodeId(1), SimTime::ZERO, seq);
        let (mut drops, mut dups, mut delays) = (0u32, 0u32, 0u32);
        for seq in 0..10_000 {
            assert_eq!(roll(seq), roll(seq), "fate must be a pure function of the sequence");
            match roll(seq) {
                SendFate::Dropped(why) => {
                    assert_eq!(why, "drop");
                    drops += 1;
                }
                SendFate::Duplicated => dups += 1,
                SendFate::Delayed(d) => {
                    assert_eq!(d, SimTime::from_us(3));
                    delays += 1;
                }
                SendFate::Delivered => {}
            }
        }
        // 10k rolls: each class within a generous band of its probability.
        assert!((800..1200).contains(&drops), "drop rate off: {drops}");
        assert!((350..650).contains(&dups), "dup rate off: {dups}");
        assert!((350..650).contains(&delays), "delay rate off: {delays}");
    }

    #[test]
    fn different_sources_see_independent_streams() {
        let p = FaultPlan::lossy(9, 0.5, 0.0, 0.0, SimTime::ZERO);
        let differs = (0..200).any(|seq| {
            p.fate(e(0), e(1), NodeId(0), NodeId(1), SimTime::ZERO, seq)
                != p.fate(e(1), e(0), NodeId(1), NodeId(0), SimTime::ZERO, seq)
        });
        assert!(differs, "per-source streams must not be identical");
    }

    #[test]
    fn partition_severs_both_directions_within_its_window() {
        let mut p = FaultPlan::none();
        p.partitions.push(Partition {
            a: NodeId(1),
            b: NodeId(2),
            from: SimTime::from_us(10),
            until: SimTime::from_us(20),
        });
        let at = |ns| SimTime::from_ns(ns);
        let fate = |src, dst, sn, dn, t| p.fate(e(src), e(dst), NodeId(sn), NodeId(dn), t, 0);
        // Inside the window, both directions drop.
        assert_eq!(fate(0, 1, 1, 2, at(15_000)), SendFate::Dropped("partition"));
        assert_eq!(fate(1, 0, 2, 1, at(15_000)), SendFate::Dropped("partition"));
        // Before, after, and on unrelated links: delivered.
        assert_eq!(fate(0, 1, 1, 2, at(9_999)), SendFate::Delivered);
        assert_eq!(fate(0, 1, 1, 2, at(20_000)), SendFate::Delivered);
        assert_eq!(fate(0, 1, 0, 2, at(15_000)), SendFate::Delivered);
    }

    #[test]
    fn crashed_endpoint_loses_traffic_in_both_directions() {
        let mut p = FaultPlan::none();
        p.crashed.push((e(3), SimTime::from_us(5)));
        let before = SimTime::from_ns(4_999);
        let after = SimTime::from_us(5);
        assert_eq!(p.fate(e(0), e(3), NodeId(0), NodeId(1), before, 0), SendFate::Delivered);
        assert_eq!(p.fate(e(0), e(3), NodeId(0), NodeId(1), after, 0), SendFate::Dropped("crash"));
        assert_eq!(
            p.fate(e(3), e(0), NodeId(1), NodeId(0), after, 0),
            SendFate::Dropped("crash"),
            "a dead server's replies must die with it"
        );
    }

    #[test]
    fn backoff_defaults_are_sane() {
        let r = RetryPolicy::default();
        assert!(r.delay(0) >= r.base);
        assert!(r.delay(r.max_attempts) <= r.cap);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Backoff delays are monotonically non-decreasing in the attempt
        /// number, never exceed the cap, and are a pure function of the
        /// seed (satellite: retry/backoff arithmetic coverage).
        #[test]
        fn backoff_is_monotone_capped_and_deterministic(
            seed in any::<u64>(),
            base_ns in 1u64..1_000_000,
            cap_mult in 1u64..64,
            attempts in 2u32..40,
        ) {
            let policy = RetryPolicy {
                base: SimTime::from_ns(base_ns),
                cap: SimTime::from_ns(base_ns.saturating_mul(cap_mult)),
                max_attempts: attempts,
                seed,
            };
            let twin = policy; // Copy: same parameters, fresh value.
            let mut prev = SimTime::ZERO;
            for a in 0..attempts {
                let d = policy.delay(a);
                prop_assert_eq!(d, twin.delay(a), "delay must be deterministic");
                prop_assert!(d <= policy.cap, "delay {:?} exceeds cap {:?}", d, policy.cap);
                prop_assert!(d >= prev, "delay must not shrink: {:?} < {:?}", d, prev);
                prev = d;
            }
        }
    }
}
